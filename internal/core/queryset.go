package core

import (
	"fmt"

	"exactppr/internal/sparse"
)

// Preference-set queries. The PPV of a preference set P with weights w
// is the w-weighted combination of the members' PPVs — the linearity
// property of Jeh–Widom [25] that the paper's preliminaries build on
// (§1, Eq. 1). Both the centralized store and the shards support it, so
// the distributed protocol still needs exactly one vector per machine
// per query.

// Preference is a weighted preference node set. Weights must be positive;
// they are normalized to sum to 1.
type Preference struct {
	Nodes   []int32
	Weights []float64 // nil = uniform
}

// normalized validates the preference and returns per-node normalized
// weights.
func (p Preference) normalized(n int) ([]float64, error) {
	if len(p.Nodes) == 0 {
		return nil, fmt.Errorf("core: empty preference set")
	}
	if p.Weights != nil && len(p.Weights) != len(p.Nodes) {
		return nil, fmt.Errorf("core: %d weights for %d nodes", len(p.Weights), len(p.Nodes))
	}
	seen := make(map[int32]bool, len(p.Nodes))
	w := make([]float64, len(p.Nodes))
	var total float64
	for i, u := range p.Nodes {
		if u < 0 || int(u) >= n {
			return nil, fmt.Errorf("core: preference node %d out of range", u)
		}
		if seen[u] {
			return nil, fmt.Errorf("core: duplicate preference node %d", u)
		}
		seen[u] = true
		wi := 1.0
		if p.Weights != nil {
			wi = p.Weights[i]
			if wi <= 0 {
				return nil, fmt.Errorf("core: non-positive weight %v for node %d", wi, u)
			}
		}
		w[i] = wi
		total += wi
	}
	for i := range w {
		w[i] /= total
	}
	return w, nil
}

// QuerySet constructs the exact PPV of a preference node set by
// linearity. All members fold into one shared accumulator — no
// per-member intermediate vectors.
func (s *Store) QuerySet(p Preference) (sparse.Vector, error) {
	w, err := p.normalized(s.H.G.NumNodes())
	if err != nil {
		return nil, err
	}
	acc := sparse.AcquireAccumulator(s.H.G.NumNodes())
	defer acc.Release()
	for i, u := range p.Nodes {
		if err := s.queryInto(acc, u, w[i]); err != nil {
			return nil, err
		}
	}
	return acc.Vector(), nil
}

// QuerySetVector is the shard-side preference-set fold: the weighted
// combination of the shard's per-node shares. Summing all shards'
// QuerySetVector outputs yields exactly QuerySet's result, still in one
// round.
func (sh *Shard) QuerySetVector(p Preference) (sparse.Vector, error) {
	acc, err := sh.querySetInto(p)
	if err != nil {
		return nil, err
	}
	defer acc.Release()
	return acc.Vector(), nil
}

// QuerySetPacked is QuerySetVector draining into the columnar form the
// wire protocol encodes directly.
func (sh *Shard) QuerySetPacked(p Preference) (sparse.Packed, error) {
	acc, err := sh.querySetInto(p)
	if err != nil {
		return sparse.Packed{}, err
	}
	defer acc.Release()
	return acc.Packed(), nil
}

func (sh *Shard) querySetInto(p Preference) (*sparse.Accumulator, error) {
	w, err := p.normalized(sh.store.H.G.NumNodes())
	if err != nil {
		return nil, err
	}
	acc := sparse.AcquireAccumulator(sh.store.H.G.NumNodes())
	for i, u := range p.Nodes {
		if err := sh.queryInto(acc, u, w[i]); err != nil {
			acc.Release()
			return nil, err
		}
	}
	return acc, nil
}

// QueryTopK returns the k highest-scoring nodes of u's exact PPV — the
// common application-facing call (recommendation, link prediction). The
// top-k selection runs straight off the accumulator: no map, no full
// sort.
func (s *Store) QueryTopK(u int32, k int) ([]sparse.Entry, error) {
	acc := sparse.AcquireAccumulator(s.H.G.NumNodes())
	defer acc.Release()
	if err := s.queryInto(acc, u, 1); err != nil {
		return nil, err
	}
	return acc.TopK(k), nil
}
