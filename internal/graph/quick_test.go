package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickGraph decodes an arbitrary byte string into a small directed
// graph — the generator for the property tests below.
func quickGraph(data []byte) *Graph {
	n := 2 + int(len(data))%40
	b := NewBuilder(n)
	for i := 0; i+1 < len(data); i += 2 {
		b.AddEdge(int32(int(data[i])%n), int32(int(data[i+1])%n))
	}
	return b.Build()
}

// Property: every built graph satisfies Validate.
func TestQuickBuilderAlwaysValid(t *testing.T) {
	f := func(data []byte) bool {
		return quickGraph(data).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the reverse adjacency is an involution — reversing twice
// restores the forward edge multiset.
func TestQuickReverseInvolution(t *testing.T) {
	f := func(data []byte) bool {
		g := quickGraph(data)
		g.BuildReverse()
		// Rebuild a graph from the reverse of the reverse.
		b := NewBuilder(g.NumNodes())
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			for _, u := range g.In(v) {
				b.AddEdge(u, v)
			}
		}
		g2 := b.Build()
		if g2.NumEdges() != g.NumEdges() {
			return false
		}
		for u := int32(0); u < int32(g.NumNodes()); u++ {
			if !reflect.DeepEqual(g.Out(u), g2.Out(u)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: an edge-list write/read round trip preserves the graph
// exactly (ids are already dense, so the format is lossless).
func TestQuickEdgeListRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		g := quickGraph(data)
		if g.NumEdges() == 0 {
			return true // empty graphs lose node count in the format
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		g2, err := LoadEdgeList(&buf)
		if err != nil {
			return false
		}
		if g2.NumEdges() != g.NumEdges() {
			return false
		}
		// Node ids may be remapped (appearance order), so compare the
		// degree multiset, which is remap-invariant.
		return sameDegreeMultiset(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: virtual subgraphs never grow OutWeight and never shrink it
// below the local degree, for arbitrary member subsets.
func TestQuickVirtualSubgraphWeights(t *testing.T) {
	f := func(data []byte, memberBits uint64) bool {
		g := quickGraph(data)
		var members []int32
		for u := 0; u < g.NumNodes(); u++ {
			if memberBits&(1<<(u%64)) != 0 {
				members = append(members, int32(u))
			}
		}
		if len(members) == 0 {
			return true
		}
		s := VirtualSubgraph(g, members)
		if s.G.Validate() != nil {
			return false
		}
		for _, p := range members {
			l := s.Local(p)
			if s.G.OutWeight(l) != g.OutWeight(p) {
				return false
			}
			if s.G.OutDegree(l) > g.OutDegree(p)+1 { // +1 for the sink edge
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: WeaklyConnectedComponents yields a partition — labels cover
// all unblocked nodes, nodes in one component are mutually reachable in
// the undirected view.
func TestQuickComponentsArePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		data := make([]byte, rng.Intn(60))
		rng.Read(data)
		g := quickGraph(data)
		labels, k := g.WeaklyConnectedComponents(nil)
		seen := make([]bool, k)
		for u, l := range labels {
			if l < 0 || int(l) >= k {
				t.Fatalf("node %d label %d out of range", u, l)
			}
			seen[l] = true
		}
		for c, ok := range seen {
			if !ok {
				t.Fatalf("component %d empty", c)
			}
		}
		// Edges never cross components.
		for u := int32(0); u < int32(g.NumNodes()); u++ {
			for _, v := range g.Out(u) {
				if labels[u] != labels[v] {
					t.Fatalf("edge (%d,%d) crosses components", u, v)
				}
			}
		}
	}
}

func sameDegreeMultiset(a, b *Graph) bool {
	da := make(map[int]int)
	db := make(map[int]int)
	for u := int32(0); u < int32(a.NumNodes()); u++ {
		da[a.OutDegree(u)]++
	}
	for u := int32(0); u < int32(b.NumNodes()); u++ {
		db[b.OutDegree(u)]++
	}
	// Isolated nodes may be dropped by the edge-list format; compare
	// only nonzero degrees.
	delete(da, 0)
	delete(db, 0)
	return reflect.DeepEqual(da, db)
}
