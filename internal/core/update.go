package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"exactppr/internal/graph"
	"exactppr/internal/ppr"
)

// Incremental maintenance. A Store is exact because every stored vector
// is local to one tree node's virtual subgraph, so an edge-delta batch
// invalidates only the nodes on the edge tails' root-to-home chains
// (see internal/hierarchy's dirty-set semantics). ApplyUpdates applies
// a batch to the shared root graph, repairs the hierarchy (hub
// promotion for separator-crossing inserts), and recomputes ONLY the
// dirty partials, skeletons, and leaf PPVs — the rest of the store is
// shared structurally with the previous snapshot. LiveStore publishes
// the result with an atomic pointer swap so in-flight queries keep
// serving the old snapshot; a snapshot never changes once built.

// UpdateInfo reports the cost of one incremental update batch.
type UpdateInfo struct {
	// Inserted/Deleted count the edge operations that actually changed
	// the graph (no-op operations in the batch are skipped).
	Inserted, Deleted int
	// DirtyNodes is the number of tree nodes whose virtual subgraph was
	// re-extracted.
	DirtyNodes int
	// Promoted is the number of nodes promoted into a hub set to keep
	// the separator property (and with it exactness) intact.
	Promoted int
	// Recomputed counts vectors recomputed by this batch; StoreVectors
	// counts all vectors in the updated store, i.e. what a from-scratch
	// rebuild would compute. Recomputed < StoreVectors is the whole
	// point of dirty-partition maintenance.
	Recomputed, StoreVectors int
	// Kernel is the engine the recompute used (Params.Kernel).
	Kernel ppr.Kernel
	// Pushes is the total number of residual pops the recompute kernels
	// performed; DenseFallbacks counts vectors drained by the dense
	// sweep (see PrecomputeInfo).
	Pushes, DenseFallbacks int64
	// Wall is the end-to-end update time.
	Wall time.Duration
}

// ApplyUpdates applies an edge-delta batch and returns a NEW store in
// which only the dirty partitions were recomputed. The receiver remains
// a valid read snapshot (its maps and hierarchy are never mutated), but
// it is retired as a base for further updates: the root graph object is
// shared and has advanced, so subsequent batches must be applied to the
// returned store. LiveStore enforces that ordering; use it unless you
// are managing publication yourself.
//
// Concurrency: queries on any snapshot (old or new) may run throughout —
// the serving path reads only pre-computed vectors and the hierarchy
// index, never the root graph's adjacency. Algorithms that traverse the
// root graph (power iteration, Monte Carlo, experiments) must not
// overlap an ApplyUpdates call.
func (s *Store) ApplyUpdates(d graph.Delta, workers int) (*Store, *UpdateInfo, error) {
	start := time.Now()
	upd, err := s.H.ApplyDelta(d)
	if err != nil {
		return nil, nil, fmt.Errorf("core: plan update: %w", err)
	}
	ins, del, err := s.H.G.ApplyDelta(d)
	if err != nil {
		return nil, nil, fmt.Errorf("core: apply delta: %w", err)
	}
	info := &UpdateInfo{Inserted: ins, Deleted: del}
	if ins == 0 && del == 0 {
		info.StoreVectors = s.storeVectors()
		info.Wall = time.Since(start)
		return s, info, nil
	}
	upd.RefreshSubgraphs()

	// Start from a structural clone: the maps are fresh (so the old
	// snapshot is never written to), the immutable packed vectors are
	// shared, and the clean partitions keep their entries untouched.
	ns := s.Clone()
	ns.H = upd.H
	for _, x := range upd.Promoted {
		// A promoted node's old leaf PPV is stale; its new hub vectors
		// are produced by the dirty-node recompute below.
		delete(ns.LeafPPV, x)
	}

	var tasks []precomputeTask
	for _, n := range upd.Dirty {
		tasks = append(tasks, nodeTasks(upd.H, n)...)
		n.Sub.G.BuildReverse()
	}
	ri, err := ns.runTasks(tasks, workers)
	if err != nil {
		// The shared root graph has already advanced, so the receiver
		// can keep SERVING its snapshot but cannot absorb this batch
		// again — a replay would be effective-filtered to a no-op
		// against the mutated graph. The caller must rebuild; LiveStore
		// poisons itself so later batches fail loudly instead.
		return nil, nil, fmt.Errorf("core: recompute after delta failed (store diverged from graph — rebuild required): %w", err)
	}
	for _, t := range tasks {
		info.Recomputed += t.Vectors()
	}
	info.Kernel = s.Params.Kernel
	info.Pushes = ri.kstats.Pushes
	info.DenseFallbacks = ri.kstats.DenseFallbacks
	info.DirtyNodes = len(upd.Dirty)
	info.Promoted = len(upd.Promoted)
	info.StoreVectors = ns.storeVectors()
	info.Wall = time.Since(start)
	return ns, info, nil
}

// storeVectors counts the vectors a from-scratch pre-computation would
// produce for this store.
func (s *Store) storeVectors() int {
	return 2*len(s.HubPartial) + len(s.LeafPPV)
}

// LiveStore publishes a Store behind an atomic pointer and serializes
// updates against it. Readers call Store() and use the snapshot for as
// long as they like — a published snapshot is immutable. Writers call
// ApplyUpdates; each batch recomputes only dirty partitions and swaps
// the pointer once the new snapshot is complete.
type LiveStore struct {
	mu     sync.Mutex // serializes ApplyUpdates (batch ordering)
	broken error      // set when a batch died after mutating the graph
	cur    atomic.Pointer[Store]
}

// NewLiveStore wraps an initial snapshot. The store's root graph must
// not be mutated except through this LiveStore afterwards.
func NewLiveStore(s *Store) *LiveStore {
	l := &LiveStore{}
	l.cur.Store(s)
	return l
}

// Store returns the current snapshot.
func (l *LiveStore) Store() *Store { return l.cur.Load() }

// ApplyUpdates applies one batch and publishes the resulting snapshot.
//
// Failure semantics: a batch rejected up front (bad delta) leaves the
// pipeline fully usable. A batch that fails AFTER mutating the shared
// graph (recompute error) leaves the current snapshot serving but
// poisons the pipeline — the graph and the vectors have diverged, and
// since deltas are effectiveness-filtered a replay would silently
// no-op. Every subsequent ApplyUpdates then fails with the original
// error; rebuild the store from the graph to recover.
func (l *LiveStore) ApplyUpdates(d graph.Delta, workers int) (*UpdateInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return nil, fmt.Errorf("core: live store is poisoned by an earlier failed batch: %w", l.broken)
	}
	cur := l.cur.Load()
	before := cur.H.G.Epoch()
	ns, info, err := cur.ApplyUpdates(d, workers)
	if err != nil {
		if cur.H.G.Epoch() != before {
			l.broken = err
		}
		return nil, err
	}
	l.cur.Store(ns)
	return info, nil
}
