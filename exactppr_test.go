package exactppr

import (
	"bytes"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd exercises the façade exactly as the README
// quickstart does: build a graph, precompute, query, verify against the
// power-iteration oracle, round-trip through persistence, and run a
// distributed query.
func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := GenerateCommunityGraph(GenConfig{
		Nodes: 300, AvgOutDegree: 4, Communities: 3,
		InterFrac: 0.05, MinOutDegree: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Alpha: 0.15, Eps: 1e-7}
	store, err := BuildHGPA(g, HierarchyOptions{Seed: 2}, params, 0)
	if err != nil {
		t.Fatal(err)
	}
	ppv, err := store.Query(10)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := PowerIteration(g, 10, params)
	if err != nil {
		t.Fatal(err)
	}
	top := ppv.TopK(5)
	if len(top) != 5 || top[0].ID != 10 {
		t.Fatalf("query node should rank first: %v", top)
	}
	var maxDiff float64
	for id, x := range oracle {
		d := x - ppv.Get(id)
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-4 {
		t.Fatalf("façade query drifted from oracle: %v", maxDiff)
	}

	var buf bytes.Buffer
	if err := SaveStore(&buf, store); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	again, err := loaded.Query(10)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != ppv.Len() {
		t.Fatal("loaded store answers differently")
	}

	coord, err := NewLocalCluster(store, 4)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := coord.Query(10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BytesReceived <= 0 || stats.Result.Len() == 0 {
		t.Fatalf("distributed query stats: %+v", stats)
	}
}

func TestEdgeListFacade(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("0 1\n1 2\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	b := NewGraphBuilder(2)
	b.AddEdge(0, 1)
	if b.Build().NumEdges() != 1 {
		t.Fatal("builder facade broken")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Alpha != 0.15 || p.Eps != 1e-4 {
		t.Fatalf("defaults changed: %+v", p)
	}
	if p.Kernel != KernelAuto {
		t.Fatalf("default kernel = %v, want auto", p.Kernel)
	}
}

// TestKernelFacade: the kernel knob is reachable through the facade,
// never changes query results, and the info block reports it.
func TestKernelFacade(t *testing.T) {
	g, err := GenerateCommunityGraph(GenConfig{Nodes: 80, AvgOutDegree: 3, Communities: 2, MinOutDegree: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if k, err := ParseKernel("push"); err != nil || k != KernelPush {
		t.Fatalf("ParseKernel: %v, %v", k, err)
	}
	var ref Vector
	for _, k := range []Kernel{KernelDense, KernelPush, KernelAuto} {
		p := DefaultParams()
		p.Kernel = k
		store, info, err := BuildHGPAWithInfo(g, HierarchyOptions{Seed: 2}, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		if info.Kernel != k || info.Vectors == 0 {
			t.Fatalf("info = %+v, want kernel %v", info, k)
		}
		ppv, err := store.Query(11)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = ppv
			continue
		}
		if len(ppv) != len(ref) {
			t.Fatalf("kernel %v: %d entries, want %d", k, len(ppv), len(ref))
		}
		for id, x := range ref {
			if d := ppv.Get(id) - x; d > 1e-9 || d < -1e-9 {
				t.Fatalf("kernel %v: entry %d differs by %v", k, id, d)
			}
		}
	}
}

func TestGenerateDatasetFacade(t *testing.T) {
	g, err := GenerateDataset("email", 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() == 0 {
		t.Fatal("empty dataset")
	}
	if _, err := GenerateDataset("bogus", 1, 1); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestPreferenceSetFacade(t *testing.T) {
	g, err := GenerateCommunityGraph(GenConfig{Nodes: 50, AvgOutDegree: 3, Communities: 1, MinOutDegree: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	v, err := PowerIterationSet(g, []int32{1, 2, 3}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() == 0 {
		t.Fatal("empty preference-set PPV")
	}
}
