package experiments

import (
	"fmt"

	"exactppr/internal/gen"
	"exactppr/internal/hierarchy"
	"exactppr/internal/workload"
)

// runHubTable reproduces Tables 2–5: the number of hub nodes selected at
// each level of the hierarchical partitioning.
func runHubTable(dataset string) Runner {
	return func(cfg Config) ([]Table, error) {
		ds, err := workload.Load(dataset, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		h, err := hierarchy.Build(ds.G, hierarchy.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		counts := h.HubsPerLevel()
		t := Table{
			Title: fmt.Sprintf("Hub nodes per level — %s analogue (|V|=%d, |E|=%d, paper: |V|=%d, |E|=%d)",
				ds.Name, ds.G.NumNodes(), ds.G.NumEdges(), ds.Paper.PaperNodes, ds.Paper.PaperEdges),
			Header: []string{"Level", "HubNumber"},
		}
		total := 0
		for lvl, c := range counts {
			t.Rows = append(t.Rows, []string{fmt.Sprint(lvl), fmt.Sprint(c)})
			total += c
		}
		t.Rows = append(t.Rows, []string{"total", fmt.Sprintf("%d (%.2f%% of nodes)", total,
			100*float64(total)/float64(ds.G.NumNodes()))})
		return []Table{t}, nil
	}
}

// runTable6 reproduces Table 6: the Meetup-like scalability graphs.
func runTable6(cfg Config) ([]Table, error) {
	t := Table{
		Title:  "Meetup-like graphs for the scalability study (Table 6)",
		Header: []string{"Graph", "Nodes", "Edges", "PaperNodes", "PaperEdges"},
	}
	for i, spec := range gen.MeetupSizes {
		g, err := gen.MeetupLike(i, cfg.Seed)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			spec.ID,
			fmt.Sprint(g.NumNodes()),
			fmt.Sprint(g.NumEdges()),
			fmt.Sprint(spec.PaperNodes),
			fmt.Sprint(spec.PaperEdges),
		})
	}
	return []Table{t}, nil
}
