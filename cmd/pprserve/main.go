// Command pprserve runs one side of the paper's distributed architecture
// over TCP:
//
// Worker mode — serve shard i of n from a store file:
//
//	pprserve -store web.store -shard 0 -of 3 -listen :7001
//
// Coordinator mode — query workers and print the result:
//
//	pprserve -coordinator -workers host1:7001,host2:7002,host3:7003 -node 42
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"exactppr/internal/cluster"
	"exactppr/internal/core"
)

func main() {
	var (
		storePath   = flag.String("store", "ppr.store", "store file (worker mode)")
		shard       = flag.Int("shard", 0, "shard index (worker mode)")
		of          = flag.Int("of", 1, "total machines (worker mode)")
		listen      = flag.String("listen", ":7001", "listen address (worker mode)")
		coordinator = flag.Bool("coordinator", false, "run as coordinator")
		workers     = flag.String("workers", "", "comma-separated worker addresses (coordinator mode)")
		node        = flag.Int("node", 0, "query node (coordinator mode)")
		topk        = flag.Int("topk", 10, "entries to print (coordinator mode)")
	)
	flag.Parse()

	if *coordinator {
		runCoordinator(*workers, int32(*node), *topk)
		return
	}

	store, err := core.LoadFile(*storePath)
	if err != nil {
		fatal(err)
	}
	shards, err := core.Split(store, *of)
	if err != nil {
		fatal(err)
	}
	if *shard < 0 || *shard >= len(shards) {
		fatal(fmt.Errorf("shard %d out of range [0,%d)", *shard, len(shards)))
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	sh := shards[*shard]
	fmt.Fprintf(os.Stderr, "worker: shard %d/%d (%d hubs, %d leaves, %.2f MB) listening on %s\n",
		*shard, *of, sh.HubCount(), sh.LeafCount(), float64(sh.SpaceBytes())/(1<<20), l.Addr())
	if err := cluster.Serve(l, &cluster.ShardMachine{Shard: sh}); err != nil {
		fatal(err)
	}
}

func runCoordinator(workerList string, node int32, topk int) {
	addrs := strings.Split(workerList, ",")
	if workerList == "" || len(addrs) == 0 {
		fatal(fmt.Errorf("coordinator mode needs -workers"))
	}
	var machines []cluster.Machine
	for _, addr := range addrs {
		m, err := cluster.DialMachine(strings.TrimSpace(addr))
		if err != nil {
			fatal(fmt.Errorf("dial %s: %w", addr, err))
		}
		defer m.Close()
		machines = append(machines, m)
	}
	coord, err := cluster.NewCoordinator(machines...)
	if err != nil {
		fatal(err)
	}
	stats, err := coord.Query(node)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query %d over %d workers: %v wall, %.1f KB received\n",
		node, len(machines), stats.Wall.Round(time.Microsecond), float64(stats.BytesReceived)/1024)
	for i, e := range stats.Result.TopK(topk) {
		fmt.Printf("%3d. node %-8d %.6f\n", i+1, e.ID, e.Score)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pprserve:", err)
	os.Exit(1)
}
