package experiments

import (
	"fmt"
	"time"

	"exactppr/internal/hierarchy"
	"exactppr/internal/metrics"
	"exactppr/internal/montecarlo"
	"exactppr/internal/ppr"
	"exactppr/internal/workload"
)

// runMonteCarlo is a supplementary experiment: the distributed-approximate
// alternative the paper cites (Bahmani et al. [5]) vs exact HGPA. Both are
// one-round protocols; the table shows the Monte Carlo error shrinking
// only as 1/√walks while cost grows linearly, against HGPA's fixed cost
// at exactness — the trade the paper's contribution eliminates.
func runMonteCarlo(cfg Config) ([]Table, error) {
	b, err := buildStore(cfg, "web", hierarchy.Options{})
	if err != nil {
		return nil, err
	}
	e, err := montecarlo.NewEngine(b.ds.G)
	if err != nil {
		return nil, err
	}
	queries := workload.Queries(b.ds.G, min(cfg.Queries, 6), cfg.Seed+13)
	t := Table{
		Title:  fmt.Sprintf("Monte Carlo [5] vs exact HGPA — Web analogue, %d machines", cfg.Machines),
		Header: []string{"Method", "Runtime(ms)", "Comm(KB)", "AvgL1", "LInf"},
	}
	for _, walks := range []int{1000, 10000, 100000} {
		var dur time.Duration
		var bytes int64
		var sumL1, maxInf float64
		for _, q := range queries {
			t0 := time.Now()
			stats, err := e.EstimateSharded(q, walks, cfg.Machines, cfg.params(), cfg.Seed)
			if err != nil {
				return nil, err
			}
			dur += time.Since(t0) + cfg.Net.Cost(1, stats.BytesMerged)
			bytes += stats.BytesMerged
			want, err := ppr.PowerIteration(b.ds.G, q, cfg.params())
			if err != nil {
				return nil, err
			}
			sumL1 += metrics.AvgL1(stats.Result, want, b.ds.G.NumNodes())
			if li := metrics.LInf(stats.Result, want); li > maxInf {
				maxInf = li
			}
		}
		n := len(queries)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("MC-%d", walks),
			ms(dur / time.Duration(n)),
			kb(float64(bytes) / float64(n)),
			fmt.Sprintf("%.3e", sumL1/float64(n)),
			fmt.Sprintf("%.3e", maxInf),
		})
	}
	// The exact method at the same machine count.
	m, err := measureCluster(cfg, b, cfg.Machines)
	if err != nil {
		return nil, err
	}
	var sumL1, maxInf float64
	for _, q := range queries {
		got, err := b.store.Query(q)
		if err != nil {
			return nil, err
		}
		want, err := ppr.PowerIteration(b.ds.G, q, cfg.params())
		if err != nil {
			return nil, err
		}
		sumL1 += metrics.AvgL1(got, want, b.ds.G.NumNodes())
		if li := metrics.LInf(got, want); li > maxInf {
			maxInf = li
		}
	}
	t.Rows = append(t.Rows, []string{
		"HGPA (exact)",
		ms(m.AvgRuntime),
		kb(m.AvgBytes),
		fmt.Sprintf("%.3e", sumL1/float64(len(queries))),
		fmt.Sprintf("%.3e", maxInf),
	})
	return []Table{t}, nil
}
