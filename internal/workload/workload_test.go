package workload

import (
	"os"
	"path/filepath"
	"testing"

	"exactppr/internal/graph"
)

func TestLoadPreset(t *testing.T) {
	ds, err := Load("email", 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "Email" || ds.G.NumNodes() == 0 {
		t.Fatalf("bad dataset: %+v", ds)
	}
	if ds.Paper.PaperNodes != 265214 {
		t.Fatalf("paper spec not attached: %+v", ds.Paper)
	}
}

func TestLoadMeetup(t *testing.T) {
	ds, err := Load("meetup:M2", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "Meetup-M2" {
		t.Fatalf("name = %q", ds.Name)
	}
	if _, err := Load("meetup:M9", 1, 1); err == nil {
		t.Fatal("unknown meetup id should fail")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := Load("file:"+path, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.G.NumNodes() != 3 || ds.G.NumEdges() != 2 {
		t.Fatalf("file graph: %d/%d", ds.G.NumNodes(), ds.G.NumEdges())
	}
	if _, err := Load("file:/does/not/exist", 1, 1); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nope", 1, 1); err == nil {
		t.Fatal("unknown preset should fail")
	}
}

func TestQueries(t *testing.T) {
	g := graph.FromAdjacency([][]int32{{1}, {2}, {0}, {0}, {0}})
	qs := Queries(g, 3, 7)
	if len(qs) != 3 {
		t.Fatalf("got %d queries", len(qs))
	}
	seen := map[int32]bool{}
	for _, q := range qs {
		if q < 0 || int(q) >= g.NumNodes() || seen[q] {
			t.Fatalf("bad query set %v", qs)
		}
		seen[q] = true
	}
	// Deterministic for equal seeds.
	qs2 := Queries(g, 3, 7)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatal("not deterministic")
		}
	}
	// n ≥ |V| returns everything.
	all := Queries(g, 99, 1)
	if len(all) != g.NumNodes() {
		t.Fatalf("len = %d", len(all))
	}
}
