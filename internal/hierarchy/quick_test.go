package hierarchy

import (
	"math/rand"
	"testing"

	"exactppr/internal/gen"
)

// TestQuickHierarchyInvariants fuzzes Build across graph shapes, fanouts,
// and level caps, running the full Validate() suite each time (children
// partition members∖hubs, hub sets separate children, indexes agree).
func TestQuickHierarchyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 12; trial++ {
		n := 30 + rng.Intn(400)
		g, err := gen.Community(gen.Config{
			Nodes:        n,
			AvgOutDegree: 1 + rng.Float64()*5,
			Communities:  1 + rng.Intn(6),
			InterFrac:    rng.Float64() * 0.25,
			DegreeSkew:   []float64{0, 1.6}[rng.Intn(2)],
			Seed:         int64(trial + 300),
		})
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{
			Fanout:    2 + rng.Intn(3),
			MaxLevels: rng.Intn(7),
			MinSize:   4 + rng.Intn(30),
			Seed:      int64(trial),
		}
		h, err := Build(g, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, opts, err)
		}
		// Path/home coherence for a sample of nodes.
		for i := 0; i < 10; i++ {
			u := int32(rng.Intn(n))
			path := h.Path(u)
			if len(path) == 0 || path[0] != h.Root {
				t.Fatalf("trial %d: bad path for %d", trial, u)
			}
			if h.IsHub(u) != (h.HubLevel(u) >= 0) {
				t.Fatalf("trial %d: hub flags disagree for %d", trial, u)
			}
		}
		// Hub + leaf membership counts account for every node exactly once.
		assigned := 0
		for _, node := range h.Nodes() {
			assigned += len(node.Hubs)
			if node.IsLeaf() {
				for _, m := range node.Members {
					if !h.IsHub(m) {
						assigned++
					}
				}
			}
		}
		if assigned != n {
			t.Fatalf("trial %d: %d nodes assigned of %d", trial, assigned, n)
		}
	}
}
