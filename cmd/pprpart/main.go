// Command pprpart partitions a graph hierarchically and prints the hub
// statistics per level — the reproduction of Tables 2–5.
//
//	pprpart -dataset web -scale 0.5
//	pprpart -dataset file:web.txt -fanout 4 -maxlevels 6
package main

import (
	"flag"
	"fmt"
	"os"

	"exactppr/internal/hierarchy"
	"exactppr/internal/workload"
)

func main() {
	var (
		dataset   = flag.String("dataset", "email", "preset name or file:PATH")
		scale     = flag.Float64("scale", 0.5, "node-count multiplier for presets")
		seed      = flag.Int64("seed", 1, "seed")
		fanout    = flag.Int("fanout", 2, "parts per split")
		maxLevels = flag.Int("maxlevels", 0, "level cap (0 = until edge-free)")
		validate  = flag.Bool("validate", false, "verify separator invariants (slow)")
	)
	flag.Parse()

	ds, err := workload.Load(*dataset, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	h, err := hierarchy.Build(ds.G, hierarchy.Options{
		Fanout: *fanout, MaxLevels: *maxLevels, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	if *validate {
		if err := h.Validate(); err != nil {
			fatal(err)
		}
		fmt.Println("hierarchy invariants: OK")
	}
	fmt.Printf("%s: %d nodes, %d edges, %d levels, %d leaf subgraphs\n",
		ds.Name, ds.G.NumNodes(), ds.G.NumEdges(), h.Depth(), len(h.Leaves()))
	fmt.Println("Level  HubNumber")
	total := 0
	for lvl, c := range h.HubsPerLevel() {
		fmt.Printf("%-6d %d\n", lvl, c)
		total += c
	}
	fmt.Printf("total  %d (%.2f%% of nodes)\n", total, 100*float64(total)/float64(ds.G.NumNodes()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pprpart:", err)
	os.Exit(1)
}
