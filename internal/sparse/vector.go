// Package sparse provides the sparse floating-point vector types used
// for PPVs, partial vectors, and hubs skeleton vectors throughout the
// module. All of the pre-computed state in GPA/HGPA is sparse by
// construction (Jeh–Widom tolerance truncation keeps only entries above
// a threshold); three representations cover its lifecycle:
//
//   - Vector (map[int32]float64) is the MUTABLE representation: random
//     inserts and deletes in O(1). Use it while constructing or editing
//     a vector, and as the application-facing result type — the public
//     API keeps returning it.
//   - Packed ([]int32 ids + []float64 scores, sorted by id) is the
//     IMMUTABLE hot-path representation: pre-computed vectors are
//     packed once and then only read. Sequential folds stream through
//     two flat arrays instead of chasing map buckets, point lookups are
//     binary search, and the sorted layout serializes directly into the
//     canonical wire encoding with no sorting or map iteration.
//   - Accumulator (dense scratch + touched list, pooled) is the
//     QUERY-TIME fold buffer: "sum the shares" becomes O(1) array adds
//     with zero per-entry allocation, then drains once into a Packed or
//     Vector. Acquire one per query, Release it after.
//
// Rule of thumb: build with Vector, store and ship as Packed, fold with
// an Accumulator.
//
// A Packed normally owns its arrays, but PackedView (columnar.go) can
// wrap EXTERNALLY owned columns — e.g. slices aliasing a memory-mapped
// store file — without copying. Such views follow strict aliasing
// rules: the backing memory must stay alive and unmodified for the
// view's whole lifetime, and consumers must treat the view as read-only
// like any other Packed. Draining an Accumulator always copies, so fold
// RESULTS never alias a view.
package sparse

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Vector is a sparse vector keyed by node id. The zero value is usable.
// A nil Vector behaves as the empty vector for read operations.
type Vector map[int32]float64

// New returns an empty vector with capacity hint n.
func New(n int) Vector { return make(Vector, n) }

// FromDense builds a sparse vector from a dense slice, dropping entries with
// absolute value at or below eps.
func FromDense(d []float64, eps float64) Vector {
	v := make(Vector)
	for i, x := range d {
		if math.Abs(x) > eps {
			v[int32(i)] = x
		}
	}
	return v
}

// Dense materializes the vector as a dense slice of length n. Entries with
// ids outside [0, n) are ignored.
func (v Vector) Dense(n int) []float64 {
	d := make([]float64, n)
	for i, x := range v {
		if 0 <= i && int(i) < n {
			d[i] = x
		}
	}
	return d
}

// Get returns the value at id (0 when absent).
func (v Vector) Get(id int32) float64 { return v[id] }

// Set assigns value x to id, deleting the entry when x == 0.
func (v Vector) Set(id int32, x float64) {
	if x == 0 {
		delete(v, id)
		return
	}
	v[id] = x
}

// Add accumulates x into the entry at id.
func (v Vector) Add(id int32, x float64) {
	if x == 0 {
		return
	}
	n := v[id] + x
	if n == 0 {
		delete(v, id)
		return
	}
	v[id] = n
}

// AddScaled accumulates c*other into v: v += c*other.
func (v Vector) AddScaled(other Vector, c float64) {
	if c == 0 {
		return
	}
	for i, x := range other {
		v.Add(i, c*x)
	}
}

// Scale multiplies every entry by c in place. Scaling by 0 clears the vector.
func (v Vector) Scale(c float64) {
	if c == 0 {
		clear(v)
		return
	}
	if c == 1 {
		return
	}
	for i := range v {
		v[i] *= c
	}
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	for i, x := range v {
		c[i] = x
	}
	return c
}

// Len reports the number of non-zero entries.
func (v Vector) Len() int { return len(v) }

// Sum returns the total mass of the vector.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// L1 returns the l1 norm Σ|v_i|.
func (v Vector) L1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// LInf returns the l∞ norm max|v_i|.
func (v Vector) LInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Dot returns the inner product of v and other.
func (v Vector) Dot(other Vector) float64 {
	a, b := v, other
	if len(b) < len(a) {
		a, b = b, a
	}
	var s float64
	for i, x := range a {
		if y, ok := b[i]; ok {
			s += x * y
		}
	}
	return s
}

// Truncate removes every entry with absolute value at or below eps and
// returns the number of entries removed.
func (v Vector) Truncate(eps float64) int {
	removed := 0
	for i, x := range v {
		if math.Abs(x) <= eps {
			delete(v, i)
			removed++
		}
	}
	return removed
}

// Diff returns the entry-wise difference v - other as a new vector.
func Diff(v, other Vector) Vector {
	d := v.Clone()
	for i, x := range other {
		d.Add(i, -x)
	}
	return d
}

// L1Distance returns Σ|v_i - o_i|.
func L1Distance(v, other Vector) float64 {
	var s float64
	for i, x := range v {
		s += math.Abs(x - other[i])
	}
	for i, y := range other {
		if _, ok := v[i]; !ok {
			s += math.Abs(y)
		}
	}
	return s
}

// LInfDistance returns max_i |v_i - o_i|.
func LInfDistance(v, other Vector) float64 {
	var m float64
	for i, x := range v {
		if d := math.Abs(x - other[i]); d > m {
			m = d
		}
	}
	for i, y := range other {
		if _, ok := v[i]; !ok {
			if d := math.Abs(y); d > m {
				m = d
			}
		}
	}
	return m
}

// Entry is one (id, score) pair of a vector.
type Entry struct {
	ID    int32
	Score float64
}

// Entries returns the non-zero entries sorted by id ascending.
func (v Vector) Entries() []Entry {
	es := make([]Entry, 0, len(v))
	for i, x := range v {
		es = append(es, Entry{i, x})
	}
	sort.Slice(es, func(a, b int) bool { return es[a].ID < es[b].ID })
	return es
}

// TopK returns the k highest-scoring entries, ties broken by smaller id,
// in O(n log k) with a bounded min-heap. If k exceeds the number of
// entries, all entries are returned.
func (v Vector) TopK(k int) []Entry {
	sel := newTopKSelector(k)
	for i, x := range v {
		sel.offer(i, x)
	}
	return sel.take()
}

// String renders up to 8 entries, for debugging.
func (v Vector) String() string {
	es := v.Entries()
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range es {
		if i == 8 {
			fmt.Fprintf(&b, " …(%d more)", len(es)-8)
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%.4g", e.ID, e.Score)
	}
	b.WriteByte('}')
	return b.String()
}
