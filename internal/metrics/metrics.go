// Package metrics implements the accuracy measures of §6.1 and §6.2.10:
// average L1 and L∞ norms between PPVs, and the top-k measures
// Precision@k, RAG (relative aggregated goodness), and Kendall pair-order
// accuracy used to compare exact and approximate algorithms (Figure 26).
package metrics

import (
	"sort"

	"exactppr/internal/sparse"
)

// AvgL1 returns Σ_v |a(v) − b(v)| / n — the paper's average L1 norm.
func AvgL1(a, b sparse.Vector, n int) float64 {
	if n <= 0 {
		return 0
	}
	return sparse.L1Distance(a, b) / float64(n)
}

// LInf returns max_v |a(v) − b(v)|.
func LInf(a, b sparse.Vector) float64 { return sparse.LInfDistance(a, b) }

// PrecisionAtK returns |topK(approx) ∩ topK(exact)| / k: how many of the
// approximate top-k really belong there.
func PrecisionAtK(exact, approx sparse.Vector, k int) float64 {
	if k <= 0 {
		return 1
	}
	et := exact.TopK(k)
	at := approx.TopK(k)
	inExact := make(map[int32]bool, len(et))
	for _, e := range et {
		inExact[e.ID] = true
	}
	hits := 0
	for _, a := range at {
		if inExact[a.ID] {
			hits++
		}
	}
	den := k
	if len(et) < den {
		den = len(et)
	}
	if den == 0 {
		return 1
	}
	return float64(hits) / float64(den)
}

// RAG returns the relative aggregated goodness at k (following [11]):
// the exact PPV mass captured by the approximate top-k, relative to the
// mass of the true top-k. 1.0 means the approximate list is as good as
// the true one even if the identities differ.
func RAG(exact, approx sparse.Vector, k int) float64 {
	if k <= 0 {
		return 1
	}
	var best, got float64
	for _, e := range exact.TopK(k) {
		best += e.Score
	}
	for _, a := range approx.TopK(k) {
		got += exact.Get(a.ID)
	}
	if best == 0 {
		return 1
	}
	return got / best
}

// KendallAtK returns the fraction of correctly ordered pairs among the
// exact top-k nodes when re-scored by the approximate vector, counting
// ties in the approximate scores as half-correct. 1.0 = perfect order
// agreement. This is the pair-order accuracy behind the paper's Kendall
// measure (§6.2.10).
func KendallAtK(exact, approx sparse.Vector, k int) float64 {
	top := exact.TopK(k)
	if len(top) < 2 {
		return 1
	}
	ids := make([]int32, len(top))
	for i, e := range top {
		ids[i] = e.ID
	}
	// Exact scores strictly order `top` (ties broken by id inside TopK);
	// compare each pair's order under the approximate scores.
	var correct float64
	var total float64
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			total++
			ei, ej := exact.Get(ids[i]), exact.Get(ids[j])
			ai, aj := approx.Get(ids[i]), approx.Get(ids[j])
			switch {
			case ei == ej:
				// Tied in truth: any approximate order is acceptable.
				correct++
			case ai == aj:
				correct += 0.5
			case (ei > ej) == (ai > aj):
				correct++
			}
		}
	}
	return correct / total
}

// TopKOverlapIDs returns the ids in both top-k lists, sorted — a helper
// for reports.
func TopKOverlapIDs(exact, approx sparse.Vector, k int) []int32 {
	inExact := make(map[int32]bool)
	for _, e := range exact.TopK(k) {
		inExact[e.ID] = true
	}
	var out []int32
	for _, a := range approx.TopK(k) {
		if inExact[a.ID] {
			out = append(out, a.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
