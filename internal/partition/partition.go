package partition

import (
	"fmt"
	"math/rand"

	"exactppr/internal/graph"
	"exactppr/internal/matching"
)

// Options tunes the partitioner.
type Options struct {
	// Imbalance is the tolerated deviation from perfectly balanced part
	// weights (0.05 = 5%). Values ≤ 0 default to 0.1.
	Imbalance float64
	// Seed drives the deterministic RNG. The zero seed is fine.
	Seed int64
}

func (o Options) imbalance() float64 {
	if o.Imbalance <= 0 {
		return 0.1
	}
	return o.Imbalance
}

// Partition splits g into k parts of near-equal size via recursive
// multilevel bisection and returns a part id (0..k-1) per node.
func Partition(g *graph.Graph, k int, opts Options) ([]int32, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k = %d, want ≥ 1", k)
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("partition: empty graph")
	}
	parts := make([]int32, n)
	if k == 1 {
		return parts, nil
	}
	if k > n {
		return nil, fmt.Errorf("partition: k = %d exceeds %d nodes", k, n)
	}
	ug := undirectedView(g)
	rng := rand.New(rand.NewSource(opts.Seed))
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	recursiveBisect(ug, ids, 0, k, parts, opts.imbalance(), rng)
	return parts, nil
}

// recursiveBisect splits the vertex set ids (local ids into ug) into parts
// firstPart..firstPart+k-1, writing global part ids into out (indexed by
// the ORIGINAL node id carried in origIDs alongside ug construction).
func recursiveBisect(ug *ugraph, origIDs []int32, firstPart, k int, out []int32, imb float64, rng *rand.Rand) {
	if k == 1 {
		for _, id := range origIDs {
			out[id] = int32(firstPart)
		}
		return
	}
	kl := k / 2
	kr := k - kl
	frac := float64(kl) / float64(k)
	side := bisect(ug, frac, imb, rng)
	// Split ug into the two induced sub-ugraphs and recurse.
	leftUG, leftIDs := subUGraph(ug, origIDs, side, 0)
	rightUG, rightIDs := subUGraph(ug, origIDs, side, 1)
	recursiveBisect(leftUG, leftIDs, firstPart, kl, out, imb, rng)
	recursiveBisect(rightUG, rightIDs, firstPart+kl, kr, out, imb, rng)
}

// subUGraph extracts the induced sub-ugraph of vertices on the given side,
// carrying original ids along.
func subUGraph(ug *ugraph, origIDs []int32, side []int8, which int8) (*ugraph, []int32) {
	n := ug.numNodes()
	local := make([]int32, n)
	for i := range local {
		local[i] = -1
	}
	var ids []int32
	var cnt int32
	for v := 0; v < n; v++ {
		if side[v] == which {
			local[v] = cnt
			cnt++
			ids = append(ids, origIDs[v])
		}
	}
	xadj := make([]int32, cnt+1)
	var adjncy, adjwgt []int32
	var li int32
	for v := int32(0); v < int32(n); v++ {
		if side[v] != which {
			continue
		}
		nbrs, wts := ug.neighbors(v)
		for i, nb := range nbrs {
			if side[nb] == which {
				adjncy = append(adjncy, local[nb])
				adjwgt = append(adjwgt, wts[i])
			}
		}
		xadj[li+1] = int32(len(adjncy))
		li++
	}
	vwgt := make([]int32, cnt)
	li = 0
	for v := 0; v < n; v++ {
		if side[v] == which {
			vwgt[li] = ug.vwgt[v]
			li++
		}
	}
	return &ugraph{xadj: xadj, adjncy: adjncy, adjwgt: adjwgt, vwgt: vwgt}, ids
}

// CutEdges returns the directed edges of g whose endpoints lie in
// different parts, as undirected endpoint pairs (deduplicated).
func CutEdges(g *graph.Graph, parts []int32) []matching.Edge {
	seen := make(map[[2]int32]bool)
	var edges []matching.Edge
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Out(u) {
			if parts[u] == parts[v] {
				continue
			}
			key := [2]int32{u, v}
			if v < u {
				key = [2]int32{v, u}
			}
			if !seen[key] {
				seen[key] = true
				edges = append(edges, matching.Edge{U: key[0], V: key[1]})
			}
		}
	}
	return edges
}

// HubNodes selects the hub set for a partition: a vertex cover of the cut
// edges, so removing the hubs disconnects the parts. For 2-way partitions
// the cut-edge graph is bipartite (every cut edge joins part 0 and part 1)
// and König's theorem yields a minimum cover; otherwise the greedy
// 2-approximation is used. The result is sorted-free (map form).
func HubNodes(g *graph.Graph, parts []int32, k int) map[int32]bool {
	cut := CutEdges(g, parts)
	if len(cut) == 0 {
		return map[int32]bool{}
	}
	if k == 2 {
		return konigCover(cut, parts)
	}
	return matching.GreedyVertexCover(cut)
}

// konigCover computes the minimum vertex cover of bipartite cut edges
// between part 0 (left) and part 1 (right).
func konigCover(cut []matching.Edge, parts []int32) map[int32]bool {
	// Compact the endpoint ids per side.
	leftIdx := make(map[int32]int32)
	rightIdx := make(map[int32]int32)
	var leftIDs, rightIDs []int32
	intern := func(node int32) (side int, idx int32) {
		if parts[node] == 0 {
			if i, ok := leftIdx[node]; ok {
				return 0, i
			}
			i := int32(len(leftIDs))
			leftIdx[node] = i
			leftIDs = append(leftIDs, node)
			return 0, i
		}
		if i, ok := rightIdx[node]; ok {
			return 1, i
		}
		i := int32(len(rightIDs))
		rightIdx[node] = i
		rightIDs = append(rightIDs, node)
		return 1, i
	}
	type lr struct{ l, r int32 }
	var pairs []lr
	for _, e := range cut {
		su, iu := intern(e.U)
		_, iv := intern(e.V)
		if su == 0 {
			pairs = append(pairs, lr{iu, iv})
		} else {
			pairs = append(pairs, lr{iv, iu})
		}
	}
	bg := &matching.BipartiteGraph{L: len(leftIDs), R: len(rightIDs), Adj: make([][]int32, len(leftIDs))}
	for _, p := range pairs {
		bg.Adj[p.l] = append(bg.Adj[p.l], p.r)
	}
	coverL, coverR := matching.MinVertexCover(bg)
	hubs := make(map[int32]bool)
	for i, in := range coverL {
		if in {
			hubs[leftIDs[i]] = true
		}
	}
	for i, in := range coverR {
		if in {
			hubs[rightIDs[i]] = true
		}
	}
	return hubs
}

// Balance returns max part weight / ideal part weight for a partition
// (1.0 = perfect). Hub nodes can be excluded via the skip set (nil ok).
func Balance(parts []int32, k int, skip map[int32]bool) float64 {
	if k == 0 {
		return 1
	}
	w := make([]int, k)
	total := 0
	for u, p := range parts {
		if skip[int32(u)] {
			continue
		}
		w[p]++
		total++
	}
	if total == 0 {
		return 1
	}
	maxW := 0
	for _, x := range w {
		if x > maxW {
			maxW = x
		}
	}
	return float64(maxW) * float64(k) / float64(total)
}
