// Command pprgen generates a synthetic dataset analogue and writes it as
// a SNAP edge-list file.
//
//	pprgen -dataset web -scale 0.5 -seed 1 -o web.txt
//	pprgen -dataset meetup:M3 -o m3.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"exactppr/internal/graph"
	"exactppr/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "email", "preset name (email|web|youtube|pld|pld_full|meetup:M1..M5)")
		scale   = flag.Float64("scale", 0.5, "node-count multiplier for presets")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output path (default stdout)")
		stats   = flag.Bool("stats", false, "print graph statistics instead of edges")
	)
	flag.Parse()

	ds, err := workload.Load(*dataset, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Printf("%s\n", ds.Name)
		graph.ComputeStats(ds.G).Fprint(os.Stdout)
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, ds.G); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: %d nodes, %d edges\n", ds.Name, ds.G.NumNodes(), ds.G.NumEdges())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pprgen:", err)
	os.Exit(1)
}
