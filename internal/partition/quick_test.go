package partition

import (
	"math/rand"
	"testing"

	"exactppr/internal/gen"
	"exactppr/internal/graph"
	"exactppr/internal/matching"
)

// TestQuickPartitionInvariants fuzzes the partitioner across random
// graphs, part counts, and seeds, asserting the three contract
// properties: every node gets a valid part, hub sets cover the cut, and
// hub sets separate the parts.
func TestQuickPartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(250)
		var g *graph.Graph
		if trial%2 == 0 {
			g = gen.ErdosRenyi(n, 1+rng.Float64()*4, int64(trial))
		} else {
			var err error
			g, err = gen.Community(gen.Config{
				Nodes: n, AvgOutDegree: 1 + rng.Float64()*4,
				Communities: 1 + rng.Intn(4), InterFrac: rng.Float64() * 0.3,
				Seed: int64(trial),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		k := 1 + rng.Intn(5)
		if k > n {
			k = n
		}
		parts, err := Partition(g, k, Options{Seed: int64(trial * 3)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(parts) != n {
			t.Fatalf("trial %d: %d parts for %d nodes", trial, len(parts), n)
		}
		for u, p := range parts {
			if p < 0 || int(p) >= k {
				t.Fatalf("trial %d: node %d part %d out of range", trial, u, p)
			}
		}
		hubs := HubNodes(g, parts, k)
		if !matching.IsVertexCover(CutEdges(g, parts), hubs) {
			t.Fatalf("trial %d: hubs do not cover the cut", trial)
		}
		if !graph.IsSeparator(g, hubs, parts) {
			t.Fatalf("trial %d: hubs do not separate", trial)
		}
	}
}

// TestQuickKonigNeverWorseThanGreedy: on 2-way cuts the König cover is a
// true minimum, so it can never exceed the greedy 2-approximation.
func TestQuickKonigNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(200)
		g := gen.ErdosRenyi(n, 2+rng.Float64()*3, int64(trial+500))
		parts, err := Partition(g, 2, Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		cut := CutEdges(g, parts)
		if len(cut) == 0 {
			continue
		}
		konig := konigCover(cut, parts)
		greedy := matching.GreedyVertexCover(cut)
		if len(konig) > len(greedy) {
			t.Fatalf("trial %d: König %d > greedy %d", trial, len(konig), len(greedy))
		}
		if !matching.IsVertexCover(cut, konig) {
			t.Fatalf("trial %d: König cover invalid", trial)
		}
	}
}

// TestQuickBalanceUnderFuzz: parts stay within a loose balance budget on
// connected-ish random graphs.
func TestQuickBalanceUnderFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 15; trial++ {
		n := 100 + rng.Intn(400)
		g := gen.ErdosRenyi(n, 3, int64(trial+900))
		k := 2 + rng.Intn(3)
		parts, err := Partition(g, k, Options{Imbalance: 0.1, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if bal := Balance(parts, k, nil); bal > 1.6 {
			t.Fatalf("trial %d: balance %.2f (k=%d, n=%d)", trial, bal, k, n)
		}
	}
}
