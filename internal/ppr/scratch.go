package ppr

import (
	"exactppr/internal/graph"
	"exactppr/internal/sparse"
)

// Scratch holds the working arrays of the ppr kernels so a worker
// executing many tasks back to back — the pre-computation pool, the
// incremental-update recompute pool — reuses one set of buffers instead
// of allocating fresh O(|V|) slices per vector. The dense kernels clear
// the buffers per use; the push kernels stamp slots lazily (see
// push.go), so a task's cost stays proportional to the frontier it
// actually reaches. The zero value is ready to use; a Scratch must not
// be shared between concurrent calls.
type Scratch struct {
	f1, f2, f3 []float64
	marks      []bool
	queue      []int32
	touched    []int32
	stamp      []uint32
	epoch      uint32
	entries    []sparse.Entry

	// Stats accumulates kernel work counters across every call on this
	// scratch — one pre-computation worker's tally.
	Stats KernelStats
}

// grow ensures every buffer holds n slots. Growing invalidates stamps
// (fresh arrays are all-zero and epoch restarts).
func (sc *Scratch) grow(n int) {
	if cap(sc.f1) >= n {
		return
	}
	sc.f1 = make([]float64, n)
	sc.f2 = make([]float64, n)
	sc.f3 = make([]float64, n)
	sc.marks = make([]bool, n)
	sc.stamp = make([]uint32, n)
	sc.epoch = 0
}

// dense returns the three float buffers re-sliced to n and zeroed, for
// the dense kernels.
func (sc *Scratch) dense(n int) (a, b, c []float64) {
	sc.grow(n)
	a, b, c = sc.f1[:n], sc.f2[:n], sc.f3[:n]
	clear(a)
	clear(b)
	clear(c)
	return a, b, c
}

// stamped returns the float buffers, the mark buffer, and the stamp
// array under a fresh epoch, for the push kernels: nothing is cleared,
// slots are lazily initialized on first touch of the new epoch.
func (sc *Scratch) stamped(n int) (a, b, c []float64, marks []bool, stamp []uint32, epoch uint32) {
	sc.grow(n)
	sc.epoch++
	if sc.epoch == 0 { // stamp wrap: all stamps look fresh, clear them
		clear(sc.stamp)
		sc.epoch = 1
	}
	return sc.f1[:n], sc.f2[:n], sc.f3[:n], sc.marks[:n], sc.stamp[:n], sc.epoch
}

func (sc *Scratch) bools(n int) []bool {
	sc.grow(n)
	m := sc.marks[:n]
	clear(m)
	return m
}

// queueBuf returns the reusable work-queue buffer, emptied. Kernels
// hand it back via putQueue so growth is kept across tasks.
func (sc *Scratch) queueBuf() []int32 {
	if sc.queue == nil {
		sc.queue = make([]int32, 0, 64)
	}
	return sc.queue[:0]
}

// putQueue returns a (possibly grown) queue buffer for reuse.
func (sc *Scratch) putQueue(q []int32) { sc.queue = q[:0] }

// ids returns the reusable touched-id buffer, emptied.
func (sc *Scratch) ids() []int32 {
	if sc.touched == nil {
		sc.touched = make([]int32, 0, 64)
	}
	return sc.touched[:0]
}

// PartialEntries computes the partial vector of u with the engine
// selected by p.Kernel and returns its nonzero (localID, value) entries
// in unspecified order. The slice ALIASES the scratch's entry buffer —
// it is valid only until the next PartialEntries/SkeletonEntries call
// on sc; callers must drain it first.
func (sc *Scratch) PartialEntries(g *graph.Graph, u int32, isHub []bool, p Params) ([]sparse.Entry, error) {
	sc.entries = sc.entries[:0]
	if p.Kernel == KernelDense {
		d, _, steps, err := partialVectorDense(g, u, isHub, p, sc)
		if err != nil {
			return nil, err
		}
		sc.Stats.Add(KernelStats{Vectors: 1, Pushes: int64(steps), DenseFallbacks: 1})
		for i, x := range d {
			if x != 0 {
				sc.entries = append(sc.entries, sparse.Entry{ID: int32(i), Score: x})
			}
		}
		return sc.entries, nil
	}
	st, err := pushPartial(g, u, isHub, p, sc)
	if err != nil {
		return nil, err
	}
	sc.recordPush(&st)
	sc.entries = st.appendEntries(sc.entries)
	return sc.entries, nil
}

// SkeletonEntries computes s_·(h) with the engine selected by p.Kernel
// and returns the nonzero (localID, value) entries in unspecified
// order. Same aliasing contract as PartialEntries.
func (sc *Scratch) SkeletonEntries(g *graph.Graph, h int32, p Params) ([]sparse.Entry, error) {
	sc.entries = sc.entries[:0]
	if p.Kernel == KernelDense {
		est, steps, err := skeletonForHub(g, h, p, sc)
		if err != nil {
			return nil, err
		}
		sc.Stats.Add(KernelStats{Vectors: 1, Pushes: int64(steps), DenseFallbacks: 1})
		for i, x := range est {
			if x != 0 {
				sc.entries = append(sc.entries, sparse.Entry{ID: int32(i), Score: x})
			}
		}
		return sc.entries, nil
	}
	st, err := pushSkeleton(g, h, p, sc)
	if err != nil {
		return nil, err
	}
	sc.recordPush(&st)
	sc.entries = st.appendEntries(sc.entries)
	return sc.entries, nil
}

// recordPush tallies one push-kernel invocation.
func (sc *Scratch) recordPush(st *pushState) {
	ks := KernelStats{Vectors: 1, Pushes: int64(st.pushes)}
	if st.spilled {
		ks.DenseFallbacks = 1
	}
	sc.Stats.Add(ks)
}
