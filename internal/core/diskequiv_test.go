package core

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"exactppr/internal/hierarchy"
	"exactppr/internal/sparse"
)

// The cross-path equivalence suite: every way of serving a saved store —
// in-memory (Load of either format version), disk-resident over a
// memory map, disk-resident over the ReadAt fallback, and the legacy
// version-1 file through both — must return BIT-IDENTICAL vectors. The
// transposed hub-plan index preserves the exact floating-point fold
// order of the in-memory query, so equality here is ==, not a tolerance.

type diskVariant struct {
	name string
	ds   *DiskStore
}

func equivFixture(t *testing.T) (*Store, []diskVariant, []*Store) {
	t.Helper()
	g := testGraph(t, 77)
	s, err := BuildHGPA(g, hierarchy.Options{Seed: 78}, tightParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	v2 := filepath.Join(dir, "v2.store")
	if err := SaveFile(v2, s); err != nil {
		t.Fatal(err)
	}
	v1 := filepath.Join(dir, "v1.store")
	f, err := os.Create(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := saveV1(f, s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var variants []diskVariant
	for _, spec := range []struct {
		name string
		path string
		opts DiskOptions
	}{
		{"mmap/v2", v2, DiskOptions{}},
		{"fallback/v2", v2, DiskOptions{DisableMmap: true}},
		{"mmap/v1", v1, DiskOptions{}},
		{"fallback/v1", v1, DiskOptions{DisableMmap: true}},
		{"tiny-cache/v2", v2, DiskOptions{CacheCap: 2}}, // constant eviction
	} {
		ds, err := OpenDiskStoreWith(spec.path, spec.opts)
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		t.Cleanup(func() { ds.Close() })
		variants = append(variants, diskVariant{spec.name, ds})
	}

	var loaded []*Store
	for _, path := range []string{v2, v1} {
		ls, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		loaded = append(loaded, ls)
	}
	return s, variants, loaded
}

func TestCrossPathEquivalence(t *testing.T) {
	s, variants, loaded := equivFixture(t)
	queries := sampleQueries(s)

	for _, u := range queries {
		want, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		wantTop, err := s.QueryTopK(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i, ls := range loaded {
			got, err := ls.Query(u)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("loaded[%d] u=%d: in-memory reload differs", i, u)
			}
		}
		for _, v := range variants {
			got, err := v.ds.Query(u)
			if err != nil {
				t.Fatalf("%s u=%d: %v", v.name, u, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s u=%d: disk query not bit-identical to memory", v.name, u)
			}
			gotP, err := v.ds.QueryPacked(u)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotP.Unpack(), want) {
				t.Fatalf("%s u=%d: packed disk query differs", v.name, u)
			}
			gotTop, err := v.ds.QueryTopK(u, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotTop, wantTop) {
				t.Fatalf("%s u=%d: top-k differs: %v vs %v", v.name, u, gotTop, wantTop)
			}
		}
	}
}

func TestCrossPathEquivalenceQuerySet(t *testing.T) {
	s, variants, _ := equivFixture(t)
	var nodes []int32
	seen := map[int32]bool{}
	for _, u := range sampleQueries(s) {
		if !seen[u] {
			seen[u] = true
			nodes = append(nodes, u)
		}
	}
	pref := Preference{Nodes: nodes, Weights: nil}
	want, err := s.QuerySet(pref)
	if err != nil {
		t.Fatal(err)
	}
	weighted := Preference{Nodes: pref.Nodes, Weights: make([]float64, len(pref.Nodes))}
	for i := range weighted.Weights {
		weighted.Weights[i] = float64(i + 1)
	}
	wantW, err := s.QuerySet(weighted)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		got, err := v.ds.QuerySet(pref)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: preference-set query differs", v.name)
		}
		gotW, err := v.ds.QuerySetPacked(weighted)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotW.Unpack(), wantW) {
			t.Fatalf("%s: weighted preference-set query differs", v.name)
		}
	}
}

// TestDiskShardsMatchMemoryShards: each disk shard's share is
// bit-identical to the corresponding in-memory shard's share (the two
// Split implementations deal hubs and leaves identically), and the
// shares still sum to the exact PPV.
func TestDiskShardsMatchMemoryShards(t *testing.T) {
	s, variants, _ := equivFixture(t)
	const n = 3
	memShards, err := Split(s, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		diskShards, err := SplitDisk(v.ds, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range sampleQueries(s) {
			var diskParts, memParts []sparse.Packed
			for i := range diskShards {
				memShare, err := memShards[i].QueryPacked(u)
				if err != nil {
					t.Fatal(err)
				}
				diskShare, err := diskShards[i].QueryPacked(u)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(diskShare.Entries(), memShare.Entries()) {
					t.Fatalf("%s shard %d u=%d: disk share differs from memory share", v.name, i, u)
				}
				diskParts = append(diskParts, diskShare)
				memParts = append(memParts, memShare)
			}
			// The merged sums are bit-identical across backends (the
			// central query is only FP-close: different fold order).
			diskSum := sparse.MergePacked(diskParts)
			memSum := sparse.MergePacked(memParts)
			if !reflect.DeepEqual(diskSum.Unpack(), memSum.Unpack()) {
				t.Fatalf("%s u=%d: merged disk shares differ from merged memory shares", v.name, u)
			}
			want, err := s.Query(u)
			if err != nil {
				t.Fatal(err)
			}
			if d := sparse.L1Distance(diskSum.Unpack(), want); d > 1e-12 {
				t.Fatalf("%s u=%d: shard shares do not sum to the PPV (L1 %v)", v.name, u, d)
			}
		}
	}
}

// TestDiskStoreConcurrentEquivalence: the sharded cache and coalescing
// paths stay bit-identical under concurrent mixed traffic (run with
// -race in CI).
func TestDiskStoreConcurrentEquivalence(t *testing.T) {
	s, variants, _ := equivFixture(t)
	queries := sampleQueries(s)
	want := make([]sparse.Vector, len(queries))
	for i, u := range queries {
		w, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	for _, v := range variants {
		v.ds.SetCacheCap(8) // force eviction + coalescing pressure
		var wg sync.WaitGroup
		errCh := make(chan error, 32)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for i := 0; i < 30; i++ {
					k := (seed + i) % len(queries)
					got, err := v.ds.Query(queries[k])
					if err != nil {
						errCh <- err
						return
					}
					if !reflect.DeepEqual(got, want[k]) {
						errCh <- &mismatchError{queries[k]}
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatalf("%s: %v", v.name, err)
		}
	}
}
