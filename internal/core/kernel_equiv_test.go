package core

import (
	"math"
	"math/rand"
	"testing"

	"exactppr/internal/gen"
	"exactppr/internal/graph"
	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

// The cross-kernel acceptance contract: stores built (or incrementally
// maintained) under any Params.Kernel agree within 1e-9 per entry.
const kernelTol = 1e-9

// kernelTestGraph returns a fresh, identical graph per call so each
// kernel's store owns its root graph (ApplyUpdates mutates it).
func kernelTestGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.Community(gen.Config{
		Nodes: 300, AvgOutDegree: 4, Communities: 3,
		InterFrac: 0.08, Seed: seed, // MinOutDegree 0: keep some dangling nodes in play
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func comparePackedMaps(t *testing.T, section string, got, want map[int32]sparse.Packed) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d keys, want %d", section, len(got), len(want))
	}
	for key, w := range want {
		gv, ok := got[key]
		if !ok {
			t.Fatalf("%s: key %d missing", section, key)
		}
		if gv.Len() != w.Len() {
			t.Fatalf("%s[%d]: %d entries, want %d", section, key, gv.Len(), w.Len())
		}
		w.ForEach(func(id int32, x float64) {
			if math.Abs(gv.Get(id)-x) > kernelTol {
				t.Fatalf("%s[%d]: entry %d = %v, want %v", section, key, id, gv.Get(id), x)
			}
		})
	}
}

func compareStores(t *testing.T, got, want *Store) {
	t.Helper()
	comparePackedMaps(t, "HubPartial", got.HubPartial, want.HubPartial)
	comparePackedMaps(t, "Skeleton", got.Skeleton, want.Skeleton)
	comparePackedMaps(t, "LeafPPV", got.LeafPPV, want.LeafPPV)
}

// TestKernelEquivalenceStore: the full HGPA pre-computation — hub
// partials, skeletons, leaf PPVs — is identical within 1e-9 across
// KernelDense, KernelPush, and KernelAuto, for both dangling policies.
func TestKernelEquivalenceStore(t *testing.T) {
	for _, dangling := range []ppr.DanglingPolicy{ppr.DanglingAbsorb, ppr.DanglingRestart} {
		build := func(k ppr.Kernel) *Store {
			p := ppr.Params{Alpha: 0.15, Eps: 1e-5, Dangling: dangling, Kernel: k}
			s, err := BuildHGPA(kernelTestGraph(t, 7), hierarchy.Options{Seed: 3}, p, 3)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		dense := build(ppr.KernelDense)
		compareStores(t, build(ppr.KernelPush), dense)
		compareStores(t, build(ppr.KernelAuto), dense)
	}
}

// TestKernelEquivalenceAfterUpdates: stores maintained through the same
// sequence of edge-delta batches stay within 1e-9 of each other —
// section maps and query results alike — whatever kernel recomputes
// the dirty partitions.
func TestKernelEquivalenceAfterUpdates(t *testing.T) {
	build := func(k ppr.Kernel) *Store {
		p := ppr.Params{Alpha: 0.15, Eps: 1e-6, Kernel: k}
		s, err := BuildHGPA(kernelTestGraph(t, 11), hierarchy.Options{Seed: 5}, p, 3)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	dense := build(ppr.KernelDense)
	push := build(ppr.KernelPush)

	rng := rand.New(rand.NewSource(13))
	n := int32(dense.H.G.NumNodes())
	for batch := 0; batch < 6; batch++ {
		var d graph.Delta
		for i := 0; i < 10; i++ {
			u, v := rng.Int31n(n), rng.Int31n(n)
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				d.Insert = append(d.Insert, [2]int32{u, v})
			} else {
				d.Delete = append(d.Delete, [2]int32{u, v})
			}
		}
		var err error
		dense, _, err = dense.ApplyUpdates(d, 3)
		if err != nil {
			t.Fatalf("batch %d (dense): %v", batch, err)
		}
		push, _, err = push.ApplyUpdates(d, 3)
		if err != nil {
			t.Fatalf("batch %d (push): %v", batch, err)
		}
	}
	compareStores(t, push, dense)
	for _, u := range sampleQueries(dense) {
		want, err := dense.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := push.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d entries, want %d", u, len(got), len(want))
		}
		for id, x := range want {
			if math.Abs(got.Get(id)-x) > kernelTol {
				t.Fatalf("query %d: entry %d = %v, want %v", u, id, got.Get(id), x)
			}
		}
	}
}

// TestPrecomputeInfoKernelStats: the info block records the kernel and
// a plausible work tally (every vector needs at least one push; dense
// drains everything, pure push drains nothing densely).
func TestPrecomputeInfoKernelStats(t *testing.T) {
	for _, k := range []ppr.Kernel{ppr.KernelAuto, ppr.KernelDense, ppr.KernelPush} {
		p := ppr.Params{Alpha: 0.15, Eps: 1e-4, Kernel: k}
		h, err := hierarchy.Build(kernelTestGraph(t, 17), hierarchy.Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		s, info, err := PrecomputeWithInfo(h, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		if info.Kernel != k {
			t.Fatalf("info.Kernel = %v, want %v", info.Kernel, k)
		}
		if want := 2*len(s.HubPartial) + len(s.LeafPPV); info.Vectors != want {
			t.Fatalf("info.Vectors = %d, want %d", info.Vectors, want)
		}
		if info.Pushes <= 0 {
			t.Fatalf("info.Pushes = %d, want > 0", info.Pushes)
		}
		switch k {
		case ppr.KernelDense:
			if info.DenseFallbacks != int64(info.Vectors) {
				t.Fatalf("dense: fallbacks %d, want %d", info.DenseFallbacks, info.Vectors)
			}
		case ppr.KernelPush:
			if info.DenseFallbacks != 0 {
				t.Fatalf("push: fallbacks %d, want 0", info.DenseFallbacks)
			}
		}
	}
}
