package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"exactppr/internal/gen"
	"exactppr/internal/graph"
	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

// updateParams are tight enough that two exact constructions over
// DIFFERENT hierarchies of the same graph agree within 1e-9: the only
// divergence is each construction's ε-driven truncation.
func updateParams() ppr.Params { return ppr.Params{Alpha: 0.15, Eps: 1e-13} }

func updateGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.Community(gen.Config{
		Nodes: 120, AvgOutDegree: 3, Communities: 3,
		InterFrac: 0.05, MinOutDegree: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// rebuildFromEdges reconstructs an independent graph equal to g's
// current edge set — the input a from-scratch build would see.
func rebuildFromEdges(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumNodes())
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Out(u) {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func randomDelta(rng *rand.Rand, g *graph.Graph, ops int) graph.Delta {
	var d graph.Delta
	n := int32(g.NumNodes())
	for i := 0; i < ops; i++ {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			d.Delete = append(d.Delete, [2]int32{u, v})
		} else {
			d.Insert = append(d.Insert, [2]int32{u, v})
		}
	}
	return d
}

// TestApplyUpdatesEquivalentToRebuild is the acceptance check of the
// incremental pipeline: after every one of 20+ random edge-delta
// batches, the incrementally maintained store answers Query and
// QuerySet identically (within 1e-9) to a from-scratch BuildHGPA of the
// updated graph, while recomputing strictly fewer vectors than the
// rebuild would.
func TestApplyUpdatesEquivalentToRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	g := updateGraph(t, 17)
	opts := hierarchy.Options{Seed: 23}
	s, err := BuildHGPA(g, opts, updateParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 22; batch++ {
		d := randomDelta(rng, s.H.G, 1+rng.Intn(4))
		if d.Len() == 0 {
			continue
		}
		ns, info, err := s.ApplyUpdates(d, 2)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if info.Inserted+info.Deleted > 0 {
			if info.Recomputed <= 0 {
				t.Fatalf("batch %d: nothing recomputed for an effective delta", batch)
			}
			if info.Recomputed >= info.StoreVectors {
				t.Fatalf("batch %d: recomputed %d of %d vectors — no better than a rebuild",
					batch, info.Recomputed, info.StoreVectors)
			}
		}
		if err := ns.H.Validate(); err != nil {
			t.Fatalf("batch %d: hierarchy invalid: %v", batch, err)
		}

		fresh, err := BuildHGPA(rebuildFromEdges(ns.H.G), opts, updateParams(), 2)
		if err != nil {
			t.Fatalf("batch %d: rebuild: %v", batch, err)
		}
		queries := []int32{0, 40, 81, 119}
		for _, hubs := range [][]int32{{}, ns.H.Root.Hubs} {
			for _, h := range hubs {
				queries = append(queries, h) // hub queries are the regression-prone cases
			}
		}
		for _, u := range queries {
			got, err := ns.Query(u)
			if err != nil {
				t.Fatalf("batch %d u=%d: %v", batch, u, err)
			}
			want, err := fresh.Query(u)
			if err != nil {
				t.Fatalf("batch %d u=%d: %v", batch, u, err)
			}
			if dist := sparse.LInfDistance(got, want); dist > 1e-9 {
				t.Fatalf("batch %d u=%d: incremental vs rebuild L∞ = %v", batch, u, dist)
			}
		}
		pref := Preference{Nodes: []int32{queries[0], queries[1], queries[2]}, Weights: []float64{3, 1, 2}}
		got, err := ns.QuerySet(pref)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		want, err := fresh.QuerySet(pref)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if dist := sparse.LInfDistance(got, want); dist > 1e-9 {
			t.Fatalf("batch %d: QuerySet incremental vs rebuild L∞ = %v", batch, dist)
		}
		s = ns
	}
}

// TestApplyUpdatesShardsStayExact: after updates the shard
// decomposition of the new store still sums exactly to the central
// answer — what the distributed serving path relies on.
func TestApplyUpdatesShardsStayExact(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	g := updateGraph(t, 29)
	s, err := BuildHGPA(g, hierarchy.Options{Seed: 31}, updateParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 4; batch++ {
		ns, _, err := s.ApplyUpdates(randomDelta(rng, s.H.G, 3), 2)
		if err != nil {
			t.Fatal(err)
		}
		s = ns
	}
	shards, err := Split(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int32{2, 60, 117} {
		want, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		sum := sparse.New(64)
		for _, sh := range shards {
			v, err := sh.QueryVector(u)
			if err != nil {
				t.Fatal(err)
			}
			sum.AddScaled(v, 1)
		}
		if d := sparse.LInfDistance(sum, want); d > 1e-12 {
			t.Fatalf("u=%d: shard sum L∞ = %v after updates", u, d)
		}
	}
}

// TestSaveRejectsUpdatedStore: persisting an update-maintained store
// would silently load back wrong (the format re-partitions the graph,
// losing promotions), so Save must refuse it loudly.
func TestSaveRejectsUpdatedStore(t *testing.T) {
	g := updateGraph(t, 55)
	s, err := BuildHGPA(g, hierarchy.Options{Seed: 57}, ppr.Params{Alpha: 0.15, Eps: 1e-6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ns, _, err := s.ApplyUpdates(graph.Delta{Insert: [][2]int32{{0, 100}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(t.TempDir()+"/x.store", ns); err == nil {
		t.Fatal("Save must reject an incrementally updated store")
	}
}

// TestLiveStoreSnapshotIsolation: queries racing ApplyUpdates always
// see one coherent snapshot — a captured *Store answers
// deterministically while batches land, and the published pointer only
// ever moves to a fully recomputed store. Run under -race in CI.
func TestLiveStoreSnapshotIsolation(t *testing.T) {
	g := updateGraph(t, 41)
	s, err := BuildHGPA(g, hierarchy.Options{Seed: 43}, ppr.Params{Alpha: 0.15, Eps: 1e-8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	live := NewLiveStore(s)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := live.Store()
				u := rng.Int31n(int32(snap.H.G.NumNodes()))
				a, err := snap.Query(u)
				if err != nil {
					errCh <- err
					return
				}
				b, err := snap.Query(u)
				if err != nil {
					errCh <- err
					return
				}
				if sparse.LInfDistance(a, b) != 0 {
					errCh <- errors.New("snapshot answered non-deterministically")
					return
				}
			}
		}(int64(w))
	}
	rng := rand.New(rand.NewSource(99))
	for batch := 0; batch < 6; batch++ {
		if _, err := live.ApplyUpdates(randomDelta(rng, live.Store().H.G, 3), 2); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}
