// Distributed: the paper's architecture end to end over real TCP — three
// workers each serving one shard of the pre-computation, a coordinator
// that broadcasts a query and sums the three response vectors. One round
// of communication per machine per query, exactly as §4.4 promises.
//
// The serving layer is concurrent: each worker connection is multiplexed
// (many queries in flight at once), and the final act puts an HTTP/JSON
// gateway in front of the coordinator and queries it like any web client
// would — single-source, batch fan-out, and the stats endpoint.
//
// Everything runs in one process for convenience; the workers speak the
// same wire protocol cmd/pprserve uses across hosts.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"exactppr"
	"exactppr/internal/cluster"
)

func main() {
	g, err := exactppr.GenerateDataset("email", 0.3, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	store, err := exactppr.BuildHGPA(g, exactppr.HierarchyOptions{Seed: 3}, exactppr.DefaultParams(), 0)
	if err != nil {
		log.Fatal(err)
	}

	const machines = 3
	shards, err := exactppr.Split(store, machines)
	if err != nil {
		log.Fatal(err)
	}

	// Start one TCP worker per shard on a loopback port.
	var workers []exactppr.Machine
	for i, sh := range shards {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go cluster.Serve(l, &cluster.ShardMachine{Shard: sh})
		m, err := exactppr.DialMachine(l.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		workers = append(workers, m)
		fmt.Printf("worker %d: %s (%d hubs, %d leaf vectors, %.2f MB)\n",
			i, l.Addr(), sh.HubCount(), sh.LeafCount(), float64(sh.SpaceBytes())/(1<<20))
	}

	coord, err := exactppr.NewCoordinator(workers...)
	if err != nil {
		log.Fatal(err)
	}

	for _, q := range []int32{0, 100, 500} {
		stats, err := coord.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		top := stats.Result.TopK(3)
		fmt.Printf("query %-4d → %v wall, %5.1f KB over the wire, top-3:", q,
			stats.Wall.Round(time.Microsecond), float64(stats.BytesReceived)/1024)
		for _, e := range top {
			fmt.Printf("  %d:%.4f", e.ID, e.Score)
		}
		fmt.Println()

		// The distributed answer is exact: verify against power iteration.
		oracle, err := exactppr.PowerIteration(g, q, exactppr.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		if oracle.TopK(1)[0].ID != top[0].ID {
			log.Fatalf("distributed result disagrees with power iteration at node %d", q)
		}
	}
	fmt.Println("all distributed results verified against power iteration")

	// Hammer the cluster concurrently: 32 clients share the same three
	// multiplexed connections, no lock-step round trips.
	concStart := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(u int32) {
			defer wg.Done()
			if _, err := coord.Query(u); err != nil {
				log.Fatalf("concurrent query %d: %v", u, err)
			}
		}(int32(i * 17 % g.NumNodes()))
	}
	wg.Wait()
	fmt.Printf("32 concurrent queries in %v over 3 multiplexed connections\n",
		time.Since(concStart).Round(time.Microsecond))

	// Front the coordinator with the HTTP/JSON gateway — the same thing
	// `pprserve -coordinator -workers ... -http :8080` runs across hosts.
	gw := httptest.NewServer(exactppr.NewGateway(coord).Handler())
	defer gw.Close()

	resp, err := http.Get(fmt.Sprintf("%s/ppv/%d?topk=3", gw.URL, 100))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("GET /ppv/100?topk=3 → %s", body)

	batch, _ := json.Marshal(map[string]any{"nodes": []int32{0, 100, 500}, "topk": 2})
	resp, err = http.Post(gw.URL+"/ppv", "application/json", bytes.NewReader(batch))
	if err != nil {
		log.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("POST /ppv (batch of 3) → %s", body)

	resp, err = http.Get(gw.URL + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("GET /stats → %s", body)
}
