package graph

import (
	"fmt"
	"io"
	"sort"
)

// Stats summarizes a graph's shape — the quantities §6.1 reports per
// dataset and the generator in internal/gen is calibrated against.
type Stats struct {
	Nodes, Edges int
	// AvgOutDegree = Edges/Nodes.
	AvgOutDegree float64
	// MaxOutDegree and MaxInDegree capture the degree tail.
	MaxOutDegree, MaxInDegree int
	// Dangling counts nodes with no out-edges.
	Dangling int
	// Reciprocity is the fraction of edges whose reverse also exists.
	Reciprocity float64
	// Components is the number of weakly connected components; and
	// LargestComponent its size.
	Components, LargestComponent int
	// OutDegreeP50/P90/P99 are out-degree percentiles.
	OutDegreeP50, OutDegreeP90, OutDegreeP99 int
}

// ComputeStats gathers Stats for g.
func ComputeStats(g *Graph) Stats {
	n := g.NumNodes()
	st := Stats{Nodes: n, Edges: g.NumEdges()}
	if n == 0 {
		return st
	}
	st.AvgOutDegree = float64(st.Edges) / float64(n)
	g.BuildReverse()
	outDegs := make([]int, n)
	recip := 0
	for u := int32(0); u < int32(n); u++ {
		d := g.OutDegree(u)
		outDegs[u] = d
		if d == 0 {
			st.Dangling++
		}
		if d > st.MaxOutDegree {
			st.MaxOutDegree = d
		}
		if in := len(g.In(u)); in > st.MaxInDegree {
			st.MaxInDegree = in
		}
		for _, v := range g.Out(u) {
			if g.HasEdge(v, u) {
				recip++
			}
		}
	}
	if st.Edges > 0 {
		st.Reciprocity = float64(recip) / float64(st.Edges)
	}
	labels, k := g.WeaklyConnectedComponents(nil)
	st.Components = k
	sizes := make([]int, k)
	for _, l := range labels {
		if l >= 0 {
			sizes[l]++
		}
	}
	for _, s := range sizes {
		if s > st.LargestComponent {
			st.LargestComponent = s
		}
	}
	sort.Ints(outDegs)
	pct := func(p float64) int { return outDegs[min(n-1, int(p*float64(n)))] }
	st.OutDegreeP50 = pct(0.50)
	st.OutDegreeP90 = pct(0.90)
	st.OutDegreeP99 = pct(0.99)
	return st
}

// Fprint renders the stats as a small report.
func (s Stats) Fprint(w io.Writer) {
	fmt.Fprintf(w, "nodes          %d\n", s.Nodes)
	fmt.Fprintf(w, "edges          %d\n", s.Edges)
	fmt.Fprintf(w, "avg out-degree %.2f (p50=%d p90=%d p99=%d max=%d)\n",
		s.AvgOutDegree, s.OutDegreeP50, s.OutDegreeP90, s.OutDegreeP99, s.MaxOutDegree)
	fmt.Fprintf(w, "max in-degree  %d\n", s.MaxInDegree)
	fmt.Fprintf(w, "dangling       %d\n", s.Dangling)
	fmt.Fprintf(w, "reciprocity    %.3f\n", s.Reciprocity)
	fmt.Fprintf(w, "components     %d (largest %d)\n", s.Components, s.LargestComponent)
}

// DegreeHistogram returns the out-degree histogram as (degree → count),
// useful for eyeballing heavy tails.
func DegreeHistogram(g *Graph) map[int]int {
	h := make(map[int]int)
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		h[g.OutDegree(u)]++
	}
	return h
}
