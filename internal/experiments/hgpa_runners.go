package experiments

import (
	"fmt"
	"time"

	"exactppr/internal/core"
	"exactppr/internal/hierarchy"
	"exactppr/internal/metrics"
	"exactppr/internal/ppr"
	"exactppr/internal/workload"
)

// runFig9 compares GPA and HGPA on the Web analogue across the four cost
// dimensions of Figure 9.
func runFig9(cfg Config) ([]Table, error) {
	// HGPA: full hierarchy. GPA: single level with one part per machine
	// (its leaf subgraphs are the machine-level parts, §3.1).
	hgpa, err := buildStore(cfg, "web", hierarchy.Options{})
	if err != nil {
		return nil, err
	}
	gpa, err := buildStore(cfg, "web", hierarchy.Options{Fanout: cfg.Machines, MaxLevels: 1})
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  fmt.Sprintf("GPA vs HGPA on Web analogue (%d machines, ε=%g)", cfg.Machines, cfg.Eps),
		Header: []string{"Algorithm", "Runtime(ms)", "MaxSpace(MB)", "Offline(s/machine)", "Network(KB)"},
	}
	for _, row := range []struct {
		name string
		b    *builtStore
	}{{"HGPA", hgpa}, {"GPA", gpa}} {
		m, err := measureCluster(cfg, row.b, cfg.Machines)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			row.name,
			ms(m.AvgRuntime),
			mb(m.MaxSpace),
			fmt.Sprintf("%.2f", offlinePerMachine(row.b.info, cfg.Machines).Seconds()),
			kb(m.AvgBytes),
		})
	}
	return []Table{t}, nil
}

var machineSweep = []int{2, 4, 6, 8, 10}
var sweepDatasets = []string{"web", "youtube", "pld"}

// machinesSweep runs one measurement per (dataset, machines) pair and
// formats columns chosen by pick.
func machinesSweep(cfg Config, title string, metrics []string,
	pick func(m *queryMeasurement, b *builtStore, machines int) []string) ([]Table, error) {
	var tables []Table
	for _, dsName := range sweepDatasets {
		b, err := buildStore(cfg, dsName, hierarchy.Options{})
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("%s — %s analogue", title, b.ds.Name),
			Header: append([]string{"Machines"}, metrics...),
		}
		for _, n := range machineSweep {
			m, err := measureCluster(cfg, b, n)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, append([]string{fmt.Sprint(n)}, pick(m, b, n)...))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// runFig10 reports the distributed query runtime vs machine count. The
// total is compute + one modeled network round; at analogue scale the
// network floor (~0.9 ms on the modeled 100 Mbit switch) dominates and
// per-machine compute is tens of microseconds of scheduling noise, so the
// deterministic load metric — max entries folded per machine, where the
// paper's "halve machines, halve runtime" claim lives — is printed
// alongside.
func runFig10(cfg Config) ([]Table, error) {
	return machinesSweep(cfg, "HGPA runtime vs machines (Figure 10)",
		[]string{"Runtime(ms)", "MaxMachineWork(entries)"},
		func(m *queryMeasurement, _ *builtStore, _ int) []string {
			return []string{ms(m.AvgRuntime), fmt.Sprintf("%.0f", m.AvgMaxWork)}
		})
}

func runFig11(cfg Config) ([]Table, error) {
	return machinesSweep(cfg, "HGPA max per-machine space vs machines (Figure 11)",
		[]string{"Space(MB)"},
		func(m *queryMeasurement, _ *builtStore, _ int) []string { return []string{mb(m.MaxSpace)} })
}

func runFig12(cfg Config) ([]Table, error) {
	return machinesSweep(cfg, "HGPA pre-computation time vs machines (Figure 12)",
		[]string{"Offline(s/machine)"},
		func(_ *queryMeasurement, b *builtStore, machines int) []string {
			return []string{fmt.Sprintf("%.2f", offlinePerMachine(b.info, machines).Seconds())}
		})
}

func runFig13(cfg Config) ([]Table, error) {
	return machinesSweep(cfg, "HGPA communication cost vs machines (Figure 13)",
		[]string{"Comm(KB)"},
		func(m *queryMeasurement, _ *builtStore, _ int) []string { return []string{kb(m.AvgBytes)} })
}

// levelsFor returns the level sweep per dataset, mirroring Figures 14–16
// (deeper graphs get deeper sweeps).
var levelSweepDatasets = []struct {
	name   string
	levels []int
}{
	{"email", []int{1, 2, 3, 4, 5}},
	{"web", []int{2, 4, 6, 8, 10}},
	{"youtube", []int{3, 5, 7, 9, 11}},
}

func levelsSweep(cfg Config, title, metric string,
	pick func(m *queryMeasurement, b *builtStore) string) ([]Table, error) {
	var tables []Table
	for _, spec := range levelSweepDatasets {
		t := Table{
			Title:  fmt.Sprintf("%s — %s analogue", title, spec.name),
			Header: []string{"Levels", metric},
		}
		for _, lv := range spec.levels {
			b, err := buildStore(cfg, spec.name, hierarchy.Options{MaxLevels: lv})
			if err != nil {
				return nil, err
			}
			m, err := measureCluster(cfg, b, cfg.Machines)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{fmt.Sprint(lv), pick(m, b)})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runFig14(cfg Config) ([]Table, error) {
	return levelsSweep(cfg, "HGPA runtime vs partitioning levels (Figure 14)", "Runtime(ms)",
		func(m *queryMeasurement, _ *builtStore) string { return ms(m.AvgRuntime) })
}

func runFig15(cfg Config) ([]Table, error) {
	return levelsSweep(cfg, "HGPA space vs partitioning levels (Figure 15)", "TotalSpace(MB)",
		func(_ *queryMeasurement, b *builtStore) string { return mb(b.store.SpaceBytes()) })
}

func runFig16(cfg Config) ([]Table, error) {
	return levelsSweep(cfg, "HGPA offline time vs partitioning levels (Figure 16)", "Offline(s/machine)",
		func(_ *queryMeasurement, b *builtStore) string {
			return fmt.Sprintf("%.2f", offlinePerMachine(b.info, cfg.Machines).Seconds())
		})
}

// runFig17 sweeps the per-level fanout on Web (2/4/8/16/64-way).
func runFig17(cfg Config) ([]Table, error) {
	t := Table{
		Title:  "Multi-way partitioning on Web analogue (Figure 17)",
		Header: []string{"Partitions", "Runtime(ms)", "Space(MB)", "Offline(s/machine)"},
	}
	for _, fanout := range []int{2, 4, 8, 16, 64} {
		b, err := buildStore(cfg, "web", hierarchy.Options{Fanout: fanout})
		if err != nil {
			return nil, err
		}
		m, err := measureCluster(cfg, b, cfg.Machines)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(fanout),
			ms(m.AvgRuntime),
			mb(b.store.SpaceBytes()),
			fmt.Sprintf("%.2f", offlinePerMachine(b.info, cfg.Machines).Seconds()),
		})
	}
	return []Table{t}, nil
}

var toleranceSweep = []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6}

// runFig18 sweeps the tolerance ε on Web.
func runFig18(cfg Config) ([]Table, error) {
	t := Table{
		Title:  "Tolerance sweep on Web analogue (Figure 18)",
		Header: []string{"Tolerance", "Runtime(ms)", "Space(MB)", "Offline(s/machine)", "Comm(KB)"},
	}
	for _, eps := range toleranceSweep {
		c := cfg
		c.Eps = eps
		b, err := buildStore(c, "web", hierarchy.Options{})
		if err != nil {
			return nil, err
		}
		m, err := measureCluster(c, b, cfg.Machines)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0e", eps),
			ms(m.AvgRuntime),
			mb(b.store.SpaceBytes()),
			fmt.Sprintf("%.2f", offlinePerMachine(b.info, cfg.Machines).Seconds()),
			kb(m.AvgBytes),
		})
	}
	return []Table{t}, nil
}

// runFig19 reports avg-L1 and L∞ against power iteration per tolerance.
func runFig19(cfg Config) ([]Table, error) {
	var tables []Table
	for _, dsName := range []string{"email", "web"} {
		t := Table{
			Title:  fmt.Sprintf("HGPA vs power iteration accuracy (Figure 19) — %s analogue", dsName),
			Header: []string{"Tolerance", "AvgL1", "LInf"},
		}
		for _, eps := range toleranceSweep {
			c := cfg
			c.Eps = eps
			b, err := buildStore(c, dsName, hierarchy.Options{})
			if err != nil {
				return nil, err
			}
			queries := workload.Queries(b.ds.G, min(cfg.Queries, 10), cfg.Seed+7)
			var sumL1, maxInf float64
			for _, q := range queries {
				got, err := b.store.Query(q)
				if err != nil {
					return nil, err
				}
				want, err := ppr.PowerIteration(b.ds.G, q, c.params())
				if err != nil {
					return nil, err
				}
				sumL1 += metrics.AvgL1(got, want, b.ds.G.NumNodes())
				if li := metrics.LInf(got, want); li > maxInf {
					maxInf = li
				}
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0e", eps),
				fmt.Sprintf("%.3e", sumL1/float64(len(queries))),
				fmt.Sprintf("%.3e", maxInf),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// runFig20 is the Meetup scalability study at 10 machines.
func runFig20(cfg Config) ([]Table, error) {
	t := Table{
		Title:  "HGPA scalability on Meetup-like graphs, 10 machines (Figure 20)",
		Header: []string{"Graph", "Nodes", "Edges", "Runtime(ms)", "Space(MB)", "Offline(s/machine)"},
	}
	for _, id := range []string{"M1", "M2", "M3", "M4", "M5"} {
		b, err := buildStore(cfg, "meetup:"+id, hierarchy.Options{})
		if err != nil {
			return nil, err
		}
		m, err := measureCluster(cfg, b, 10)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			id,
			fmt.Sprint(b.ds.G.NumNodes()),
			fmt.Sprint(b.ds.G.NumEdges()),
			ms(m.AvgRuntime),
			mb(m.MaxSpace),
			fmt.Sprintf("%.2f", offlinePerMachine(b.info, 10).Seconds()),
		})
	}
	return []Table{t}, nil
}

// runFig23 compares centralized HGPA with plain power iteration.
func runFig23(cfg Config) ([]Table, error) {
	t := Table{
		Title:  "Centralized runtime: power iteration vs HGPA (Figure 23)",
		Header: []string{"Dataset", "PowerIteration(ms)", "HGPA(ms)", "Speedup"},
	}
	for _, dsName := range []string{"email", "web", "youtube"} {
		b, err := buildStore(cfg, dsName, hierarchy.Options{})
		if err != nil {
			return nil, err
		}
		queries := workload.Queries(b.ds.G, min(cfg.Queries, 10), cfg.Seed+5)
		var pTime, hTime time.Duration
		for _, q := range queries {
			t0 := time.Now()
			if _, err := ppr.PowerIteration(b.ds.G, q, cfg.params()); err != nil {
				return nil, err
			}
			pTime += time.Since(t0)
			t0 = time.Now()
			if _, err := b.store.Query(q); err != nil {
				return nil, err
			}
			hTime += time.Since(t0)
		}
		n := time.Duration(len(queries))
		speedup := float64(pTime) / float64(hTime)
		t.Rows = append(t.Rows, []string{
			b.ds.Name, ms(pTime / n), ms(hTime / n), fmt.Sprintf("%.1fx", speedup),
		})
	}
	return []Table{t}, nil
}

// runFig28 is the Appendix B large-graph study: the biggest analogue with
// a processor sweep and the paper's relaxed ε=1e-2.
func runFig28(cfg Config) ([]Table, error) {
	c := cfg
	c.Eps = 1e-2 // the paper relaxes tolerance on PLD_full to save cost
	b, err := buildStore(c, "pld_full", hierarchy.Options{})
	if err != nil {
		return nil, err
	}
	t := Table{
		Title: fmt.Sprintf("HGPA on PLD_full analogue (|V|=%d, |E|=%d, ε=1e-2) vs processors (Figure 28)",
			b.ds.G.NumNodes(), b.ds.G.NumEdges()),
		Header: []string{"Processors", "Runtime(ms)", "Offline(s/machine)", "MaxSpace(MB)", "Comm(KB)"},
	}
	for _, procs := range []int{8, 16, 32, 64} {
		m, err := measureCluster(c, b, procs)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(procs),
			ms(m.AvgRuntime),
			fmt.Sprintf("%.2f", offlinePerMachine(b.info, procs).Seconds()),
			mb(m.MaxSpace),
			kb(m.AvgBytes),
		})
	}
	return []Table{t}, nil
}

// runBalance is a supplementary report on shard balance (the paper's load
// balance claim, §4.4).
func runBalance(cfg Config) ([]Table, error) {
	b, err := buildStore(cfg, "web", hierarchy.Options{})
	if err != nil {
		return nil, err
	}
	shards, err := core.Split(b.store, cfg.Machines)
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  fmt.Sprintf("Shard balance on Web analogue, %d machines", cfg.Machines),
		Header: []string{"Shard", "Hubs", "Leaves", "Space(MB)"},
	}
	for _, sh := range shards {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(sh.Index), fmt.Sprint(sh.HubCount()),
			fmt.Sprint(sh.LeafCount()), mb(sh.SpaceBytes()),
		})
	}
	return []Table{t}, nil
}
