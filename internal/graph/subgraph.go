package graph

import "fmt"

// Subgraph is a node-induced subgraph of a parent graph with its own dense
// id space 0..len(Nodes)-1, plus the mapping back to parent ids. When built
// as a virtual subgraph (Definition 3 of the paper) it contains one extra
// node — the virtual sink — that absorbs edges whose head lies outside the
// subgraph, and every local node keeps its parent out-degree as OutWeight,
// so random-walk probabilities match the parent graph exactly (Theorem 2).
type Subgraph struct {
	G      *Graph  // the local graph (may include the virtual sink as last node)
	Nodes  []int32 // parent id of each local node; virtual sink excluded
	global map[int32]int32
}

// Local translates a parent id to the local id, returning -1 when the node
// is not part of the subgraph.
func (s *Subgraph) Local(parent int32) int32 {
	if l, ok := s.global[parent]; ok {
		return l
	}
	return -1
}

// Parent translates a local id back to the parent id. The virtual sink has
// no parent id; calling Parent on it panics.
func (s *Subgraph) Parent(local int32) int32 {
	if int(local) >= len(s.Nodes) {
		panic(fmt.Sprintf("graph: local id %d is the virtual sink or out of range", local))
	}
	return s.Nodes[local]
}

// Contains reports whether the parent node is a member of the subgraph.
func (s *Subgraph) Contains(parent int32) bool {
	_, ok := s.global[parent]
	return ok
}

// Len returns the number of real (non-virtual) nodes.
func (s *Subgraph) Len() int { return len(s.Nodes) }

// InducedSubgraph extracts the plain node-induced subgraph over members:
// only edges with both endpoints inside are kept, and OutWeight is the
// local out-degree. Use VirtualSubgraph for partial-vector computations.
func InducedSubgraph(g *Graph, members []int32) *Subgraph {
	return extract(g, members, false)
}

// VirtualSubgraph extracts the virtual subgraph of Definition 3 over
// members: edges leaving the member set are redirected to a single virtual
// sink node (local id len(members)), and each member keeps its OutWeight
// from g. The sink has no out-edges and OutWeight 0.
//
// The paper creates one sink edge per external edge (a multigraph); here a
// single structural sink edge stands in for all of them, because transition
// probabilities are derived from OutWeight rather than stored degree: each
// stored edge to a REAL neighbor carries probability 1/OutWeight(u), and
// all remaining probability mass — (OutWeight−realDegree)/OutWeight —
// is absorbed by the sink. Random-walk engines therefore skip sink
// neighbors and let that mass die, which is exactly the blocking behaviour
// hub nodes impose on partial-vector tours (Theorem 2).
func VirtualSubgraph(g *Graph, members []int32) *Subgraph {
	return extract(g, members, true)
}

func extract(g *Graph, members []int32, virtual bool) *Subgraph {
	local := make(map[int32]int32, len(members))
	nodes := make([]int32, len(members))
	for i, p := range members {
		if _, dup := local[p]; dup {
			panic(fmt.Sprintf("graph: duplicate member %d", p))
		}
		local[p] = int32(i)
		nodes[i] = p
	}
	n := len(members)
	total := n
	if virtual {
		total++ // the sink
	}
	sink := int32(n)

	offsets := make([]int32, total+1)
	var adj []int32
	outW := make([]int32, total)
	for i, p := range nodes {
		start := len(adj)
		sawExternal := false
		for _, v := range g.Out(p) {
			if lv, ok := local[v]; ok {
				adj = append(adj, lv)
			} else {
				sawExternal = true
			}
		}
		if virtual {
			if sawExternal {
				adj = append(adj, sink)
			}
			outW[i] = int32(g.OutWeight(p))
		} else {
			outW[i] = int32(len(adj) - start)
		}
		offsets[i+1] = int32(len(adj))
	}
	if virtual {
		offsets[total] = int32(len(adj)) // sink has no out-edges
		outW[sink] = 0
	}
	// Out-lists must stay sorted; local ids follow member order, which need
	// not be sorted the same way as parent ids, so sort each list.
	lg := &Graph{n: total, offsets: offsets, adj: adj, outW: outW, virtual: -1}
	if virtual {
		lg.virtual = sink
	}
	sortOutLists(lg)
	return &Subgraph{G: lg, Nodes: nodes, global: local}
}

func sortOutLists(g *Graph) {
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		out := g.adj[g.offsets[u]:g.offsets[u+1]]
		insertionSort(out)
	}
}

func insertionSort(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
