package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// tinyConfig keeps experiment smoke tests fast: minuscule graphs, few
// queries.
func tinyConfig() Config {
	return Config{Scale: 0.08, Seed: 1, Machines: 3, Queries: 3, Eps: 1e-4}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", tinyConfig()); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestListAndAbout(t *testing.T) {
	ids := List()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, id := range ids {
		if About(id) == "" {
			t.Errorf("experiment %s has no description", id)
		}
	}
	for _, want := range []string{"table2", "table6", "fig9", "fig19", "fig21", "fig26", "fig28"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %s missing from registry", want)
		}
	}
}

func TestTableFprint(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"A", "LongColumn"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "LongColumn") {
		t.Fatalf("bad render:\n%s", out)
	}
}

func TestHubTableRunner(t *testing.T) {
	tables, err := Run("table2", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) < 2 {
		t.Fatalf("unexpected table shape: %+v", tables)
	}
}

func TestTable6Runner(t *testing.T) {
	tables, err := Run("table6", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 5 {
		t.Fatalf("table6 rows = %d, want 5 (M1..M5)", len(tables[0].Rows))
	}
}

func TestFig9Runner(t *testing.T) {
	ResetCache()
	tables, err := Run("fig9", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 2 {
		t.Fatalf("fig9 should compare 2 algorithms, got %d rows", len(tables[0].Rows))
	}
}

func TestFig23Runner(t *testing.T) {
	tables, err := Run("fig23", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 3 {
		t.Fatalf("fig23 rows = %d", len(tables[0].Rows))
	}
}

func TestBalanceRunner(t *testing.T) {
	cfg := tinyConfig()
	tables, err := Run("balance", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != cfg.Machines {
		t.Fatalf("balance rows = %d, want %d", len(tables[0].Rows), cfg.Machines)
	}
}

func TestRunAndPrint(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig()
	cfg.Out = &buf
	if err := RunAndPrint("table6", cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "completed in") {
		t.Fatalf("missing completion line:\n%s", buf.String())
	}
}

func TestStoreCacheReuse(t *testing.T) {
	ResetCache()
	cfg := tinyConfig()
	if _, err := Run("fig10", cfg); err != nil {
		t.Fatal(err)
	}
	storeCacheMu.Lock()
	cached := len(storeCache)
	storeCacheMu.Unlock()
	if cached == 0 {
		t.Fatal("fig10 should populate the store cache")
	}
	// Second run hits the cache (no way to observe directly except that
	// it stays fast and correct).
	if _, err := Run("fig13", cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMonteCarloRunner(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 2
	tables, err := Run("mc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("mc rows = %d, want 3 walk budgets + HGPA", len(rows))
	}
	if rows[3][0] != "HGPA (exact)" {
		t.Fatalf("last row = %v", rows[3])
	}
}

func TestSpaceRunner(t *testing.T) {
	tables, err := Run("space", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("space tables = %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 3 {
			t.Fatalf("space rows = %d", len(tb.Rows))
		}
		// The ordering claim: PPV-JW ≥ GPA ≥ HGPA is asserted in
		// core tests; here just check all three methods are present.
		if tb.Rows[0][0] != "PPV-JW" || tb.Rows[2][0] != "HGPA" {
			t.Fatalf("unexpected method order: %v", tb.Rows)
		}
	}
}

func TestFig24Runner(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 2
	tables, err := Run("fig24", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || len(tables[0].Rows) != 4 {
		t.Fatalf("fig24 shape: %d tables, %d rows", len(tables), len(tables[0].Rows))
	}
}

func TestFig19RunnerAccuracyTrend(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 2
	tables, err := Run("fig19", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// L∞ at ε=1e-2 (first row) must exceed L∞ at ε=1e-6 (last row).
	for _, tb := range tables {
		first := tb.Rows[0][2]
		last := tb.Rows[len(tb.Rows)-1][2]
		var a, b float64
		fmt.Sscanf(first, "%e", &a)
		fmt.Sscanf(last, "%e", &b)
		if a <= b {
			t.Fatalf("accuracy did not improve with tolerance: %v vs %v", first, last)
		}
	}
}
