// Command pprprecomp runs the full HGPA pre-computation for a dataset and
// writes the resulting vector store to disk for pprquery / pprserve.
//
//	pprprecomp -dataset web -scale 0.5 -o web.store
//	pprprecomp -dataset file:web.txt -eps 1e-5 -fanout 2 -o web.store
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"exactppr/internal/core"
	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
	"exactppr/internal/workload"
)

func main() {
	var (
		dataset   = flag.String("dataset", "email", "preset name or file:PATH")
		scale     = flag.Float64("scale", 0.5, "node-count multiplier for presets")
		seed      = flag.Int64("seed", 1, "seed")
		alpha     = flag.Float64("alpha", 0.15, "teleport probability")
		eps       = flag.Float64("eps", 1e-4, "tolerance")
		fanout    = flag.Int("fanout", 2, "parts per split")
		maxLevels = flag.Int("maxlevels", 0, "level cap (0 = until edge-free)")
		workers   = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		kernel    = flag.String("kernel", "auto", "precompute kernel: auto (sparse push, dense fallback), dense, push")
		out       = flag.String("o", "ppr.store", "output store path")
	)
	flag.Parse()

	kern, err := ppr.ParseKernel(*kernel)
	if err != nil {
		fatal(err)
	}

	ds, err := workload.Load(*dataset, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	h, err := hierarchy.Build(ds.G, hierarchy.Options{
		Fanout: *fanout, MaxLevels: *maxLevels, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: %d nodes, %d edges, %d levels, %d hubs\n",
		ds.Name, ds.G.NumNodes(), ds.G.NumEdges(), h.Depth(), h.TotalHubs())

	start := time.Now()
	store, info, err := core.PrecomputeWithInfo(h, ppr.Params{Alpha: *alpha, Eps: *eps, Kernel: kern}, *workers)
	if err != nil {
		fatal(err)
	}
	st := store.Stats()
	fmt.Fprintf(os.Stderr, "precompute: %d tasks in %v (Σ task time %v)\n",
		info.Tasks, time.Since(start).Round(time.Millisecond), info.TotalTaskTime.Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "kernel %s: %.0f pushes/vector, %.1f%% dense-drained\n",
		info.Kernel, float64(info.Pushes)/float64(max(info.Vectors, 1)),
		100*float64(info.DenseFallbacks)/float64(max(info.Vectors, 1)))
	fmt.Fprintf(os.Stderr, "store: %d hub partials, %d leaf vectors, %.2f MB\n",
		st.Hubs, st.Leaves, float64(st.Bytes)/(1<<20))

	if err := core.SaveFile(*out, store); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pprprecomp:", err)
	os.Exit(1)
}
