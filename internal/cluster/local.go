package cluster

import (
	"context"
	"time"

	"exactppr/internal/core"
	"exactppr/internal/sparse"
)

// PackedQuerier is any in-process query engine that drains its share in
// packed columnar form: an in-memory core.Shard, a disk-resident
// core.DiskShard, or a whole core.DiskStore acting as a one-machine
// cluster. LocalMachine adapts it to the Machine interface so every
// backend rides the same coordinator, wire protocol, and gateway.
type PackedQuerier interface {
	QueryPacked(u int32) (sparse.Packed, error)
	QuerySetPacked(p core.Preference) (sparse.Packed, error)
}

// LocalMachine is an in-process Machine over any PackedQuerier. Shares
// are encoded even in-process so byte accounting matches what a network
// transport would carry; the packed drain makes that a straight
// sequential copy.
type LocalMachine struct {
	Backend PackedQuerier
}

// QueryShare implements Machine.
func (m *LocalMachine) QueryShare(ctx context.Context, u int32) ([]byte, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	v, err := m.Backend.QueryPacked(u)
	if err != nil {
		return nil, 0, err
	}
	return sparse.EncodePacked(v), time.Since(start), nil
}

// QuerySetShare implements Machine for preference sets.
func (m *LocalMachine) QuerySetShare(ctx context.Context, p core.Preference) ([]byte, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	v, err := m.Backend.QuerySetPacked(p)
	if err != nil {
		return nil, 0, err
	}
	return sparse.EncodePacked(v), time.Since(start), nil
}

// DiskCluster is a Coordinator over in-process disk shards: the
// single-host serving setup for pre-computations larger than memory.
// All shards share the store's memory map and coalescing cache, so
// concurrent HTTP traffic through a gateway exercises the zero-copy
// path end to end. Its DiskStats method feeds the gateway's /stats.
type DiskCluster struct {
	*Coordinator
	ds *core.DiskStore
}

// NewDiskLocalCluster splits a disk store across n in-process machines
// behind a coordinator.
func NewDiskLocalCluster(ds *core.DiskStore, n int) (*DiskCluster, error) {
	shards, err := core.SplitDisk(ds, n)
	if err != nil {
		return nil, err
	}
	machines := make([]Machine, n)
	for i, sh := range shards {
		machines[i] = &LocalMachine{Backend: sh}
	}
	coord, err := NewCoordinator(machines...)
	if err != nil {
		return nil, err
	}
	return &DiskCluster{Coordinator: coord, ds: ds}, nil
}

// DiskStats exposes the underlying store's serving counters (cache
// hits/misses, coalesced reads, mmap vs fallback) for /stats.
func (c *DiskCluster) DiskStats() core.DiskStats { return c.ds.Stats() }

// Store returns the shared disk store (e.g. to Close it on shutdown).
func (c *DiskCluster) Store() *core.DiskStore { return c.ds }
