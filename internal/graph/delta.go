package graph

import (
	"fmt"
	"sort"
)

// Delta is a batch of edge insertions and deletions against a Graph. The
// node set is fixed: deltas change edges only. Batches are the unit of
// consistency for the incremental-update pipeline — one Delta applied to
// the root graph maps to one dirty-partition recomputation and one store
// snapshot.
type Delta struct {
	Insert [][2]int32
	Delete [][2]int32
}

// Len returns the number of edge operations in the batch.
func (d Delta) Len() int { return len(d.Insert) + len(d.Delete) }

// Effective validates the delta against g and returns the operations
// that actually change the graph, sorted in CSR order and deduplicated:
// inserts of edges g already has, deletes of edges it lacks, and
// self-loops are dropped (the random-surfer model is over simple
// graphs, mirroring Builder). An edge appearing in both lists is an
// error — the intent is ambiguous inside one atomic batch.
func (d Delta) Effective(g *Graph) (ins, del [][2]int32, err error) {
	if g.HasVirtualSink() {
		return nil, nil, fmt.Errorf("graph: cannot update a virtual subgraph")
	}
	n := int32(g.NumNodes())
	check := func(e [2]int32) error {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return fmt.Errorf("graph: delta edge (%d,%d) out of range [0,%d)", e[0], e[1], n)
		}
		return nil
	}
	// Overlap is checked BEFORE effectiveness filtering: whatever the
	// current edge set, "insert e and delete e in one batch" has no
	// well-defined outcome.
	inserted := make(map[[2]int32]bool, len(d.Insert))
	for _, e := range d.Insert {
		if err := check(e); err != nil {
			return nil, nil, err
		}
		inserted[e] = true
	}
	for _, e := range d.Delete {
		if err := check(e); err != nil {
			return nil, nil, err
		}
		if inserted[e] {
			return nil, nil, fmt.Errorf("graph: edge (%d,%d) both inserted and deleted", e[0], e[1])
		}
	}
	for _, e := range d.Insert {
		if e[0] != e[1] && !g.HasEdge(e[0], e[1]) {
			ins = append(ins, e)
		}
	}
	for _, e := range d.Delete {
		if e[0] != e[1] && g.HasEdge(e[0], e[1]) {
			del = append(del, e)
		}
	}
	return sortDedupEdges(ins), sortDedupEdges(del), nil
}

func edgeLess(a, b [2]int32) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

func sortDedupEdges(es [][2]int32) [][2]int32 {
	sort.Slice(es, func(i, j int) bool { return edgeLess(es[i], es[j]) })
	out := es[:0]
	for i, e := range es {
		if i == 0 || e != es[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// ApplyDelta applies the batch in place, rebuilding the CSR arrays in
// one merge pass, and bumps the epoch so the lazily-built reverse
// adjacency is invalidated rather than served stale. It returns the
// number of edges actually inserted and deleted (no-ops are skipped,
// see Effective).
//
// Only root graphs (no virtual sink) are mutable; OutWeight tracks the
// structural out-degree, which is exactly what the virtual subgraphs
// re-extracted from the updated graph need.
//
// Concurrency: ApplyDelta must not run concurrently with itself or with
// readers of the adjacency (Out, In, HasEdge, traversals, Validate).
// NumNodes, OutWeight-free query serving — anything reading only the
// pre-computed store — is safe to overlap; the update pipeline in
// internal/core relies on that to keep serving an old snapshot while a
// new one is computed.
func (g *Graph) ApplyDelta(d Delta) (inserted, deleted int, err error) {
	ins, del, err := d.Effective(g)
	if err != nil {
		return 0, 0, err
	}
	if len(ins) == 0 && len(del) == 0 {
		return 0, 0, nil
	}
	newAdj := make([]int32, 0, len(g.adj)+len(ins)-len(del))
	newOff := make([]int32, len(g.offsets))
	ii, di := 0, 0
	for u := int32(0); u < int32(g.n); u++ {
		old := g.adj[g.offsets[u]:g.offsets[u+1]]
		oi := 0
		// Merge the sorted old out-list with the sorted inserts for u,
		// skipping edges marked for deletion. Both streams are strictly
		// sorted, so the merged list stays strictly sorted.
		for oi < len(old) || (ii < len(ins) && ins[ii][0] == u) {
			var v int32
			fromOld := false
			switch {
			case oi >= len(old):
				v = ins[ii][1]
				ii++
			case ii >= len(ins) || ins[ii][0] != u || old[oi] < ins[ii][1]:
				v = old[oi]
				fromOld = true
				oi++
			default:
				v = ins[ii][1]
				ii++
			}
			if fromOld && di < len(del) && del[di][0] == u && del[di][1] == v {
				di++
				continue
			}
			newAdj = append(newAdj, v)
		}
		newOff[u+1] = int32(len(newAdj))
		g.outW[u] = newOff[u+1] - newOff[u]
	}
	g.adj, g.offsets = newAdj, newOff
	g.epoch++
	return len(ins), len(del), nil
}
