// Communities: seed-set community scoring via PPV mass — the local
// community detection application of personalized PageRank (Andersen,
// Gleich). Given a few seed members, the PPV of the seed set concentrates
// its probability mass inside the seeds' community; ranking nodes by PPV
// score recovers the community.
package main

import (
	"fmt"
	"log"

	"exactppr"
)

func main() {
	const (
		nodes       = 600
		communities = 6
	)
	g, err := exactppr.GenerateCommunityGraph(exactppr.GenConfig{
		Nodes:        nodes,
		AvgOutDegree: 6,
		Communities:  communities,
		InterFrac:    0.05,
		MinOutDegree: 2,
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}
	communityOf := func(u int32) int { return int(u) * communities / nodes }

	// Three seed members of community 2.
	lo := int32(2 * nodes / communities)
	seeds := []int32{lo + 3, lo + 17, lo + 40}

	// The PPV of a preference SET uses the linearity property of [25]:
	// it is the average of the members' PPVs. Power iteration supports
	// preference sets directly; for the pre-computed path, average the
	// per-seed store queries.
	store, err := exactppr.BuildHGPA(g, exactppr.HierarchyOptions{Seed: 11}, exactppr.DefaultParams(), 0)
	if err != nil {
		log.Fatal(err)
	}
	combined := exactppr.Vector{}
	for _, s := range seeds {
		v, err := store.Query(s)
		if err != nil {
			log.Fatal(err)
		}
		combined.AddScaled(v, 1/float64(len(seeds)))
	}

	// Score communities by captured PPV mass.
	mass := make([]float64, communities)
	for id, score := range combined {
		mass[communityOf(id)] += score
	}
	fmt.Println("PPV mass per community (seeds live in community 2):")
	for c, m := range mass {
		bar := ""
		for i := 0; i < int(m*60); i++ {
			bar += "#"
		}
		fmt.Printf("  community %d: %.4f %s\n", c, m, bar)
	}

	// Recover the community: top-|community| nodes by PPV score.
	size := nodes / communities
	hit := 0
	for _, e := range combined.TopK(size) {
		if communityOf(e.ID) == 2 {
			hit++
		}
	}
	fmt.Printf("top-%d nodes by PPV: %d/%d inside the seed community (%.0f%% precision)\n",
		size, hit, size, 100*float64(hit)/float64(size))
}
