package ppr

import (
	"math"
	"math/rand"
	"testing"

	"exactppr/internal/graph"
	"exactppr/internal/sparse"
)

// The cross-kernel contract: for identical Params, the push kernels
// agree with the dense kernels within 1e-9 on every entry. (The
// implementation is stronger — the arithmetic is shared, so outputs
// are bit-identical — but 1e-9 is what callers may rely on.)
const kernelTol = 1e-9

func randomHubs(rng *rand.Rand, n int) []bool {
	isHub := make([]bool, n)
	for v := range isHub {
		isHub[v] = rng.Float64() < 0.2
	}
	return isHub
}

func packedMatchesVector(t *testing.T, tag string, got sparse.Packed, want sparse.Vector) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("%s: %d entries, want %d", tag, got.Len(), len(want))
	}
	got.ForEach(func(id int32, x float64) {
		if math.Abs(x-want.Get(id)) > kernelTol {
			t.Fatalf("%s: entry %d = %v, want %v", tag, id, x, want.Get(id))
		}
	})
}

// Property: PushPartial (and Push) agree with the dense PartialVector
// for arbitrary graphs, hub sets, and sources — including the
// hub-blocked mass diagnostic.
func TestPushPartialMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng)
		n := g.NumNodes()
		isHub := randomHubs(rng, n)
		u := int32(rng.Intn(n))
		p := Params{Alpha: 0.15, Eps: 1e-6, Kernel: KernelDense}
		want, wantBlocked, err := PartialVector(g, u, isHub, p)
		if err != nil {
			t.Fatal(err)
		}
		got, gotBlocked, err := PushPartial(g, u, isHub, p)
		if err != nil {
			t.Fatal(err)
		}
		packedMatchesVector(t, "partial", got, want)
		if len(gotBlocked) != len(wantBlocked) {
			t.Fatalf("trial %d: blocked has %d entries, want %d", trial, len(gotBlocked), len(wantBlocked))
		}
		for id, x := range wantBlocked {
			if math.Abs(gotBlocked.Get(id)-x) > kernelTol {
				t.Fatalf("trial %d: blocked(%d) = %v, want %v", trial, id, gotBlocked.Get(id), x)
			}
		}
		full, err := Push(g, u, p)
		if err != nil {
			t.Fatal(err)
		}
		wantFull, _, err := PartialVector(g, u, nil, p)
		if err != nil {
			t.Fatal(err)
		}
		packedMatchesVector(t, "full PPV", full, wantFull)
	}
}

// Property: PushSkeleton agrees with the dense SkeletonForHub.
func TestPushSkeletonMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng)
		h := int32(rng.Intn(g.NumNodes()))
		p := Params{Alpha: 0.15, Eps: 1e-6, Kernel: KernelDense}
		want, err := SkeletonForHub(g, h, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PushSkeleton(g, h, p)
		if err != nil {
			t.Fatal(err)
		}
		nonzero := 0
		for u, x := range want {
			if x != 0 {
				nonzero++
			}
			if math.Abs(got.Get(int32(u))-x) > kernelTol {
				t.Fatalf("trial %d: s_%d(%d) = %v, want %v", trial, u, h, got.Get(int32(u)), x)
			}
		}
		if got.Len() != nonzero {
			t.Fatalf("trial %d: %d packed entries, want %d", trial, got.Len(), nonzero)
		}
	}
}

// The kernels must agree on virtual-sink subgraphs (the shape every
// pre-computation task runs on) and under DanglingRestart params.
func TestPushKernelsOnVirtualSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		root := randomGraph(rng)
		n := root.NumNodes()
		var members []int32
		for v := int32(0); v < int32(n); v++ {
			if rng.Float64() < 0.5 {
				members = append(members, v)
			}
		}
		if len(members) == 0 {
			members = append(members, 0)
		}
		sub := graph.VirtualSubgraph(root, members)
		g := sub.G
		u := int32(rng.Intn(sub.Len()))
		isHub := randomHubs(rng, g.NumNodes())
		isHub[u] = rng.Float64() < 0.5
		for _, dangling := range []DanglingPolicy{DanglingAbsorb, DanglingRestart} {
			p := Params{Alpha: 0.2, Eps: 1e-7, Dangling: dangling}
			want, _, err := PartialVector(g, u, isHub, Params{Alpha: p.Alpha, Eps: p.Eps, Dangling: dangling, Kernel: KernelDense})
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := PushPartial(g, u, isHub, p)
			if err != nil {
				t.Fatal(err)
			}
			packedMatchesVector(t, "virtual partial", got, want)
			wantSkel, err := SkeletonForHub(g, u, Params{Alpha: p.Alpha, Eps: p.Eps, Dangling: dangling, Kernel: KernelDense})
			if err != nil {
				t.Fatal(err)
			}
			gotSkel, err := PushSkeleton(g, u, p)
			if err != nil {
				t.Fatal(err)
			}
			for w, x := range wantSkel {
				if math.Abs(gotSkel.Get(int32(w))-x) > kernelTol {
					t.Fatalf("virtual skeleton: s_%d(%d) = %v, want %v", w, u, gotSkel.Get(int32(w)), x)
				}
			}
		}
	}
}

// KernelAuto must produce the same results whether or not the frontier
// spills into the dense sweep. Tiny Eps on a connected graph forces the
// frontier past the spill threshold.
func TestKernelAutoSpillEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	spills := 0
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng)
		u := int32(rng.Intn(g.NumNodes()))
		base := Params{Alpha: 0.15, Eps: 1e-10}
		st, err := pushPartial(g, u, nil, base, nil) // KernelAuto: spill allowed
		if err != nil {
			t.Fatal(err)
		}
		if st.spilled {
			spills++
		}
		auto := st.drainPacked()
		pure := base
		pure.Kernel = KernelPush
		stPush, err := pushPartial(g, u, nil, pure, nil)
		if err != nil {
			t.Fatal(err)
		}
		if stPush.spilled {
			t.Fatal("KernelPush must never spill")
		}
		push := stPush.drainPacked()
		dense := base
		dense.Kernel = KernelDense
		want, _, err := PartialVector(g, u, nil, dense)
		if err != nil {
			t.Fatal(err)
		}
		packedMatchesVector(t, "auto", auto, want)
		packedMatchesVector(t, "push", push, want)
	}
	if spills == 0 {
		t.Fatal("test never exercised the spill path; lower Eps or grow the graphs")
	}
}

// Push termination: when the push cap is not hit, every residual left
// behind is at most Eps — the invariant that bounds each entry within
// Eps/α of the fixed point. Checked for adversarial Eps values across
// both directions.
func TestPushTerminationRespectsEps(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for _, eps := range []float64{0.5, 1e-2, 3.7e-5, 1e-8, 2.3e-11} {
		for trial := 0; trial < 15; trial++ {
			g := randomGraph(rng)
			n := g.NumNodes()
			u := int32(rng.Intn(n))
			p := Params{Alpha: 0.15, Eps: eps, Kernel: KernelPush}
			st, err := pushPartial(g, u, randomHubs(rng, n), p, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkResiduals(t, "partial", &st, eps)
			st, err = pushSkeleton(g, u, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkResiduals(t, "skeleton", &st, eps)
		}
	}
}

func checkResiduals(t *testing.T, tag string, st *pushState, eps float64) {
	t.Helper()
	for _, id := range st.touched {
		if st.res[id] > eps {
			t.Fatalf("%s: residual %v > eps %v at node %d after termination", tag, st.res[id], eps, id)
		}
	}
}

// FuzzPushTermination drives the push kernels with fuzzed graph seeds
// and tolerances: termination must respect ε and the result must match
// the dense kernel.
func FuzzPushTermination(f *testing.F) {
	f.Add(int64(1), 1e-4)
	f.Add(int64(7), 0.9)
	f.Add(int64(42), 1e-9)
	f.Fuzz(func(t *testing.T, seed int64, eps float64) {
		if !(eps > 0) || eps > 1 || math.IsNaN(eps) {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		n := g.NumNodes()
		u := int32(rng.Intn(n))
		isHub := randomHubs(rng, n)
		p := Params{Alpha: 0.15, Eps: eps, Kernel: KernelPush}
		st, err := pushPartial(g, u, isHub, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range st.touched {
			if st.res[id] > eps {
				t.Fatalf("residual %v > eps %v at node %d", st.res[id], eps, id)
			}
		}
		got := st.drainPacked()
		want, _, err := PartialVector(g, u, isHub, Params{Alpha: 0.15, Eps: eps, Kernel: KernelDense})
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != len(want) {
			t.Fatalf("push has %d entries, dense %d", got.Len(), len(want))
		}
		got.ForEach(func(id int32, x float64) {
			if math.Abs(x-want.Get(id)) > kernelTol {
				t.Fatalf("entry %d: push %v vs dense %v", id, x, want.Get(id))
			}
		})
	})
}

// Validate must reject the new invalid parameter shapes.
func TestValidateKernelAndMaxIter(t *testing.T) {
	base := Params{Alpha: 0.15, Eps: 1e-4}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := base
	bad.MaxIter = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("MaxIter = -1 accepted")
	}
	bad = base
	bad.Kernel = Kernel(99)
	if err := bad.Validate(); err == nil {
		t.Fatal("Kernel(99) accepted")
	}
	bad.Kernel = Kernel(-1)
	if err := bad.Validate(); err == nil {
		t.Fatal("Kernel(-1) accepted")
	}
	for _, k := range []Kernel{KernelAuto, KernelDense, KernelPush} {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKernel(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKernel("turbo"); err == nil {
		t.Fatal(`ParseKernel("turbo") accepted`)
	}
}

// MaxIter as a push cap: a cap of 1 (scaled by n) must stop the kernel
// early without violating validity of what was produced.
func TestPushRespectsMaxIterCap(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	g := randomGraph(rng)
	p := Params{Alpha: 0.15, Eps: 1e-12, MaxIter: 1, Kernel: KernelPush}
	st, err := pushPartial(g, 0, nil, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.pushes > p.MaxIter*g.NumNodes() {
		t.Fatalf("pushes %d exceed cap %d", st.pushes, p.MaxIter*g.NumNodes())
	}
}
