package core

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"exactppr/internal/hierarchy"
	"exactppr/internal/sparse"
)

// TestQueryPackedMatchesQuery: the columnar drain and the map drain are
// two views of the same accumulator fold.
func TestQueryPackedMatchesQuery(t *testing.T) {
	g := testGraph(t, 21)
	s := buildStore(t, g, hierarchy.Options{Seed: 22})
	for _, u := range sampleQueries(s) {
		v, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		p, err := s.QueryPacked(u)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p.Unpack(), v) {
			t.Fatalf("u=%d: QueryPacked differs from Query", u)
		}
		es := p.Entries()
		if !sort.SliceIsSorted(es, func(a, b int) bool { return es[a].ID < es[b].ID }) {
			t.Fatalf("u=%d: QueryPacked not sorted", u)
		}
	}
	if _, err := s.QueryPacked(int32(g.NumNodes() + 5)); err == nil {
		t.Fatal("QueryPacked accepted out-of-range node")
	}
}

// TestShardPackedMatchesVector: same for the per-machine share folds,
// single-node and preference-set alike.
func TestShardPackedMatchesVector(t *testing.T) {
	g := testGraph(t, 23)
	s := buildStore(t, g, hierarchy.Options{Seed: 24})
	shards, err := Split(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	pref := Preference{Nodes: []int32{1, 7, 42}, Weights: []float64{1, 2, 3}}
	for _, sh := range shards {
		for _, u := range sampleQueries(s) {
			v, err := sh.QueryVector(u)
			if err != nil {
				t.Fatal(err)
			}
			p, err := sh.QueryPacked(u)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(p.Unpack(), v) {
				t.Fatalf("shard %d u=%d: packed share differs", sh.Index, u)
			}
		}
		v, err := sh.QuerySetVector(pref)
		if err != nil {
			t.Fatal(err)
		}
		p, err := sh.QuerySetPacked(pref)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p.Unpack(), v) {
			t.Fatalf("shard %d: packed set share differs", sh.Index)
		}
	}
}

// TestQueryTopKMatchesFullSort: the accumulator's bounded-heap top-k
// agrees with draining everything and sorting.
func TestQueryTopKMatchesFullSort(t *testing.T) {
	g := testGraph(t, 25)
	s := buildStore(t, g, hierarchy.Options{Seed: 26})
	for _, u := range sampleQueries(s) {
		full, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 10, 1 << 20} {
			got, err := s.QueryTopK(u, k)
			if err != nil {
				t.Fatal(err)
			}
			want := full.TopK(k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("u=%d k=%d: QueryTopK %v, want %v", u, k, got, want)
			}
		}
	}
}

// TestSaveDeterministic: with canonical vector encoding and sorted
// section keys, saving the same store twice yields identical bytes.
func TestSaveDeterministic(t *testing.T) {
	g := testGraph(t, 27)
	s := buildStore(t, g, hierarchy.Options{Seed: 28})
	var a, b bytes.Buffer
	if err := Save(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Save is nondeterministic")
	}
	// And a loaded copy re-saves to the same bytes (decode/encode is a
	// fixed point for canonical files).
	loaded, err := Load(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := Save(&c, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("save → load → save changed the bytes")
	}
}

// TestLoadRejectsOutOfRangeIds: a store file whose vector payload
// carries a node id outside the graph must fail to load with an error,
// not crash the first query that folds it into a dense accumulator.
func TestLoadRejectsOutOfRangeIds(t *testing.T) {
	g := testGraph(t, 31)
	s := buildStore(t, g, hierarchy.Options{Seed: 32})
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := Load(bytes.NewReader(good)); err != nil {
		t.Fatal(err)
	}

	// Poison one leaf vector with ids the graph cannot have and re-save;
	// the poisoned file must be rejected at load, both by the in-memory
	// loader and by the disk-store opener (which indexes the same bytes).
	for _, id := range []int32{int32(g.NumNodes()), 1<<31 - 1, -7} {
		bad := s.Clone()
		var key int32
		var vec sparse.Packed
		for key, vec = range bad.LeafPPV {
			break
		}
		ents := append(vec.Entries(), sparse.Entry{ID: id, Score: 0.125})
		poisoned, err := sparse.PackEntries(ents)
		if err != nil {
			t.Fatal(err)
		}
		bad.LeafPPV[key] = poisoned
		var badBuf bytes.Buffer
		if err := Save(&badBuf, bad); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bytes.NewReader(badBuf.Bytes())); err == nil {
			t.Fatalf("Load accepted a vector entry with id %d on a %d-node graph", id, g.NumNodes())
		}
	}
}

// TestTruncatePacked: Truncate drops exactly the below-threshold entries
// and SpaceBytes shrinks accordingly, matching the map-era semantics.
func TestTruncatePacked(t *testing.T) {
	g := testGraph(t, 29)
	s := buildStore(t, g, hierarchy.Options{Seed: 30})
	const min = 1e-4
	var expect int
	for _, m := range []map[int32]sparse.Packed{s.HubPartial, s.Skeleton, s.LeafPPV} {
		for _, v := range m {
			for _, e := range v.Entries() {
				if e.Score < min && e.Score > -min {
					expect++
				}
			}
		}
	}
	before := s.SpaceBytes()
	dropped := s.Truncate(min)
	if dropped != expect {
		t.Fatalf("Truncate dropped %d, want %d", dropped, expect)
	}
	if got := s.SpaceBytes(); got != before-int64(12*dropped) {
		t.Fatalf("SpaceBytes %d after dropping %d entries from %d", got, dropped, before)
	}
	for _, m := range []map[int32]sparse.Packed{s.HubPartial, s.Skeleton, s.LeafPPV} {
		for key, v := range m {
			for _, e := range v.Entries() {
				if e.Score < min && e.Score > -min {
					t.Fatalf("entry %v survived Truncate in vector %d", e, key)
				}
			}
		}
	}
}
