// Package ppr implements the random-walk primitives of the paper: power
// iteration (Algorithm 2), selective expansion for partial vectors
// (Appendix E.1, Eq. 9), and the memory-bounded reverse iteration for hubs
// skeleton vectors (§5.2, Eq. 8).
//
// All functions operate in the LOCAL id space of the graph they are given;
// callers working with (virtual) subgraphs map global ↔ local ids
// themselves. Virtual sink nodes are never expanded and never accumulate
// score: walk mass that would enter the sink is absorbed, implementing the
// paper's Definition 3 semantics (see internal/graph).
//
// Dangling nodes (OutWeight 0) absorb by default, which is the semantics
// of the Jeh–Widom inverse P-distance (Eq. 2: a tour cannot continue from
// a node with no out-edges). DanglingRestart reproduces the engineering
// choice of the paper's Algorithm 2, which adds an implicit arc from every
// dangling node back to the query node.
//
// The pre-computation kernels (partial vectors, skeleton vectors, leaf
// PPVs) come in two engines selected by Params.Kernel: the original
// dense-bookkeeping kernels, and sparse-frontier push kernels (push.go)
// that run the same arithmetic with work-proportional bookkeeping —
// epoch-stamped lazy slot initialization and touched-list drains — so a
// vector that reaches t nodes costs O(t log t) instead of O(|V|).
// Both engines maintain the Gauss–Southwell residual invariant
// exact = estimate + Σ residual·kernel and terminate when every
// residual is at most Eps (each entry then within Eps/α of the fixed
// point); their outputs are bit-identical. KernelAuto (the default)
// pushes and falls back to the dense sweep when the frontier spills
// past a fixed fraction of the subgraph.
package ppr

import (
	"fmt"
	"math"

	"exactppr/internal/graph"
	"exactppr/internal/sparse"
)

// DanglingPolicy selects what happens to walk mass at out-degree-0 nodes.
type DanglingPolicy int

const (
	// DanglingAbsorb terminates walks at dangling nodes (inverse
	// P-distance semantics; the default).
	DanglingAbsorb DanglingPolicy = iota
	// DanglingRestart redirects dangling mass to the query node, as in
	// the paper's Algorithm 2 (lines 14–16).
	DanglingRestart
)

// Params bundles the common PPR knobs.
type Params struct {
	// Alpha is the teleport probability (paper default 0.15).
	Alpha float64
	// Eps is the per-entry convergence tolerance (paper default 1e-4).
	Eps float64
	// MaxIter caps work as a safety net; 0 means a generous default and
	// negative values are rejected by Validate. For PowerIteration it
	// bounds sweep iterations; for the queue-driven kernels — dense and
	// push alike (KernelAuto/KernelPush interpret it identically) — it
	// is a push-count cap scaled by the node count: at most
	// MaxIter·NumNodes residual pops per vector.
	MaxIter int
	// Dangling selects the dangling-node policy.
	Dangling DanglingPolicy
	// Kernel selects the pre-computation engine (KernelAuto default:
	// sparse-frontier push with adaptive dense fallback). It never
	// changes results — only how the work is bookkept. See push.go.
	Kernel Kernel
}

// Defaults returns the paper's default parameters: α = 0.15, ε = 1e-4.
func Defaults() Params { return Params{Alpha: 0.15, Eps: 1e-4} }

func (p Params) maxIter() int {
	if p.MaxIter > 0 {
		return p.MaxIter
	}
	return 10000
}

// Validate reports the first invalid parameter.
func (p Params) Validate() error {
	if !(p.Alpha > 0 && p.Alpha < 1) {
		return fmt.Errorf("ppr: alpha = %v, want (0,1)", p.Alpha)
	}
	if !(p.Eps > 0) {
		return fmt.Errorf("ppr: eps = %v, want > 0", p.Eps)
	}
	if p.MaxIter < 0 {
		return fmt.Errorf("ppr: maxIter = %d, want >= 0 (0 means the default cap)", p.MaxIter)
	}
	if p.Kernel < KernelAuto || p.Kernel > KernelPush {
		return fmt.Errorf("ppr: unknown kernel %d (want KernelAuto, KernelDense, or KernelPush)", int(p.Kernel))
	}
	return nil
}

// PowerIteration computes the PPV of the single query node q on g by the
// fixed-point iteration r ← (1−α)·AᵀR + α·x_q, stopping when every entry
// changes by at most Eps (Algorithm 2's criterion). Entries at or below
// Eps·Alpha are dropped from the returned sparse vector only if they are
// exactly zero; callers needing truncation apply it themselves.
func PowerIteration(g *graph.Graph, q int32, p Params) (sparse.Vector, error) {
	return PowerIterationSet(g, []int32{q}, p)
}

// PowerIterationSet computes the PPV for a preference node SET (uniform
// preference over the given nodes), supporting the paper's general P.
func PowerIterationSet(g *graph.Graph, pref []int32, p Params) (sparse.Vector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(pref) == 0 {
		return nil, fmt.Errorf("ppr: empty preference set")
	}
	n := g.NumNodes()
	for _, q := range pref {
		if q < 0 || int(q) >= n {
			return nil, fmt.Errorf("ppr: preference node %d out of range [0,%d)", q, n)
		}
		if g.IsVirtual(q) {
			return nil, fmt.Errorf("ppr: preference node %d is the virtual sink", q)
		}
	}
	x := make([]float64, n)
	w := 1 / float64(len(pref))
	for _, q := range pref {
		x[q] += w
	}
	cur := make([]float64, n)
	copy(cur, x)
	for i := range cur {
		cur[i] *= p.Alpha
	}
	next := make([]float64, n)
	restart := p.Dangling == DanglingRestart

	for iter := 0; iter < p.maxIter(); iter++ {
		for i := range next {
			next[i] = p.Alpha * x[i]
		}
		for u := int32(0); u < int32(n); u++ {
			mass := cur[u]
			if mass == 0 || g.IsVirtual(u) {
				continue
			}
			ow := g.OutWeight(u)
			if ow == 0 {
				if restart {
					for _, q := range pref {
						next[q] += mass * (1 - p.Alpha) * w
					}
				}
				continue // absorb
			}
			share := mass * (1 - p.Alpha) / float64(ow)
			for _, v := range g.Out(u) {
				if g.IsVirtual(v) {
					continue // sink absorbs its share
				}
				next[v] += share
			}
		}
		converged := true
		for i := range next {
			if math.Abs(next[i]-cur[i]) > p.Eps {
				converged = false
				break
			}
		}
		cur, next = next, cur
		if converged {
			break
		}
	}
	if g.HasVirtualSink() {
		cur[g.VirtualSink()] = 0
	}
	return sparse.FromDense(cur, 0), nil
}

// PartialVector computes the partial vector p_u^H of node u by selective
// expansion (Eq. 9, Definition 1): the weights of tours u⇝v that visit no
// hub node at any position AFTER the start. The start position is exempt,
// so a hub node's own partial vector exists (it expands exactly once, at
// step 0) — but a later return to it, like any other hub visit, freezes
// the walk (frozen mass is reported in hubBlocked, diagnostics only).
// Consequences:
//
//   - p(v) = 0 for every hub v ≠ u; p(u) = α exactly when u ∈ H (only
//     the zero-length tour survives).
//   - P_h := p_h − α·x_h has NO entries on hub nodes at all, so in the
//     construction (Eq. 4) every hub-target entry of the PPV comes
//     directly from the skeleton: r_u(h) = s_u(h). This is the
//     "last hub visit" renewal decomposition: r_u(v) = p_u(v) +
//     (1/α)·Σ_h (r_u(h) − α·f_u(h))·p_h(v) for v ∉ H, verified exactly in
//     TestDecompositionIdentity for hub and non-hub query nodes alike.
//
// isHub[v] marks hub nodes in local id space; it may be nil for an empty
// hub set, in which case the result is the full local PPV of u — exactly
// the "leaf level" vectors HGPA stores (§4.4).
//
// The engine follows p.Kernel; both engines produce identical results.
func PartialVector(g *graph.Graph, u int32, isHub []bool, p Params) (partial, hubBlocked sparse.Vector, err error) {
	if p.Kernel == KernelDense {
		d, blocked, _, err := partialVectorDense(g, u, isHub, p, nil)
		if err != nil {
			return nil, nil, err
		}
		return sparse.FromDense(d, 0), sparse.FromDense(blocked, 0), nil
	}
	st, err := pushPartial(g, u, isHub, p, nil)
	if err != nil {
		return nil, nil, err
	}
	return st.drainVector(st.est), st.drainVector(st.aux), nil
}

// PartialVectorPacked is PartialVector emitting the partial vector in
// packed columnar form straight from the truncation step — the shape
// pre-computation stores and query folds consume. The blocked-mass
// vector stays a map: its consumers mutate and drain it (the FastPPV
// scheduler's priority queue).
func PartialVectorPacked(g *graph.Graph, u int32, isHub []bool, p Params) (partial sparse.Packed, hubBlocked sparse.Vector, err error) {
	if p.Kernel == KernelDense {
		d, blocked, _, err := partialVectorDense(g, u, isHub, p, nil)
		if err != nil {
			return sparse.Packed{}, nil, err
		}
		return sparse.PackedFromDense(d, 0), sparse.FromDense(blocked, 0), nil
	}
	st, err := pushPartial(g, u, isHub, p, nil)
	if err != nil {
		return sparse.Packed{}, nil, err
	}
	return st.drainPacked(), st.drainVector(st.aux), nil
}

// partialVectorDense is the dense-bookkeeping selective-expansion
// kernel, producing dense lower-approximation and blocked-mass slices
// plus the number of residual pops. With a non-nil Scratch the slices
// alias its buffers (valid until the scratch's next use); with nil they
// are freshly allocated. pushPartial is the sparse-frontier equivalent.
func partialVectorDense(g *graph.Graph, u int32, isHub []bool, p Params, sc *Scratch) (dense, blockedMass []float64, steps int, err error) {
	if err := p.Validate(); err != nil {
		return nil, nil, 0, err
	}
	n := g.NumNodes()
	if u < 0 || int(u) >= n || g.IsVirtual(u) {
		return nil, nil, 0, fmt.Errorf("ppr: source %d invalid", u)
	}
	if isHub != nil && len(isHub) != n {
		return nil, nil, 0, fmt.Errorf("ppr: isHub length %d, want %d", len(isHub), n)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	hub := func(v int32) bool { return isHub != nil && isHub[v] }

	d, e, blocked := sc.dense(n) // D_k approximation, E_k residual, hub-frozen mass
	queue := sc.queueBuf()
	inQueue := sc.bools(n)
	push := func(v int32) {
		if !inQueue[v] && e[v] > p.Eps {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}
	expand := func(v int32, mass float64) {
		ow := g.OutWeight(v)
		if ow == 0 {
			return // dangling or fully-external: absorb
		}
		share := mass * (1 - p.Alpha) / float64(ow)
		for _, w := range g.Out(v) {
			if g.IsVirtual(w) {
				continue
			}
			e[w] += share
			push(w)
		}
	}

	// Step 0: the zero-length tour ends at u (α), and u expands even when
	// it is a hub — the start position is not interior.
	d[u] = p.Alpha
	expand(u, 1)

	limit := p.maxIter() * max(n, 1)
	for len(queue) > 0 && steps < limit {
		steps++
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		mass := e[v]
		if mass <= p.Eps {
			continue
		}
		e[v] = 0
		if hub(v) {
			blocked[v] += mass // frozen: no hub visits after the start
			continue
		}
		d[v] += p.Alpha * mass // tours ending here
		expand(v, mass)
	}
	return d, blocked, steps, nil
}

// SkeletonForHub computes s_·(h) — the PPV value AT hub h for every source
// node simultaneously — solving the paper's reverse value iteration (Eq. 8)
//
//	F(u) = (1−α)·Σ_{v∈Out(u)} F(v)/OutWeight(u) + α·x_h(u)
//
// with a residual-driven (Gauss–Seidel / local reverse push) scheme instead
// of the dense Jacobi sweeps of Theorem 6: when all residuals fall below
// Eps, each entry is within Eps/α of the fixed point, the same class of
// guarantee as the paper's termination rule while touching only the nodes
// h's influence actually reaches. Space is O(|V|), the point of §5.2.
//
// The returned dense slice is indexed by local node id; entry u converges
// to s_u(h) — the local PPV value r_u(h). The output shape is dense by
// contract regardless of Params.Kernel; PushSkeleton is the packed,
// work-proportional variant.
func SkeletonForHub(g *graph.Graph, h int32, p Params) ([]float64, error) {
	est, _, err := skeletonForHub(g, h, p, nil)
	return est, err
}

// skeletonForHub is the dense-bookkeeping reverse kernel behind
// SkeletonForHub; a non-nil Scratch supplies the working arrays (the
// result then aliases them), nil allocates fresh ones. pushSkeleton is
// the sparse-frontier equivalent.
func skeletonForHub(g *graph.Graph, h int32, p Params, sc *Scratch) (dense []float64, steps int, err error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	n := g.NumNodes()
	if h < 0 || int(h) >= n || g.IsVirtual(h) {
		return nil, 0, fmt.Errorf("ppr: hub %d invalid", h)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	g.BuildReverse()
	est, res, _ := sc.dense(n)
	res[h] = p.Alpha
	queue := sc.queueBuf()
	inQueue := sc.bools(n)
	queue = append(queue, h)
	inQueue[h] = true
	limit := p.maxIter() * max(n, 1)
	for len(queue) > 0 && steps < limit {
		steps++
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		rho := res[u]
		if rho <= p.Eps {
			continue
		}
		res[u] = 0
		est[u] += rho
		// F(w) receives (1−α)·F(u)/OutWeight(w) for every edge w→u.
		for _, w := range g.In(u) {
			ow := g.OutWeight(w)
			if ow == 0 || g.IsVirtual(w) {
				continue
			}
			res[w] += (1 - p.Alpha) * rho / float64(ow)
			if !inQueue[w] && res[w] > p.Eps {
				inQueue[w] = true
				queue = append(queue, w)
			}
		}
	}
	if g.HasVirtualSink() {
		est[g.VirtualSink()] = 0
	}
	return est, steps, nil
}

// SkeletonForHubDense is the literal Jacobi iteration of Eq. 8/Theorem 6,
// kept as a cross-validation oracle for SkeletonForHub and as the ablation
// target for the "improved skeleton computation" claim of §5.2.
func SkeletonForHubDense(g *graph.Graph, h int32, p Params) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if h < 0 || int(h) >= n || g.IsVirtual(h) {
		return nil, fmt.Errorf("ppr: hub %d invalid", h)
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	for iter := 0; iter < p.maxIter(); iter++ {
		for u := int32(0); u < int32(n); u++ {
			var acc float64
			if ow := g.OutWeight(u); ow != 0 && !g.IsVirtual(u) {
				var sum float64
				for _, v := range g.Out(u) {
					if !g.IsVirtual(v) {
						sum += cur[v]
					}
				}
				acc = (1 - p.Alpha) * sum / float64(ow)
			}
			if u == h {
				acc += p.Alpha
			}
			next[u] = acc
		}
		converged := true
		for i := range next {
			if math.Abs(next[i]-cur[i]) > p.Eps*p.Alpha {
				converged = false
				break
			}
		}
		cur, next = next, cur
		if converged {
			break
		}
	}
	if g.HasVirtualSink() {
		cur[g.VirtualSink()] = 0
	}
	return cur, nil
}
