package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"exactppr/internal/hierarchy"
	"exactppr/internal/mmapfile"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

// DiskStore answers exact PPV queries straight from a store file written
// by Save/SaveFile, reading vectors on demand instead of materializing
// them in memory. The paper points out that pre-computed vectors "could
// likely be larger than available main memory" and suggests a disk-based
// implementation (§5.2); this is that implementation, built around three
// compounding serving optimisations:
//
//   - Zero-copy mmap. The store file is memory-mapped by default and
//     version-2 payloads are served as sparse.PackedView slices aliasing
//     the mapping — no read buffer, no decode copy; the OS page cache is
//     the real vector cache. A -mmap=off knob (DiskOptions.DisableMmap),
//     unsupported platforms, and map failures all fall back to the
//     portable ReadAt+decode path.
//   - Transposed skeleton index. A query folds exactly one hub-plan row
//     (leaf + Σ (h, S_u(h))·partial) instead of fetching every path
//     hub's entire skeleton vector to read a single scalar. Version-2
//     files carry the transpose as a fourth section; legacy files get it
//     synthesized in memory at open.
//   - Sharded coalescing cache. Decoded vectors (views, in mmap mode)
//     live in an N-way sharded CLOCK cache with per-key singleflight, so
//     a miss storm on a hot hub issues ONE read however many queries are
//     in flight. See diskcache.go.
//
// Only the graph, the hierarchy, and an offset index are always
// resident; vector payloads stay on disk (or in the page cache).
//
// DiskStore is safe for concurrent queries and is read-only: it does not
// support ApplyUpdates — rebuild and reopen to pick up new graph state.
type DiskStore struct {
	H      *hierarchy.Hierarchy
	Params ppr.Params

	f       *os.File
	data    []byte // mmap of the whole file; nil on the fallback path
	version int    // store file format version (1 or 2)

	idx     [4]map[int32]span // hub partials, skeletons, leaf PPVs, hub plans
	planMem map[int32]planRow // synthesized transpose for version-1 files

	// fmu guards the file AND mapping lifecycle. Queries hold it shared
	// for their entire duration — not just across the read — because in
	// mmap mode the vectors being folded are views over the mapping;
	// Close takes it exclusively, so it cannot unmap bytes an in-flight
	// fold is reading. Drained results never alias the mapping (the
	// accumulator copies on drain), so nothing escapes the lock.
	fmu    sync.RWMutex
	closed bool

	cache *vecCache
	stats diskCounters
}

// ErrStoreClosed reports a query against a DiskStore after Close.
var ErrStoreClosed = fmt.Errorf("core: disk store is closed")

type span struct {
	off int64
	len int32
}

type cacheKey struct {
	section int8
	key     int32
}

const (
	secHubPartial = 0
	secSkeleton   = 1
	secLeafPPV    = 2
	secHubPlan    = 3
)

// defaultCacheCap bounds the vector cache when DiskOptions.CacheCap is
// zero. In mmap mode the cache holds slice headers, not payloads, so
// this is a count of cheap entries; in fallback mode it bounds real heap
// copies.
const defaultCacheCap = 1024

// DiskOptions tunes OpenDiskStoreWith.
type DiskOptions struct {
	// DisableMmap forces the portable ReadAt+decode path even where
	// mapping would work — the -mmap=off serving knob.
	DisableMmap bool
	// CacheCap bounds the number of cached vectors (0 = default 1024;
	// minimum 1 per cache shard).
	CacheCap int
}

// DiskStats is a snapshot of the serving counters, exposed through the
// gateway's /stats so cache and mmap regressions are observable in
// production, not just in benchmarks.
type DiskStats struct {
	// CacheHits/CacheMisses count cache probes.
	CacheHits, CacheMisses int64
	// CoalescedReads counts misses that waited on another query's
	// in-flight read instead of issuing their own (the miss-storm fix:
	// under a hot-key storm this approaches CacheMisses while Reads
	// stays near the distinct-vector count).
	CoalescedReads int64
	// Reads counts actual payload loads (ReadAt+decode, or view
	// construction in mmap mode).
	Reads int64
	// Evictions counts CLOCK evictions.
	Evictions int64
	// Cached is the current number of cached vectors.
	Cached int
	// Mmap reports whether the store is serving zero-copy from a
	// memory-mapped file (false: the ReadAt fallback).
	Mmap bool
	// FormatVersion is the store file version (2 carries the transposed
	// skeleton index on disk; 1 synthesizes it at open).
	FormatVersion int
}

// ParseDiskOptions builds DiskOptions from the serving commands' shared
// -mmap ("on"/"off") and -cachecap flag values.
func ParseDiskOptions(mmapMode string, cacheCap int) (DiskOptions, error) {
	opts := DiskOptions{CacheCap: cacheCap}
	switch mmapMode {
	case "on":
	case "off":
		opts.DisableMmap = true
	default:
		return opts, fmt.Errorf("core: bad mmap mode %q (want on or off)", mmapMode)
	}
	return opts, nil
}

// OpenDiskStore opens a store file for on-demand querying with default
// options (mmap on, 1024-vector cache).
func OpenDiskStore(path string) (*DiskStore, error) {
	return OpenDiskStoreWith(path, DiskOptions{})
}

// OpenDiskStoreWith opens a store file for on-demand querying. The
// header, graph, and hierarchy are loaded; vector payloads are indexed
// by offset and (unless mapping is disabled or unavailable) served
// zero-copy from a read-only memory map.
func OpenDiskStoreWith(path string, opts DiskOptions) (*DiskStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	ds, err := indexStoreFile(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	cap := opts.CacheCap
	if cap <= 0 {
		cap = defaultCacheCap
	}
	ds.cache = newVecCache(0, cap)
	if !opts.DisableMmap {
		// Mapping failures (platform without mmap, exotic filesystems)
		// degrade to the ReadAt path silently: same answers, fewer tricks.
		if data, err := mmapfile.Map(f); err == nil {
			ds.data = data
		}
	}
	return ds, nil
}

// Close releases the mapping and the underlying file. It blocks until
// in-flight queries drain — cached vector views alias the mapping, so
// unmapping mid-fold would be a fault, not just a race; queries issued
// afterwards fail with ErrStoreClosed. Close is idempotent.
func (d *DiskStore) Close() error {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	d.cache.purge() // cached views must not survive the mapping
	var err error
	if d.data != nil {
		err = mmapfile.Unmap(d.data)
		d.data = nil
	}
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// SetCacheCap rebounds the in-memory vector cache (minimum 1 per cache
// shard). Shrinking evicts through the same CLOCK policy as inserts.
func (d *DiskStore) SetCacheCap(n int) {
	d.cache.setCap(n, &d.stats)
}

// Stats snapshots the serving counters. Safe concurrently with queries
// and Close (the mapping state is read under the lifecycle lock).
func (d *DiskStore) Stats() DiskStats {
	d.fmu.RLock()
	mmap := d.data != nil
	d.fmu.RUnlock()
	return DiskStats{
		CacheHits:      d.stats.hits.Load(),
		CacheMisses:    d.stats.misses.Load(),
		CoalescedReads: d.stats.coalesced.Load(),
		Reads:          d.stats.reads.Load(),
		Evictions:      d.stats.evictions.Load(),
		Cached:         d.cache.len(),
		Mmap:           mmap,
		FormatVersion:  d.version,
	}
}

// acquire takes the shared lifecycle lock for one query; the caller must
// release() when its fold (including the drain) is done.
func (d *DiskStore) acquire() error {
	d.fmu.RLock()
	if d.closed {
		d.fmu.RUnlock()
		return ErrStoreClosed
	}
	return nil
}

func (d *DiskStore) release() { d.fmu.RUnlock() }

// indexStoreFile parses the header exactly as Load does, but tracks byte
// positions so the vector payloads can be skipped and indexed. For
// version-1 files the skeleton section is additionally decoded in
// passing to synthesize the transposed hub-plan index.
func indexStoreFile(f *os.File) (*DiskStore, error) {
	cr := &countingReader{r: bufio.NewReaderSize(f, 1<<20)}
	version, params, opts, g, err := readStoreHeader(cr)
	if err != nil {
		return nil, err
	}
	h, err := hierarchy.Build(g, opts)
	if err != nil {
		return nil, err
	}
	ds := &DiskStore{H: h, Params: params, f: f, version: version}
	var planb *planBuilder
	if version == 1 {
		planb = newPlanBuilder(h)
	}
	sections := 4
	if version == 1 {
		sections = 3
	}
	for sec := 0; sec < sections; sec++ {
		var count int32
		if err := binary.Read(cr, binary.LittleEndian, &count); err != nil {
			return nil, err
		}
		if count < 0 {
			return nil, fmt.Errorf("core: corrupt section count")
		}
		idx := make(map[int32]span, count)
		for i := int32(0); i < count; i++ {
			key, vlen, err := readRecordMeta(cr, version)
			if err != nil {
				return nil, err
			}
			idx[key] = span{off: cr.n, len: vlen}
			if planb != nil && sec == secSkeleton {
				// Legacy file: the transpose is not on disk — build it
				// from the skeleton payloads while they stream past.
				buf := make([]byte, vlen)
				if _, err := io.ReadFull(cr, buf); err != nil {
					return nil, err
				}
				vec, err := sparse.DecodePacked(buf)
				if err != nil {
					return nil, err
				}
				if !vec.InRange(g.NumNodes()) {
					return nil, fmt.Errorf("core: skeleton %d has out-of-range node ids (corrupt store?)", key)
				}
				planb.addSkeleton(key, vec)
				continue
			}
			if err := cr.skip(int64(vlen)); err != nil {
				return nil, err
			}
		}
		ds.idx[sec] = idx
	}
	if planb != nil {
		ds.planMem = planb.finish()
	}
	return ds, nil
}

// countingReader tracks the absolute file offset while reading through a
// buffered reader.
type countingReader struct {
	r *bufio.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) skip(n int64) error {
	k, err := c.r.Discard(int(n))
	c.n += int64(k)
	if err == nil && int64(k) < n {
		return io.ErrUnexpectedEOF
	}
	return err
}

// fetchBufPool recycles the ReadAt buffers of the non-mmap path: a cache
// miss used to allocate a fresh payload-sized slice, which at
// disk-resident cache rates made the read buffer the top allocation of
// the query path. Both decoders copy out of the buffer, so returning it
// to the pool before the decoded vector escapes is safe.
var fetchBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// readPayload returns the raw bytes of one record: a slice of the
// mapping (alias — do not retain past the lifecycle lock without going
// through the cache) or a pooled buffer with done() returning it.
func (d *DiskStore) readPayload(sp span) (buf []byte, done func(), err error) {
	if d.data != nil {
		end := sp.off + int64(sp.len)
		if sp.off < 0 || end > int64(len(d.data)) {
			return nil, nil, fmt.Errorf("core: record at %d+%d outside mapped file (%d bytes)", sp.off, sp.len, len(d.data))
		}
		return d.data[sp.off:end:end], func() {}, nil
	}
	bp := fetchBufPool.Get().(*[]byte)
	if cap(*bp) < int(sp.len) {
		*bp = make([]byte, sp.len)
	}
	buf = (*bp)[:sp.len]
	if _, err := d.f.ReadAt(buf, sp.off); err != nil {
		fetchBufPool.Put(bp)
		return nil, nil, err
	}
	return buf, func() { fetchBufPool.Put(bp) }, nil
}

// loadVector decodes one vector record. In mmap mode on a version-2 file
// this is zero-copy: the returned Packed is a view over the mapping.
func (d *DiskStore) loadVector(section int8, key int32) (cval, error) {
	sp, ok := d.idx[section][key]
	if !ok {
		return cval{}, fmt.Errorf("core: no vector for section %d key %d", section, key)
	}
	buf, done, err := d.readPayload(sp)
	if err != nil {
		return cval{}, err
	}
	defer done()
	var v sparse.Packed
	if d.version == 1 {
		v, err = sparse.DecodePacked(buf) // interleaved payload: always a copy
	} else if d.data != nil {
		var ids []int32
		var scores []float64
		ids, scores, err = sparse.ViewColumnar(buf) // aliases the mapping
		if err == nil {
			v, err = sparse.PackedView(ids, scores)
		}
	} else {
		var ids []int32
		var scores []float64
		ids, scores, err = sparse.DecodeColumnar(buf) // pooled buffer: must copy
		if err == nil {
			v, err = sparse.PackedView(ids, scores)
		}
	}
	if err != nil {
		return cval{}, fmt.Errorf("core: vector for section %d key %d: %w", section, key, err)
	}
	if !v.InRange(d.H.G.NumNodes()) {
		return cval{}, fmt.Errorf("core: vector for section %d key %d has out-of-range node ids (corrupt store?)", section, key)
	}
	return cval{vec: v}, nil
}

// fetch reads (and caches) one vector through the coalescing cache.
func (d *DiskStore) fetch(section int8, key int32) (sparse.Packed, error) {
	v, err := d.cache.getOrLoad(cacheKey{section, key}, &d.stats, func() (cval, error) {
		return d.loadVector(section, key)
	})
	return v.vec, err
}

// plan returns query node u's hub-weight row. Version-1 stores answer
// from the open-time synthesis; version-2 stores fetch the row like any
// other vector (a node with no path hubs simply has no row).
func (d *DiskStore) plan(u int32) (planRow, error) {
	if d.version == 1 {
		return d.planMem[u], nil
	}
	v, err := d.cache.getOrLoad(cacheKey{secHubPlan, u}, &d.stats, func() (cval, error) {
		sp, ok := d.idx[secHubPlan][u]
		if !ok {
			return cval{}, nil
		}
		buf, done, err := d.readPayload(sp)
		if err != nil {
			return cval{}, err
		}
		defer done()
		var hubs []int32
		var s []float64
		if d.data != nil {
			hubs, s, err = sparse.ViewColumnar(buf)
		} else {
			hubs, s, err = sparse.DecodeColumnar(buf)
		}
		if err != nil {
			return cval{}, fmt.Errorf("core: hub plan for %d: %w", u, err)
		}
		n := int32(d.H.G.NumNodes())
		for _, h := range hubs {
			if h < 0 || h >= n {
				return cval{}, fmt.Errorf("core: hub plan for %d references out-of-range hub %d (corrupt store?)", u, h)
			}
		}
		return cval{plan: planRow{hubs: hubs, s: s}}, nil
	})
	return v.plan, err
}

// queryInto folds w times (the shard sh's slice of) u's exact PPV into
// acc — the same identity, in the same floating-point order, as
// Store.queryInto, so disk and in-memory answers are bit-identical. The
// caller holds the lifecycle lock. sh == nil folds the whole store.
func (d *DiskStore) queryInto(acc *sparse.Accumulator, u int32, w float64, sh *DiskShard) error {
	if u < 0 || int(u) >= d.H.G.NumNodes() {
		return fmt.Errorf("core: query node %d out of range", u)
	}
	alpha := d.Params.Alpha
	row, err := d.plan(u)
	if err != nil {
		return err
	}
	for i, h := range row.hubs {
		if sh != nil && !sh.hubs[h] {
			continue
		}
		su := row.s[i]
		if h == u {
			su -= alpha // S_u(h) = s_u(h) − α·f_u(h)
		}
		if su == 0 {
			continue
		}
		partial, err := d.fetch(secHubPartial, h)
		if err != nil {
			return err
		}
		acc.AddPacked(partial, w*su/alpha)
		acc.Add(h, w*su)
	}
	// Final term: the leaf-level local PPV for a non-hub query, or the
	// hub's own partial p_u = P_u + α·x_u; in sharded mode it belongs to
	// whoever owns the vector.
	if d.H.IsHub(u) {
		if sh == nil || sh.hubs[u] {
			partial, err := d.fetch(secHubPartial, u)
			if err != nil {
				return err
			}
			acc.AddPacked(partial, w)
			acc.Add(u, w*alpha)
		}
	} else if sh == nil || sh.leaves[u] {
		leaf, err := d.fetch(secLeafPPV, u)
		if err != nil {
			return err
		}
		acc.AddPacked(leaf, w)
	}
	return nil
}

// Query constructs the exact PPV of u reading vectors from disk — the
// same identity as Store.Query, bit-for-bit.
func (d *DiskStore) Query(u int32) (sparse.Vector, error) {
	if err := d.acquire(); err != nil {
		return nil, err
	}
	defer d.release()
	acc := sparse.AcquireAccumulator(d.H.G.NumNodes())
	defer acc.Release()
	if err := d.queryInto(acc, u, 1, nil); err != nil {
		return nil, err
	}
	return acc.Vector(), nil
}

// QueryPacked is Query draining into the columnar representation the
// serving layer encodes straight onto the wire.
func (d *DiskStore) QueryPacked(u int32) (sparse.Packed, error) {
	if err := d.acquire(); err != nil {
		return sparse.Packed{}, err
	}
	defer d.release()
	acc := sparse.AcquireAccumulator(d.H.G.NumNodes())
	defer acc.Release()
	if err := d.queryInto(acc, u, 1, nil); err != nil {
		return sparse.Packed{}, err
	}
	return acc.Packed(), nil
}

// QueryTopK returns the k highest-scoring nodes of u's exact PPV without
// materializing the full vector.
func (d *DiskStore) QueryTopK(u int32, k int) ([]sparse.Entry, error) {
	if err := d.acquire(); err != nil {
		return nil, err
	}
	defer d.release()
	acc := sparse.AcquireAccumulator(d.H.G.NumNodes())
	defer acc.Release()
	if err := d.queryInto(acc, u, 1, nil); err != nil {
		return nil, err
	}
	return acc.TopK(k), nil
}

// QuerySet constructs the exact PPV of a weighted preference set by
// linearity — the disk-resident analogue of Store.QuerySet.
func (d *DiskStore) QuerySet(p Preference) (sparse.Vector, error) {
	acc, err := d.querySetInto(p)
	if err != nil {
		return nil, err
	}
	defer d.release()
	defer acc.Release()
	return acc.Vector(), nil
}

// QuerySetPacked is QuerySet draining into columnar form.
func (d *DiskStore) QuerySetPacked(p Preference) (sparse.Packed, error) {
	acc, err := d.querySetInto(p)
	if err != nil {
		return sparse.Packed{}, err
	}
	defer d.release()
	defer acc.Release()
	return acc.Packed(), nil
}

// querySetInto runs the weighted fold; on success the caller owns both
// the accumulator release and the lifecycle lock release.
func (d *DiskStore) querySetInto(p Preference) (*sparse.Accumulator, error) {
	if err := d.acquire(); err != nil {
		return nil, err
	}
	w, err := p.normalized(d.H.G.NumNodes())
	if err != nil {
		d.release()
		return nil, err
	}
	acc := sparse.AcquireAccumulator(d.H.G.NumNodes())
	for i, u := range p.Nodes {
		if err := d.queryInto(acc, u, w[i], nil); err != nil {
			acc.Release()
			d.release()
			return nil, err
		}
	}
	return acc, nil
}
