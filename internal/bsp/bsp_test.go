package bsp

import (
	"testing"

	"exactppr/internal/gen"
	"exactppr/internal/graph"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

func params() ppr.Params { return ppr.Params{Alpha: 0.15, Eps: 1e-8} }

func community(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Community(gen.Config{
		Nodes: 400, AvgOutDegree: 4, Communities: 4,
		InterFrac: 0.05, MinOutDegree: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewEngineErrors(t *testing.T) {
	g := community(t)
	if _, err := NewEngine(g, VertexCentric, 0); err == nil {
		t.Fatal("workers=0 should fail")
	}
	if _, err := NewEngine(g, Mode(99), 2); err == nil {
		t.Fatal("unknown mode should fail")
	}
	if _, err := NewEngine(graph.FromAdjacency(nil), VertexCentric, 1); err == nil {
		t.Fatal("empty graph should fail")
	}
}

func TestRunPPVErrors(t *testing.T) {
	g := community(t)
	e, err := NewEngine(g, VertexCentric, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunPPV(-1, params()); err == nil {
		t.Fatal("bad query should fail")
	}
	if _, err := e.RunPPV(0, ppr.Params{Alpha: 9, Eps: 1e-4}); err == nil {
		t.Fatal("bad params should fail")
	}
}

func TestVertexCentricMatchesPowerIteration(t *testing.T) {
	g := community(t)
	want, err := ppr.PowerIteration(g, 17, params())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5} {
		e, err := NewEngine(g, VertexCentric, workers)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := e.RunPPV(17, params())
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(stats.Result, want); d > 1e-6 {
			t.Errorf("workers=%d: L∞ = %v", workers, d)
		}
		if stats.Supersteps < 5 {
			t.Errorf("workers=%d: suspiciously few supersteps %d", workers, stats.Supersteps)
		}
	}
}

func TestBlockCentricMatchesPowerIteration(t *testing.T) {
	g := community(t)
	want, err := ppr.PowerIteration(g, 42, params())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		e, err := NewEngine(g, BlockCentric, workers)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := e.RunPPV(42, params())
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(stats.Result, want); d > 1e-5 {
			t.Errorf("workers=%d: L∞ = %v", workers, d)
		}
	}
}

func TestSingleWorkerNoNetwork(t *testing.T) {
	g := community(t)
	for _, mode := range []Mode{VertexCentric, BlockCentric} {
		e, err := NewEngine(g, mode, 1)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := e.RunPPV(3, params())
		if err != nil {
			t.Fatal(err)
		}
		if stats.Messages != 0 || stats.NetworkBytes != 0 {
			t.Errorf("%v: single worker must not use the network: %d msgs", mode, stats.Messages)
		}
	}
}

// TestBlogelBeatsPregelOnCommunication reproduces the ordering of
// Figures 21–22: block placement plus local convergence must cut both
// supersteps and cross-worker traffic on community graphs.
func TestBlogelBeatsPregelOnCommunication(t *testing.T) {
	g := community(t)
	pregel, err := NewEngine(g, VertexCentric, 4)
	if err != nil {
		t.Fatal(err)
	}
	blogel, err := NewEngine(g, BlockCentric, 4)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := pregel.RunPPV(7, params())
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blogel.RunPPV(7, params())
	if err != nil {
		t.Fatal(err)
	}
	if bs.Supersteps >= ps.Supersteps {
		t.Errorf("blogel supersteps %d ≥ pregel %d", bs.Supersteps, ps.Supersteps)
	}
	if bs.NetworkBytes >= ps.NetworkBytes {
		t.Errorf("blogel bytes %d ≥ pregel %d", bs.NetworkBytes, ps.NetworkBytes)
	}
}

// TestCommGrowsWithWorkers reproduces the trend the paper observes on
// Pregel+: more machines ⇒ more cross-worker messages for the same job.
func TestCommGrowsWithWorkers(t *testing.T) {
	g := community(t)
	var prev int64 = -1
	for _, workers := range []int{1, 2, 8} {
		e, err := NewEngine(g, VertexCentric, workers)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := e.RunPPV(11, params())
		if err != nil {
			t.Fatal(err)
		}
		if stats.NetworkBytes <= prev {
			t.Errorf("workers=%d: bytes %d not greater than previous %d",
				workers, stats.NetworkBytes, prev)
		}
		prev = stats.NetworkBytes
	}
}

func TestModeString(t *testing.T) {
	if VertexCentric.String() != "pregel+" || BlockCentric.String() != "blogel" {
		t.Fatal("mode names changed — experiment tables depend on them")
	}
}

func TestMessagesCountedOnlyAcrossWorkers(t *testing.T) {
	// Two disconnected cliques placed as two blocks: block mode must send
	// nothing at all.
	b := graph.NewBuilder(8)
	for i := int32(0); i < 4; i++ {
		for j := int32(0); j < 4; j++ {
			if i != j {
				b.AddEdge(i, j)
				b.AddEdge(i+4, j+4)
			}
		}
	}
	g := b.Build()
	e, err := NewEngine(g, BlockCentric, 2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.RunPPV(0, params())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 0 {
		t.Fatalf("disconnected blocks exchanged %d messages", stats.Messages)
	}
	want, err := ppr.PowerIteration(g, 0, params())
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.LInfDistance(stats.Result, want); d > 1e-6 {
		t.Fatalf("L∞ = %v", d)
	}
}

func TestRunPageRankMatchesPPR(t *testing.T) {
	g := community(t)
	want, err := ppr.PageRank(g, params())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{VertexCentric, BlockCentric} {
		e, err := NewEngine(g, mode, 3)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := e.RunPageRank(params())
		if err != nil {
			t.Fatal(err)
		}
		var maxDiff float64
		for v := 0; v < g.NumNodes(); v++ {
			d := want[v] - stats.Result.Get(int32(v))
			if d < 0 {
				d = -d
			}
			if d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-6 {
			t.Errorf("%v: PageRank L∞ = %v", mode, maxDiff)
		}
		if stats.Supersteps < 3 || stats.NetworkBytes <= 0 {
			t.Errorf("%v: suspicious stats %+v", mode, stats)
		}
	}
}

func TestRunPageRankBadParams(t *testing.T) {
	g := community(t)
	e, _ := NewEngine(g, VertexCentric, 2)
	if _, err := e.RunPageRank(ppr.Params{Alpha: 7, Eps: 1}); err == nil {
		t.Fatal("bad params should fail")
	}
}
