// Linkpred: link prediction by exact PPV — the evaluation protocol of
// Backstrom & Leskovec (paper's [4]): hide a random sample of edges,
// rank candidate endpoints for each tail by Personalized PageRank, and
// measure how often a hidden edge's head appears in the top-k. The same
// protocol with approximate PPVs degrades, which is why the paper's
// introduction lists link prediction among the applications that want
// exact vectors.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"exactppr"
)

func main() {
	full, err := exactppr.GenerateCommunityGraph(exactppr.GenConfig{
		Nodes:        800,
		AvgOutDegree: 8,
		Communities:  8,
		InterFrac:    0.06,
		DegreeSkew:   1.6,
		MinOutDegree: 3,
		Seed:         21,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Hide 5% of edges (only from nodes that keep ≥2 edges so the graph
	// stays walkable), rebuild the training graph.
	rng := rand.New(rand.NewSource(99))
	type edge struct{ u, v int32 }
	var hidden []edge
	b := exactppr.NewGraphBuilder(full.NumNodes())
	for u := int32(0); u < int32(full.NumNodes()); u++ {
		out := full.Out(u)
		removable := len(out) - 2
		for _, v := range out {
			if removable > 0 && rng.Float64() < 0.05 {
				hidden = append(hidden, edge{u, v})
				removable--
				continue
			}
			b.AddEdge(u, v)
		}
	}
	train := b.Build()
	fmt.Printf("training graph: %d nodes, %d edges (%d hidden)\n",
		train.NumNodes(), train.NumEdges(), len(hidden))

	store, err := exactppr.BuildHGPA(train, exactppr.HierarchyOptions{Seed: 21}, exactppr.DefaultParams(), 0)
	if err != nil {
		log.Fatal(err)
	}

	// For each hidden edge (u,v): does v rank in u's top-k PPV among
	// non-neighbors?
	const k = 20
	hits := 0
	evaluated := 0
	for _, e := range hidden {
		if evaluated == 150 {
			break // keep the demo fast
		}
		evaluated++
		ppv, err := store.Query(e.u)
		if err != nil {
			log.Fatal(err)
		}
		known := map[int32]bool{e.u: true}
		for _, w := range train.Out(e.u) {
			known[w] = true
		}
		rank := 0
		for _, cand := range ppv.TopK(len(ppv)) {
			if known[cand.ID] {
				continue
			}
			rank++
			if cand.ID == e.v {
				if rank <= k {
					hits++
				}
				break
			}
			if rank > k {
				break
			}
		}
	}
	fmt.Printf("hidden-edge recovery: %d/%d hidden edges ranked in the top-%d (hit rate %.0f%%)\n",
		hits, evaluated, k, 100*float64(hits)/float64(evaluated))

	// Baseline for contrast: random candidate ranking would hit with
	// probability ≈ k / (n − deg) ≈ 2.5%.
	expect := 100 * float64(k) / float64(train.NumNodes())
	fmt.Printf("random-guess baseline at the same k: ≈%.1f%%\n", expect)
}
