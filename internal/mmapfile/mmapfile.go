// Package mmapfile memory-maps read-only files. It exists for the
// disk-resident serving store: mapping the store file lets the OS page
// cache hold hot vectors and lets the query path alias vector payloads
// in place instead of ReadAt-ing them into heap buffers.
//
// On platforms without mmap support (or when a map fails at runtime —
// e.g. a filesystem that refuses MAP_SHARED) Map returns an error and
// callers fall back to plain file reads; nothing here is load-bearing
// for correctness, only for speed.
package mmapfile

import (
	"fmt"
	"os"
)

// Map maps the whole of f read-only. The returned bytes stay valid until
// Unmap; they must never be written.
func Map(f *os.File) ([]byte, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 {
		return nil, fmt.Errorf("mmapfile: cannot map %d-byte file", size)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapfile: file too large to map (%d bytes)", size)
	}
	return mapFile(f, int(size))
}

// Unmap releases a mapping returned by Map. Passing nil is a no-op.
func Unmap(b []byte) error {
	if b == nil {
		return nil
	}
	return unmapFile(b)
}
