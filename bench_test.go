package exactppr

// One testing.B benchmark per table/figure of the paper's evaluation.
// DESIGN.md §4 maps experiment ids to these targets; EXPERIMENTS.md
// records paper-vs-measured shapes. Fixtures are built once per process
// at reduced scale so the whole suite stays laptop-friendly; use
// cmd/pprexp for the full experiment tables.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"exactppr/internal/bsp"
	"exactppr/internal/cluster"
	"exactppr/internal/core"
	"exactppr/internal/fastppv"
	"exactppr/internal/gen"
	"exactppr/internal/graph"
	"exactppr/internal/hierarchy"
	"exactppr/internal/montecarlo"
	"exactppr/internal/ppr"
	"exactppr/internal/workload"
)

const benchScale = 0.25

var benchParams = ppr.Params{Alpha: 0.15, Eps: 1e-4}

type fixture struct {
	g     *graph.Graph
	store *core.Store
	gpa   *core.Store
}

var (
	fixOnce sync.Once
	fix     fixture
)

func benchFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		g, err := gen.Dataset("web", benchScale, 1)
		if err != nil {
			panic(err)
		}
		store, err := core.BuildHGPA(g, hierarchy.Options{Seed: 1}, benchParams, 0)
		if err != nil {
			panic(err)
		}
		gpa, err := core.BuildGPA(g, 6, benchParams, 0, 1)
		if err != nil {
			panic(err)
		}
		fix = fixture{g: g, store: store, gpa: gpa}
	})
	return &fix
}

func benchQueries(g *graph.Graph, n int) []int32 { return workload.Queries(g, n, 99) }

// BenchmarkHierarchyBuild regenerates Tables 2–5: hierarchical
// partitioning with per-level hub selection.
func BenchmarkHierarchyBuild(b *testing.B) {
	f := benchFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h, err := hierarchy.Build(f.g, hierarchy.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(h.TotalHubs()), "hubs")
	}
}

// BenchmarkGPAQuery and BenchmarkHGPAQuery are Figure 9's runtime bars.
func BenchmarkGPAQuery(b *testing.B) {
	f := benchFixture(b)
	qs := benchQueries(f.g, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.gpa.Query(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHGPAQuery(b *testing.B) {
	f := benchFixture(b)
	qs := benchQueries(f.g, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.store.Query(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuery is the headline single-node serving fold (HGPA
// Store.Query), tracked with allocations by the CI bench job; the
// packed/columnar variants measure what the serving layer actually
// ships (a sorted share for the wire, a top-k page for the gateway).
func BenchmarkQuery(b *testing.B) {
	f := benchFixture(b)
	qs := benchQueries(f.g, 16)
	b.Run("vector", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.store.Query(qs[i%len(qs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.store.QueryPacked(qs[i%len(qs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("topk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.store.QueryTopK(qs[i%len(qs)], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHGPAQueryMachines is Figure 10: distributed query runtime as
// the machine count grows (per-machine work shrinks).
func BenchmarkHGPAQueryMachines(b *testing.B) {
	f := benchFixture(b)
	for _, n := range []int{2, 6, 10} {
		b.Run(fmt.Sprintf("machines=%d", n), func(b *testing.B) {
			coord, err := cluster.NewLocalCluster(f.store, n)
			if err != nil {
				b.Fatal(err)
			}
			qs := benchQueries(f.g, 16)
			b.ResetTimer()
			var bytes int64
			for i := 0; i < b.N; i++ {
				stats, err := coord.QuerySequential(qs[i%len(qs)])
				if err != nil {
					b.Fatal(err)
				}
				bytes += stats.BytesReceived
			}
			// Figure 13's communication metric rides along.
			b.ReportMetric(float64(bytes)/float64(b.N)/1024, "KB/query")
		})
	}
}

// offlineFixture is the large-partition fixture for the offline-cost
// benchmarks (BenchmarkPrecompute, BenchmarkApplyUpdates): the paper's
// GPA deployment (§3, Figure 12) — m machine-sized partitions of a
// larger web graph, one hub set. This is the regime the kernel choice
// is about: every vector runs on an n/m-node subgraph, so
// graph-proportional bookkeeping (O(|V|) clears and drains, a mutex
// acquisition per reverse pop) dwarfs the few hundred residual pushes
// a vector actually needs. The deep edge-free hierarchy of the shared
// fixture hides that cost behind tiny leaf subgraphs; serving
// deployments partition by machine count, not to exhaustion. ε is
// relaxed to 1e-3 as the paper does on its larger graphs (§6; cf. the
// 1e-2 used for PLD_full in BenchmarkHGPAManyProcs).
type offlineFix struct {
	g *graph.Graph
	h *hierarchy.Hierarchy
}

var (
	offlineOnce   sync.Once
	offline       offlineFix
	offlineParams = ppr.Params{Alpha: 0.15, Eps: 1e-3}
)

const offlineFanout = 4

func offlineFixture(b *testing.B) *offlineFix {
	b.Helper()
	offlineOnce.Do(func() {
		g, err := gen.Dataset("web", 3, 1)
		if err != nil {
			panic(err)
		}
		h, err := hierarchy.Build(g, hierarchy.Options{Seed: 1, Fanout: offlineFanout, MaxLevels: 1})
		if err != nil {
			panic(err)
		}
		offline = offlineFix{g: g, h: h}
	})
	return &offline
}

// reportKernelMetrics attaches the kernel cost model to a bench:
// pushes/vector (residual pops actually performed — the
// work-proportional unit) and densefrac (the fraction of vectors
// drained by the dense sweep: 1 under KernelDense, the spill rate
// under KernelAuto).
func reportKernelMetrics(b *testing.B, pushes, vectors, fallbacks int64) {
	if vectors > 0 {
		b.ReportMetric(float64(pushes)/float64(vectors), "pushes/vector")
		b.ReportMetric(float64(fallbacks)/float64(vectors), "densefrac")
	}
}

// BenchmarkPrecompute is Figure 12's offline cost (per full build).
// deep tracks the shared fixture's edge-free hierarchy (the historical
// number); the gpa sub-benchmarks run the machine-sized-partition
// fixture for both kernels — the pair the kernel speedup is judged on.
func BenchmarkPrecompute(b *testing.B) {
	b.Run("deep", func(b *testing.B) {
		f := benchFixture(b)
		h, err := hierarchy.Build(f.g, hierarchy.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Precompute(h, benchParams, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, k := range []ppr.Kernel{ppr.KernelAuto, ppr.KernelDense} {
		b.Run("gpa/kernel="+k.String(), func(b *testing.B) {
			f := offlineFixture(b)
			p := offlineParams
			p.Kernel = k
			var pushes, vectors, fallbacks int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, info, err := core.PrecomputeWithInfo(f.h, p, 0)
				if err != nil {
					b.Fatal(err)
				}
				pushes += info.Pushes
				vectors += int64(info.Vectors)
				fallbacks += info.DenseFallbacks
			}
			reportKernelMetrics(b, pushes, vectors, fallbacks)
		})
	}
}

// BenchmarkHGPALevels is Figures 14–16: query cost across hierarchy
// depths (space/offline are printed as metrics).
func BenchmarkHGPALevels(b *testing.B) {
	f := benchFixture(b)
	for _, levels := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("levels=%d", levels), func(b *testing.B) {
			store, err := core.BuildHGPA(f.g, hierarchy.Options{MaxLevels: levels, Seed: 1}, benchParams, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(store.SpaceBytes())/(1<<20), "MB")
			qs := benchQueries(f.g, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Query(qs[i%len(qs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHGPAFanout is Figure 17: multi-way partitioning.
func BenchmarkHGPAFanout(b *testing.B) {
	f := benchFixture(b)
	for _, fanout := range []int{2, 8} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			store, err := core.BuildHGPA(f.g, hierarchy.Options{Fanout: fanout, Seed: 1}, benchParams, 0)
			if err != nil {
				b.Fatal(err)
			}
			qs := benchQueries(f.g, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Query(qs[i%len(qs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHGPATolerance is Figure 18: the ε sweep.
func BenchmarkHGPATolerance(b *testing.B) {
	f := benchFixture(b)
	for _, eps := range []float64{1e-3, 1e-5} {
		b.Run(fmt.Sprintf("eps=%.0e", eps), func(b *testing.B) {
			p := benchParams
			p.Eps = eps
			store, err := core.BuildHGPA(f.g, hierarchy.Options{Seed: 1}, p, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(store.SpaceBytes())/(1<<20), "MB")
			qs := benchQueries(f.g, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Query(qs[i%len(qs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHGPAScaleMeetup is Figure 20 (and Table 6's graphs): query
// runtime as the graph grows.
func BenchmarkHGPAScaleMeetup(b *testing.B) {
	for i, spec := range gen.MeetupSizes {
		if i%2 == 1 {
			continue // M1, M3, M5 keep the suite short
		}
		b.Run(spec.ID, func(b *testing.B) {
			g, err := gen.MeetupLike(i, 1)
			if err != nil {
				b.Fatal(err)
			}
			store, err := core.BuildHGPA(g, hierarchy.Options{Seed: 1}, benchParams, 0)
			if err != nil {
				b.Fatal(err)
			}
			qs := benchQueries(g, 8)
			b.ResetTimer()
			for j := 0; j < b.N; j++ {
				if _, err := store.Query(qs[j%len(qs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPregelPPV and BenchmarkBlogelPPV are Figures 21–22 and 27:
// the BSP baselines (network bytes reported as a metric).
func benchBSP(b *testing.B, mode bsp.Mode) {
	f := benchFixture(b)
	e, err := bsp.NewEngine(f.g, mode, 6)
	if err != nil {
		b.Fatal(err)
	}
	qs := benchQueries(f.g, 8)
	b.ResetTimer()
	var bytes int64
	var steps int
	for i := 0; i < b.N; i++ {
		stats, err := e.RunPPV(qs[i%len(qs)], benchParams)
		if err != nil {
			b.Fatal(err)
		}
		bytes += stats.NetworkBytes
		steps += stats.Supersteps
	}
	b.ReportMetric(float64(bytes)/float64(b.N)/1024, "KB/query")
	b.ReportMetric(float64(steps)/float64(b.N), "supersteps")
}

func BenchmarkPregelPPV(b *testing.B) { benchBSP(b, bsp.VertexCentric) }
func BenchmarkBlogelPPV(b *testing.B) { benchBSP(b, bsp.BlockCentric) }

// BenchmarkPowerIteration and BenchmarkHGPACentral are Figure 23: the
// centralized comparison.
func BenchmarkPowerIteration(b *testing.B) {
	f := benchFixture(b)
	qs := benchQueries(f.g, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ppr.PowerIteration(f.g, qs[i%len(qs)], benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHGPACentral(b *testing.B) {
	f := benchFixture(b)
	qs := benchQueries(f.g, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.store.Query(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastPPV is Figures 24–26's comparator, and BenchmarkHGPAad the
// adapted method.
func BenchmarkFastPPV(b *testing.B) {
	f := benchFixture(b)
	ix, err := fastppv.BuildIndex(f.g, max(f.g.NumNodes()/200, 4), benchParams, 0)
	if err != nil {
		b.Fatal(err)
	}
	qs := benchQueries(f.g, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query(qs[i%len(qs)], 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHGPAad(b *testing.B) {
	f := benchFixture(b)
	ad := f.store.Clone()
	ad.Truncate(1e-4)
	qs := benchQueries(f.g, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ad.Query(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHGPAManyProcs is Figure 28: the large-graph analogue over a
// large processor count.
func BenchmarkHGPAManyProcs(b *testing.B) {
	g, err := gen.Dataset("pld_full", 0.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	p := benchParams
	p.Eps = 1e-2 // the paper relaxes ε on PLD_full
	store, err := core.BuildHGPA(g, hierarchy.Options{Seed: 1}, p, 0)
	if err != nil {
		b.Fatal(err)
	}
	coord, err := cluster.NewLocalCluster(store, 64)
	if err != nil {
		b.Fatal(err)
	}
	qs := benchQueries(g, 8)
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		stats, err := coord.QuerySequential(qs[i%len(qs)])
		if err != nil {
			b.Fatal(err)
		}
		bytes += stats.BytesReceived
	}
	b.ReportMetric(float64(bytes)/float64(b.N)/1024, "KB/query")
}

// BenchmarkSkeletonAblation contrasts §5.2's memory-bounded reverse
// iteration (local push) with the literal dense Jacobi version — the
// design choice DESIGN.md calls out.
func BenchmarkSkeletonAblation(b *testing.B) {
	f := benchFixture(b)
	h := int32(7)
	b.Run("reverse-push", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ppr.SkeletonForHub(f.g, h, benchParams); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense-jacobi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ppr.SkeletonForHubDense(f.g, h, benchParams); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchStorePath saves the shared fixture's store once per process for
// the disk-serving benchmarks; TestMain removes the directory (a plain
// b.TempDir would be torn down after the first sub-benchmark).
var (
	benchStoreOnce sync.Once
	benchStoreDir  string
	benchStoreFile string
)

func TestMain(m *testing.M) {
	code := m.Run()
	if benchStoreDir != "" {
		os.RemoveAll(benchStoreDir)
	}
	os.Exit(code)
}

func benchStorePath(b *testing.B) string {
	b.Helper()
	f := benchFixture(b)
	benchStoreOnce.Do(func() {
		dir, err := os.MkdirTemp("", "exactppr-bench")
		if err != nil {
			panic(err)
		}
		benchStoreDir = dir
		benchStoreFile = dir + "/bench.store"
		if err := core.SaveFile(benchStoreFile, f.store); err != nil {
			panic(err)
		}
	})
	return benchStoreFile
}

var diskBenchModes = []struct {
	name string
	opts core.DiskOptions
}{
	{"mmap", core.DiskOptions{}},
	{"fallback", core.DiskOptions{DisableMmap: true}},
}

// BenchmarkDiskStoreQuery measures the disk-resident query path (§5.2's
// "vectors larger than main memory" deployment) against the in-memory
// BenchmarkHGPACentral: cold-cache (64-vector cap, the historical
// configuration — every query pays real fetches) and hot-cache (default
// cap, warmed — the steady serving state), over both the zero-copy mmap
// path and the ReadAt fallback.
func BenchmarkDiskStoreQuery(b *testing.B) {
	f := benchFixture(b)
	path := benchStorePath(b)
	qs := benchQueries(f.g, 16)
	for _, mode := range diskBenchModes {
		for _, temp := range []string{"cold", "hot"} {
			b.Run(temp+"/"+mode.name, func(b *testing.B) {
				ds, err := core.OpenDiskStoreWith(path, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				defer ds.Close()
				if temp == "cold" {
					ds.SetCacheCap(64) // force real disk traffic
				}
				for _, u := range qs {
					if _, err := ds.Query(u); err != nil { // warm (evicted again when cold)
						b.Fatal(err)
					}
				}
				base := ds.Stats()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ds.Query(qs[i%len(qs)]); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := ds.Stats()
				b.ReportMetric(float64(st.Reads-base.Reads)/float64(b.N), "reads/query")
			})
		}
	}
}

// BenchmarkDiskServeConcurrent is the disk store under parallel serving
// traffic. The mixed variant spreads queries over the node set with a
// cold cache; the hotkey variant hammers one node so the reported
// reads/query shows the coalescing fix (reads ≪ in-flight queries).
func BenchmarkDiskServeConcurrent(b *testing.B) {
	f := benchFixture(b)
	path := benchStorePath(b)
	qs := benchQueries(f.g, 16)
	for _, mode := range diskBenchModes {
		for _, load := range []string{"mixed-cold", "hotkey"} {
			b.Run(load+"/"+mode.name, func(b *testing.B) {
				ds, err := core.OpenDiskStoreWith(path, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				defer ds.Close()
				if load == "mixed-cold" {
					ds.SetCacheCap(64)
				}
				// hotkey keeps the default cache: the storm of parallel
				// queries misses together once at the start, coalesces to
				// one read per distinct vector, and reads/query ≪ 1 —
				// the deterministic assertion lives in
				// TestDiskStoreMissStormCoalesces.
				base := ds.Stats()
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						u := qs[0]
						if load == "mixed-cold" {
							u = qs[i%len(qs)]
							i++
						}
						if _, err := ds.QueryPacked(u); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.StopTimer()
				st := ds.Stats()
				n := float64(b.N)
				b.ReportMetric(float64(st.Reads-base.Reads)/n, "reads/query")
				b.ReportMetric(float64(st.CoalescedReads-base.CoalescedReads)/n, "coalesced/query")
			})
		}
	}
}

// BenchmarkMonteCarlo measures the random-walk estimator [5] at a walk
// budget whose accuracy is comparable to ε=1e-2 — the approximate
// distributed alternative HGPA is exact against.
func BenchmarkMonteCarlo(b *testing.B) {
	f := benchFixture(b)
	e, err := montecarlo.NewEngine(f.g)
	if err != nil {
		b.Fatal(err)
	}
	qs := benchQueries(f.g, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Estimate(qs[i%len(qs)], 10000, benchParams, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuerySet measures preference-set queries (PPV linearity).
// BenchmarkApplyUpdates measures incremental update throughput: each
// iteration applies one edge-insert batch and then the reverting delete
// batch, so the store ends each iteration where it started (after a
// one-time warm-up that settles any hub promotions). Dedicated fixtures
// keep the mutation away from the shared read-only one: deep is the
// historical edge-free hierarchy, the gpa sub-benchmarks re-run the
// machine-sized-partition deployment (see offlineFixture) for both
// kernels — a dirty partition there is an n/m-node subgraph, the
// workload the push kernels exist for. The custom metric reports how
// many store vectors one batch recomputes — the quantity a full
// rebuild would multiply to the whole store.
func BenchmarkApplyUpdates(b *testing.B) {
	b.Run("deep", func(b *testing.B) {
		g, err := gen.Dataset("web", benchScale, 5)
		if err != nil {
			b.Fatal(err)
		}
		store, err := core.BuildHGPA(g, hierarchy.Options{Seed: 1}, benchParams, 0)
		if err != nil {
			b.Fatal(err)
		}
		benchApplyUpdates(b, g, store)
	})
	for _, k := range []ppr.Kernel{ppr.KernelAuto, ppr.KernelDense} {
		b.Run("gpa/kernel="+k.String(), func(b *testing.B) {
			// A fresh graph per kernel: the updates mutate it in place.
			g, err := gen.Dataset("web", 2, 5)
			if err != nil {
				b.Fatal(err)
			}
			p := offlineParams
			p.Kernel = k
			store, err := core.BuildHGPA(g, hierarchy.Options{Seed: 1, Fanout: offlineFanout, MaxLevels: 1}, p, 0)
			if err != nil {
				b.Fatal(err)
			}
			benchApplyUpdates(b, g, store)
		})
	}
}

func benchApplyUpdates(b *testing.B, g *graph.Graph, store *core.Store) {
	live := core.NewLiveStore(store)
	// A fixed batch of edges absent from the generated graph.
	var ins [][2]int32
	n := int32(g.NumNodes())
	for u := int32(0); len(ins) < 8 && u < n; u += 13 {
		v := (u + n/2) % n
		if u != v && !g.HasEdge(u, v) {
			ins = append(ins, [2]int32{u, v})
		}
	}
	warm := func() (recomputed int, pushes, fallbacks int64, err error) {
		a, err := live.ApplyUpdates(graph.Delta{Insert: ins}, 0)
		if err != nil {
			return 0, 0, 0, err
		}
		d, err := live.ApplyUpdates(graph.Delta{Delete: ins}, 0)
		if err != nil {
			return 0, 0, 0, err
		}
		return a.Recomputed + d.Recomputed, a.Pushes + d.Pushes, a.DenseFallbacks + d.DenseFallbacks, nil
	}
	if _, _, _, err := warm(); err != nil { // settle promotions before timing
		b.Fatal(err)
	}
	b.ResetTimer()
	var recomputed, pushes, fallbacks int64
	for i := 0; i < b.N; i++ {
		r, p, f, err := warm()
		if err != nil {
			b.Fatal(err)
		}
		recomputed += int64(r)
		pushes += p
		fallbacks += f
	}
	b.ReportMetric(float64(recomputed)/float64(2*b.N), "vectors/batch")
	b.ReportMetric(float64(live.Store().Stats().Hubs*2+live.Store().Stats().Leaves), "vectors/store")
	reportKernelMetrics(b, pushes, recomputed, fallbacks)
}

func BenchmarkQuerySet(b *testing.B) {
	f := benchFixture(b)
	pref := core.Preference{Nodes: benchQueries(f.g, 3)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.store.QuerySet(pref); err != nil {
			b.Fatal(err)
		}
	}
}
