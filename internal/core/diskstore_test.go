package core

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"exactppr/internal/hierarchy"
	"exactppr/internal/sparse"
)

func diskStoreFixture(t *testing.T) (*Store, *DiskStore) {
	t.Helper()
	g := testGraph(t, 60)
	s, err := BuildHGPA(g, hierarchy.Options{Seed: 60}, tightParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.store")
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return s, ds
}

func TestDiskStoreMatchesMemory(t *testing.T) {
	s, ds := diskStoreFixture(t)
	queries := sampleQueries(s)
	for _, u := range queries {
		want, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ds.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(got, want); d != 0 {
			t.Fatalf("u=%d: disk store differs by %v", u, d)
		}
	}
}

func TestDiskStoreTinyCache(t *testing.T) {
	s, ds := diskStoreFixture(t)
	ds.SetCacheCap(2) // force constant eviction
	for _, u := range []int32{0, 50, 100, 150, 0, 50} {
		want, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ds.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(got, want); d != 0 {
			t.Fatalf("u=%d with tiny cache: %v", u, d)
		}
	}
	ds.SetCacheCap(0) // clamps to 1
}

func TestDiskStoreConcurrent(t *testing.T) {
	s, ds := diskStoreFixture(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(u int32) {
			defer wg.Done()
			got, err := ds.Query(u)
			if err != nil {
				errs <- err
				return
			}
			want, err := s.Query(u)
			if err != nil {
				errs <- err
				return
			}
			if sparse.LInfDistance(got, want) != 0 {
				errs <- &mismatchError{u}
			}
		}(int32(i * 20))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct{ u int32 }

func (e *mismatchError) Error() string { return "concurrent disk query mismatch" }

func TestDiskStoreErrors(t *testing.T) {
	_, ds := diskStoreFixture(t)
	if _, err := ds.Query(-1); err == nil {
		t.Fatal("bad query should fail")
	}
	if _, err := OpenDiskStore(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestDiskStoreRejectsGarbageFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.store")
	if err := writeFileHelper(path, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskStore(path); err == nil {
		t.Fatal("garbage file should fail")
	}
}

func writeFileHelper(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// TestDiskStoreCloseTyped: queries after Close fail with ErrStoreClosed
// (not a raw *os.File error), and Close is idempotent.
func TestDiskStoreCloseTyped(t *testing.T) {
	_, ds := diskStoreFixture(t)
	ds.SetCacheCap(1) // make sure queries must hit the file
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	_, err := ds.Query(0)
	if !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("post-close Query error = %v, want ErrStoreClosed", err)
	}
}

// TestDiskStoreMmapOffFallback: with mapping disabled the store serves
// through the legacy ReadAt path — Stats reports it, and answers stay
// bit-identical to the in-memory store.
func TestDiskStoreMmapOffFallback(t *testing.T) {
	g := testGraph(t, 61)
	s, err := BuildHGPA(g, hierarchy.Options{Seed: 62}, tightParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.store")
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDiskStoreWith(path, DiskOptions{DisableMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.Stats().Mmap {
		t.Fatal("DisableMmap did not disable the mapping")
	}
	for _, u := range sampleQueries(s) {
		want, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ds.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(got, want); d != 0 {
			t.Fatalf("u=%d on fallback path: %v", u, d)
		}
	}
	if st := ds.Stats(); st.Reads == 0 {
		t.Fatal("fallback path recorded no reads")
	}
}

// TestDiskStoreRejectsTruncatedFile: opening a torn store file — cut
// anywhere, including inside the trailing plan section — fails cleanly
// instead of indexing spans past EOF.
func TestDiskStoreRejectsTruncatedFile(t *testing.T) {
	s, _ := diskStoreFixture(t)
	dir := t.TempDir()
	full := filepath.Join(dir, "full.store")
	if err := SaveFile(full, s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.2, 0.5, 0.9, 0.999} {
		cut := int(float64(len(data)) * frac)
		torn := filepath.Join(dir, "torn.store")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if ds, err := OpenDiskStore(torn); err == nil {
			ds.Close()
			t.Fatalf("opened a file truncated to %d/%d bytes", cut, len(data))
		}
	}
}

// TestDiskStoreCloseWaitsForFold: Close must block until an in-flight
// query — whose accumulator fold reads vector views aliasing the memory
// map — has drained; the query completes with a correct answer, never a
// fault or a torn read.
func TestDiskStoreCloseWaitsForFold(t *testing.T) {
	s, ds := diskStoreFixture(t)
	queries := sampleQueries(s)
	type res struct {
		u   int32
		got sparse.Vector
		err error
	}
	results := make(chan res, len(queries)*4)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < 4; r++ {
		for _, u := range queries {
			wg.Add(1)
			go func(u int32) {
				defer wg.Done()
				<-start
				got, err := ds.Query(u)
				results <- res{u, got, err}
			}(u)
		}
	}
	close(start)
	ds.Close() // races the queries; must wait for the in-flight folds
	wg.Wait()
	close(results)
	for r := range results {
		if r.err != nil {
			if errors.Is(r.err, ErrStoreClosed) {
				continue // arrived after Close won the lock — fine
			}
			t.Fatalf("u=%d: %v", r.u, r.err)
		}
		want, err := s.Query(r.u)
		if err != nil {
			t.Fatal(err)
		}
		if sparse.LInfDistance(r.got, want) != 0 {
			t.Fatalf("u=%d: fold overlapping Close returned a torn result", r.u)
		}
	}
}

// TestDiskStoreMissStormCoalesces: a burst of concurrent queries for the
// same node on a cold cache issues exactly as many reads as one query
// would — the singleflight guarantee, observed end to end.
func TestDiskStoreMissStormCoalesces(t *testing.T) {
	s, ds := diskStoreFixture(t)
	u := sampleQueries(s)[0]

	// Reference: the read count of a single cold query on a fresh store.
	path := filepath.Join(t.TempDir(), "ref.store")
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	ref, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Query(u); err != nil {
		t.Fatal(err)
	}
	coldReads := ref.Stats().Reads

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := ds.Query(u); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	st := ds.Stats()
	if st.Reads != coldReads {
		t.Fatalf("32-query miss storm did %d reads, want %d (one per distinct vector)", st.Reads, coldReads)
	}
}

// TestDiskStoreCloseRace: Close landing in the middle of a storm of
// concurrent queries must never surface an os-level "file already
// closed" error (or, in mmap mode, a fault on an unmapped view) —
// in-flight reads drain, later ones get ErrStoreClosed.
// Run under -race in CI.
func TestDiskStoreCloseRace(t *testing.T) {
	s, ds := diskStoreFixture(t)
	ds.SetCacheCap(1) // force every fetch through ReadAt
	n := int32(s.H.G.NumNodes())
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int32) {
			defer wg.Done()
			<-start
			for i := int32(0); i < 200; i++ {
				_, err := ds.Query((seed*31 + i) % n)
				if err != nil && !errors.Is(err, ErrStoreClosed) {
					errCh <- err
					return
				}
			}
		}(int32(w))
	}
	close(start)
	ds.Close()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("query during Close: %v", err)
	default:
	}
}
