package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestSetGetAdd(t *testing.T) {
	v := New(4)
	v.Set(3, 0.5)
	if got := v.Get(3); got != 0.5 {
		t.Fatalf("Get(3) = %v, want 0.5", got)
	}
	if got := v.Get(7); got != 0 {
		t.Fatalf("Get(7) = %v, want 0", got)
	}
	v.Add(3, 0.25)
	if got := v.Get(3); got != 0.75 {
		t.Fatalf("after Add, Get(3) = %v, want 0.75", got)
	}
	v.Add(3, -0.75)
	if _, ok := v[3]; ok {
		t.Fatal("Add to exactly zero should delete the entry")
	}
	v.Set(5, 0)
	if _, ok := v[5]; ok {
		t.Fatal("Set(id, 0) should not create an entry")
	}
}

func TestAddZeroNoop(t *testing.T) {
	v := New(0)
	v.Add(1, 0)
	if v.Len() != 0 {
		t.Fatalf("Add(id, 0) created an entry: %v", v)
	}
}

func TestAddScaled(t *testing.T) {
	v := Vector{1: 1, 2: 2}
	o := Vector{2: 1, 3: 3}
	v.AddScaled(o, 2)
	want := Vector{1: 1, 2: 4, 3: 6}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("AddScaled = %v, want %v", v, want)
	}
	v.AddScaled(o, 0) // no-op
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("AddScaled by 0 changed vector: %v", v)
	}
}

func TestScale(t *testing.T) {
	v := Vector{1: 2, 2: -4}
	v.Scale(0.5)
	if !almostEqual(v[1], 1) || !almostEqual(v[2], -2) {
		t.Fatalf("Scale(0.5) = %v", v)
	}
	v.Scale(0)
	if v.Len() != 0 {
		t.Fatalf("Scale(0) should clear, got %v", v)
	}
}

func TestNorms(t *testing.T) {
	v := Vector{1: 3, 2: -4}
	if got := v.L1(); !almostEqual(got, 7) {
		t.Fatalf("L1 = %v, want 7", got)
	}
	if got := v.LInf(); !almostEqual(got, 4) {
		t.Fatalf("LInf = %v, want 4", got)
	}
	if got := v.Sum(); !almostEqual(got, -1) {
		t.Fatalf("Sum = %v, want -1", got)
	}
}

func TestDot(t *testing.T) {
	a := Vector{1: 2, 2: 3, 5: 1}
	b := Vector{2: 4, 5: -1}
	if got := a.Dot(b); !almostEqual(got, 11) {
		t.Fatalf("Dot = %v, want 11", got)
	}
	if got := b.Dot(a); !almostEqual(got, 11) {
		t.Fatalf("Dot not symmetric: %v", got)
	}
	if got := a.Dot(nil); got != 0 {
		t.Fatalf("Dot with nil = %v, want 0", got)
	}
}

func TestDenseRoundTrip(t *testing.T) {
	d := []float64{0, 0.5, 0, 0.25, 0}
	v := FromDense(d, 0)
	if v.Len() != 2 {
		t.Fatalf("FromDense kept %d entries, want 2", v.Len())
	}
	back := v.Dense(len(d))
	if !reflect.DeepEqual(back, d) {
		t.Fatalf("Dense round trip = %v, want %v", back, d)
	}
}

func TestFromDenseEps(t *testing.T) {
	d := []float64{1e-9, 0.5}
	v := FromDense(d, 1e-6)
	if v.Len() != 1 || !almostEqual(v[1], 0.5) {
		t.Fatalf("FromDense with eps = %v", v)
	}
}

func TestTruncate(t *testing.T) {
	v := Vector{1: 1e-9, 2: 0.5, 3: -1e-9}
	if removed := v.Truncate(1e-6); removed != 2 {
		t.Fatalf("Truncate removed %d, want 2", removed)
	}
	if v.Len() != 1 {
		t.Fatalf("after Truncate: %v", v)
	}
}

func TestDistances(t *testing.T) {
	a := Vector{1: 1, 2: 2}
	b := Vector{2: 1.5, 3: 1}
	if got := L1Distance(a, b); !almostEqual(got, 2.5) {
		t.Fatalf("L1Distance = %v, want 2.5", got)
	}
	if got := LInfDistance(a, b); !almostEqual(got, 1) {
		t.Fatalf("LInfDistance = %v, want 1", got)
	}
	if got := L1Distance(a, a); got != 0 {
		t.Fatalf("L1Distance(a,a) = %v", got)
	}
}

func TestDiff(t *testing.T) {
	a := Vector{1: 1, 2: 2}
	b := Vector{2: 2, 3: 1}
	d := Diff(a, b)
	want := Vector{1: 1, 3: -1}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("Diff = %v, want %v", d, want)
	}
}

func TestTopK(t *testing.T) {
	v := Vector{1: 0.1, 2: 0.5, 3: 0.3, 4: 0.5}
	top := v.TopK(2)
	if len(top) != 2 || top[0].ID != 2 || top[1].ID != 4 {
		t.Fatalf("TopK = %v (ties must break by smaller id)", top)
	}
	all := v.TopK(10)
	if len(all) != 4 {
		t.Fatalf("TopK(10) returned %d entries", len(all))
	}
}

func TestEntriesSorted(t *testing.T) {
	v := Vector{5: 1, 1: 2, 3: 3}
	es := v.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].ID >= es[i].ID {
			t.Fatalf("Entries not sorted: %v", es)
		}
	}
}

func TestClone(t *testing.T) {
	v := Vector{1: 1}
	c := v.Clone()
	c.Set(1, 2)
	if v[1] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		v := New(0)
		for i := 0; i < rng.Intn(40); i++ {
			v.Set(int32(rng.Intn(1000)), rng.NormFloat64())
		}
		buf := Encode(v)
		if len(buf) != EncodedSize(v) {
			t.Fatalf("EncodedSize mismatch: %d vs %d", len(buf), EncodedSize(v))
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("round trip: got %v, want %v", got, v)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) should fail")
	}
	if _, err := Decode([]byte{1, 0, 0, 0, 9}); err == nil {
		t.Fatal("Decode with truncated payload should fail")
	}
}

// Property: AddScaled then subtracting the same amount is the identity.
func TestQuickAddScaledInverse(t *testing.T) {
	f := func(ids []uint16, vals []float64, c float64) bool {
		if math.IsNaN(c) || math.Abs(c) > 1e6 {
			return true // avoid float overflow; magnitudes are irrelevant here
		}
		v, o := New(0), New(0)
		for i := range ids {
			if i >= len(vals) {
				break
			}
			x := vals[i]
			if math.IsNaN(x) || math.Abs(x) > 1e6 {
				continue
			}
			o.Set(int32(ids[i]), x)
		}
		orig := v.Clone()
		v.AddScaled(o, c)
		v.AddScaled(o, -c)
		// Entries may survive as tiny residue from float cancellation; bound it.
		return L1Distance(v, orig) < 1e-9*(1+math.Abs(c))*(1+o.L1())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: codec round-trips arbitrary vectors.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(ids []uint16, vals []float64) bool {
		v := New(0)
		for i := range ids {
			if i >= len(vals) {
				break
			}
			if math.IsNaN(vals[i]) {
				continue
			}
			v.Set(int32(ids[i]), vals[i])
		}
		got, err := Decode(Encode(v))
		return err == nil && reflect.DeepEqual(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: L1Distance is a metric on the sampled vectors (symmetry +
// identity + triangle inequality).
func TestQuickL1Metric(t *testing.T) {
	gen := func(rng *rand.Rand) Vector {
		v := New(0)
		for i := 0; i < rng.Intn(12); i++ {
			v.Set(int32(rng.Intn(64)), float64(rng.Intn(21)-10)/4)
		}
		return v
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		a, b, c := gen(rng), gen(rng), gen(rng)
		if d1, d2 := L1Distance(a, b), L1Distance(b, a); !almostEqual(d1, d2) {
			t.Fatalf("not symmetric: %v vs %v", d1, d2)
		}
		if L1Distance(a, a) != 0 {
			t.Fatal("d(a,a) != 0")
		}
		if L1Distance(a, c) > L1Distance(a, b)+L1Distance(b, c)+1e-12 {
			t.Fatal("triangle inequality violated")
		}
	}
}
