package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
)

// The wire format for a vector is:
//
//	uint32 count
//	count × (int32 id, float64 score)  little-endian
//
// 4 + 12·len(v) bytes total. This is the unit in which the cluster layer
// accounts communication cost, mirroring the paper's KB-on-the-wire
// metric.
//
// Encoding is CANONICAL: entries are always written in ascending id
// order, so equal vectors produce byte-identical payloads regardless of
// representation (map or packed) and across repeated encodes. The
// decoder accepts any entry order for compatibility with payloads
// written before canonicalization.

// EncodedSize returns the number of bytes Encode will produce for v.
// Explicit zeros (possible in a hand-built map, never from Set/Add) are
// not encoded.
func EncodedSize(v Vector) int {
	n := 0
	for _, x := range v {
		if x != 0 {
			n++
		}
	}
	return 4 + 12*n
}

// Encode serializes v into a fresh byte slice in canonical (sorted by
// id, zeros dropped) order.
func Encode(v Vector) []byte {
	ids := make([]int32, 0, len(v))
	for i, x := range v {
		if x != 0 {
			ids = append(ids, i)
		}
	}
	slices.Sort(ids)
	buf := make([]byte, 4+12*len(ids))
	binary.LittleEndian.PutUint32(buf, uint32(len(ids)))
	off := 4
	for _, i := range ids {
		binary.LittleEndian.PutUint32(buf[off:], uint32(i))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(v[i]))
		off += 12
	}
	return buf
}

// Decode parses a vector previously produced by Encode or EncodePacked.
func Decode(buf []byte) (Vector, error) {
	n, err := decodeCount(buf)
	if err != nil {
		return nil, err
	}
	v := make(Vector, n)
	off := 4
	for k := 0; k < n; k++ {
		id := int32(binary.LittleEndian.Uint32(buf[off:]))
		x := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
		if x != 0 {
			v[id] = x
		}
		off += 12
	}
	return v, nil
}

// EncodedSizePacked returns the number of bytes EncodePacked produces.
func EncodedSizePacked(p Packed) int { return 4 + 12*p.Len() }

// EncodePacked serializes a packed vector. The arrays are already in
// canonical order, so this is a single sequential copy — no sorting, no
// map iteration. Byte-compatible with Encode: Encode(v) and
// EncodePacked(Pack(v)) produce identical payloads.
func EncodePacked(p Packed) []byte {
	buf := make([]byte, EncodedSizePacked(p))
	binary.LittleEndian.PutUint32(buf, uint32(p.Len()))
	off := 4
	for k, id := range p.ids {
		binary.LittleEndian.PutUint32(buf[off:], uint32(id))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(p.scores[k]))
		off += 12
	}
	return buf
}

// DecodePacked parses a payload straight into columnar form. Canonical
// payloads decode with one sequential pass; legacy payloads with
// unsorted entries (pre-canonical encoders) are detected and sorted.
// Zero scores are dropped and duplicate ids rejected, so the result is
// always a valid Packed.
func DecodePacked(buf []byte) (Packed, error) {
	n, err := decodeCount(buf)
	if err != nil {
		return Packed{}, err
	}
	ids := make([]int32, 0, n)
	scores := make([]float64, 0, n)
	sorted := true
	off := 4
	for k := 0; k < n; k++ {
		id := int32(binary.LittleEndian.Uint32(buf[off:]))
		x := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
		off += 12
		if x == 0 {
			continue
		}
		if len(ids) > 0 && id <= ids[len(ids)-1] {
			sorted = false
		}
		ids = append(ids, id)
		scores = append(scores, x)
	}
	if sorted {
		return Packed{ids, scores}, nil
	}
	es := make([]Entry, len(ids))
	for k := range ids {
		es[k] = Entry{ids[k], scores[k]}
	}
	p, err := PackEntries(es)
	if err != nil {
		return Packed{}, fmt.Errorf("sparse: decode: %w", err)
	}
	return p, nil
}

func decodeCount(buf []byte) (int, error) {
	if len(buf) < 4 {
		return 0, fmt.Errorf("sparse: short buffer: %d bytes", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) != 4+12*n {
		return 0, fmt.Errorf("sparse: buffer length %d does not match count %d", len(buf), n)
	}
	return n, nil
}
