package ppr

import (
	"math"
	"math/rand"
	"testing"

	"exactppr/internal/gen"
	"exactppr/internal/graph"
	"exactppr/internal/sparse"
)

func tiny(alpha float64) Params { return Params{Alpha: alpha, Eps: 1e-9} }

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Alpha: 0, Eps: 1e-4},
		{Alpha: 1, Eps: 1e-4},
		{Alpha: -0.1, Eps: 1e-4},
		{Alpha: 0.15, Eps: 0},
		{Alpha: 0.15, Eps: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: Validate(%+v) should fail", i, p)
		}
	}
	if err := Defaults().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerIterationTwoCycle(t *testing.T) {
	// 0 ↔ 1. Closed form: r0 = α/(1−(1−α)²), r1 = (1−α)·r0.
	g := graph.FromAdjacency([][]int32{{1}, {0}})
	a := 0.15
	r, err := PowerIteration(g, 0, tiny(a))
	if err != nil {
		t.Fatal(err)
	}
	want0 := a / (1 - (1-a)*(1-a))
	want1 := (1 - a) * want0
	if math.Abs(r.Get(0)-want0) > 1e-6 || math.Abs(r.Get(1)-want1) > 1e-6 {
		t.Fatalf("r = %v, want (%.6f, %.6f)", r, want0, want1)
	}
	if math.Abs(r.Sum()-1) > 1e-6 {
		t.Fatalf("cycle graph PPV must sum to 1, got %v", r.Sum())
	}
}

func TestPowerIterationDanglingAbsorb(t *testing.T) {
	// 0 → 1 with 1 dangling: r0 = α, r1 = α(1−α); mass leaks.
	g := graph.FromAdjacency([][]int32{{1}, {}})
	a := 0.2
	r, err := PowerIteration(g, 0, tiny(a))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Get(0)-a) > 1e-6 || math.Abs(r.Get(1)-a*(1-a)) > 1e-6 {
		t.Fatalf("r = %v, want (%v, %v)", r, a, a*(1-a))
	}
}

func TestPowerIterationDanglingRestart(t *testing.T) {
	// With restart, 0→1 behaves exactly like the 2-cycle.
	g := graph.FromAdjacency([][]int32{{1}, {}})
	a := 0.15
	p := tiny(a)
	p.Dangling = DanglingRestart
	r, err := PowerIteration(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	want0 := a / (1 - (1-a)*(1-a))
	if math.Abs(r.Get(0)-want0) > 1e-6 {
		t.Fatalf("r0 = %v, want %v", r.Get(0), want0)
	}
	if math.Abs(r.Sum()-1) > 1e-6 {
		t.Fatalf("restart policy must conserve mass, sum = %v", r.Sum())
	}
}

func TestPowerIterationErrors(t *testing.T) {
	g := graph.FromAdjacency([][]int32{{1}, {0}})
	if _, err := PowerIteration(g, 5, Defaults()); err == nil {
		t.Fatal("out-of-range query should fail")
	}
	if _, err := PowerIterationSet(g, nil, Defaults()); err == nil {
		t.Fatal("empty preference set should fail")
	}
	if _, err := PowerIteration(g, 0, Params{Alpha: 2, Eps: 1e-4}); err == nil {
		t.Fatal("bad params should fail")
	}
	vs := graph.VirtualSubgraph(g, []int32{0})
	if _, err := PowerIteration(vs.G, vs.G.VirtualSink(), Defaults()); err == nil {
		t.Fatal("querying the virtual sink should fail")
	}
}

func TestPowerIterationLinearity(t *testing.T) {
	// r_{P} for uniform P equals the average of the individual PPVs —
	// the linearity property of [25] that justifies single-node focus.
	g := gen.ErdosRenyi(80, 3, 4)
	p := tiny(0.15)
	pref := []int32{3, 17, 42}
	rset, err := PowerIterationSet(g, pref, p)
	if err != nil {
		t.Fatal(err)
	}
	avg := sparse.New(0)
	for _, q := range pref {
		r, err := PowerIteration(g, q, p)
		if err != nil {
			t.Fatal(err)
		}
		avg.AddScaled(r, 1.0/float64(len(pref)))
	}
	if d := sparse.LInfDistance(rset, avg); d > 1e-6 {
		t.Fatalf("linearity violated: L∞ = %v", d)
	}
}

func TestPPVBasicProperties(t *testing.T) {
	g := gen.ErdosRenyi(200, 4, 8)
	p := Params{Alpha: 0.15, Eps: 1e-8}
	for _, q := range []int32{0, 50, 199} {
		r, err := PowerIteration(g, q, p)
		if err != nil {
			t.Fatal(err)
		}
		for id, x := range r {
			if x < -1e-12 {
				t.Fatalf("negative PPV entry r[%d] = %v", id, x)
			}
		}
		if s := r.Sum(); s > 1+1e-6 {
			t.Fatalf("PPV sum %v > 1", s)
		}
		if r.Get(q) < p.Alpha-1e-6 {
			t.Fatalf("r[q] = %v < α", r.Get(q))
		}
	}
}

func TestPartialVectorNoHubsEqualsPPV(t *testing.T) {
	// With an empty hub set the partial vector IS the PPV (this is what
	// HGPA stores for leaf subgraphs).
	g := gen.ErdosRenyi(120, 3, 2)
	p := Params{Alpha: 0.15, Eps: 1e-9}
	for _, u := range []int32{0, 60} {
		partial, hubRes, err := PartialVector(g, u, nil, p)
		if err != nil {
			t.Fatal(err)
		}
		if hubRes.Len() != 0 {
			t.Fatalf("hub residual %v with no hubs", hubRes)
		}
		r, err := PowerIteration(g, u, p)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(partial, r); d > 1e-5 {
			t.Fatalf("u=%d: partial (no hubs) vs PPV L∞ = %v", u, d)
		}
	}
}

func TestPartialVectorBlockedByHubs(t *testing.T) {
	// Path 0→1→2: hub {1} blocks everything past it.
	g := graph.FromAdjacency([][]int32{{1}, {2}, {}})
	isHub := []bool{false, true, false}
	p := tiny(0.15)
	partial, hubRes, err := PartialVector(g, 0, isHub, p)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Get(2) != 0 {
		t.Fatalf("tour 0→1→2 passes hub 1 but contributed: %v", partial)
	}
	if math.Abs(partial.Get(0)-0.15) > 1e-9 {
		t.Fatalf("p(0) = %v, want α", partial.Get(0))
	}
	// Hub targets get nothing (Definition 1): the walk mass freezes there.
	if partial.Get(1) != 0 {
		t.Fatalf("p(1) = %v, want 0 (hub target)", partial.Get(1))
	}
	if want := 0.85; math.Abs(hubRes.Get(1)-want) > 1e-9 {
		t.Fatalf("hub blocked mass = %v, want %v at node 1", hubRes, want)
	}
}

func TestPartialVectorHubSource(t *testing.T) {
	// The source may be a hub itself: it expands at step 0 (the start
	// position is exempt) but any LATER hub visit — including a return to
	// the source — freezes the walk. Cycle 0↔1 with H={0}: surviving
	// tours are ∅ (α at 0) and 0→1 (α(1−α) at 1); 0→1→0 revisits hub 0.
	g := graph.FromAdjacency([][]int32{{1}, {0}})
	isHub := []bool{true, false}
	p := tiny(0.15)
	partial, blocked, err := PartialVector(g, 0, isHub, p)
	if err != nil {
		t.Fatal(err)
	}
	a := 0.15
	if math.Abs(partial.Get(0)-a) > 1e-9 {
		t.Fatalf("p(0) = %v, want α (zero-length tour only)", partial.Get(0))
	}
	if want := a * (1 - a); math.Abs(partial.Get(1)-want) > 1e-9 {
		t.Fatalf("p(1) = %v, want %v", partial.Get(1), want)
	}
	// The return mass (1−α)² freezes at the source hub.
	if want := (1 - a) * (1 - a); math.Abs(blocked.Get(0)-want) > 1e-9 {
		t.Fatalf("blocked = %v, want %v at node 0", blocked, want)
	}
}

func TestPartialVectorErrors(t *testing.T) {
	g := graph.FromAdjacency([][]int32{{1}, {}})
	if _, _, err := PartialVector(g, 9, nil, Defaults()); err == nil {
		t.Fatal("bad source should fail")
	}
	if _, _, err := PartialVector(g, 0, []bool{true}, Defaults()); err == nil {
		t.Fatal("short isHub should fail")
	}
}

func TestSkeletonMatchesPowerIteration(t *testing.T) {
	// s_u(h) = r_u(h) (Definition 2): reverse push from h must agree with
	// a fresh power iteration per source.
	g := gen.ErdosRenyi(60, 3, 9)
	p := Params{Alpha: 0.15, Eps: 1e-10}
	h := int32(7)
	sk, err := SkeletonForHub(g, h, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int32{0, 7, 30, 59} {
		r, err := PowerIteration(g, u, p)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(sk[u] - r.Get(h)); d > 1e-6 {
			t.Fatalf("s_%d(%d) = %v, power iteration says %v (Δ=%v)", u, h, sk[u], r.Get(h), d)
		}
	}
}

func TestSkeletonDenseAgrees(t *testing.T) {
	g := gen.ErdosRenyi(80, 3, 10)
	p := Params{Alpha: 0.15, Eps: 1e-9}
	h := int32(11)
	fast, err := SkeletonForHub(g, h, p)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := SkeletonForHubDense(g, h, p)
	if err != nil {
		t.Fatal(err)
	}
	for u := range fast {
		if d := math.Abs(fast[u] - dense[u]); d > 1e-5 {
			t.Fatalf("node %d: push %v vs dense %v", u, fast[u], dense[u])
		}
	}
}

func TestSkeletonErrors(t *testing.T) {
	g := graph.FromAdjacency([][]int32{{1}, {0}})
	if _, err := SkeletonForHub(g, -1, Defaults()); err == nil {
		t.Fatal("bad hub should fail")
	}
	if _, err := SkeletonForHubDense(g, 5, Defaults()); err == nil {
		t.Fatal("bad hub should fail (dense)")
	}
}

// TestDecompositionIdentity verifies the Jeh–Widom construction (Eq. 4):
//
//	r_u = p_u + (1/α)·Σ_{h∈H} (s_u(h) − α·f_u(h)) · (p_h − α·x_h)
//
// on random graphs with random hub sets, for hub and non-hub query nodes.
// This is the exactness foundation of both GPA and HGPA (Theorems 1, 3).
func TestDecompositionIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := Params{Alpha: 0.15, Eps: 1e-10}
	for trial := 0; trial < 8; trial++ {
		n := 30 + rng.Intn(60)
		g := gen.ErdosRenyi(n, 2.5, int64(trial+100))
		isHub := make([]bool, n)
		var hubs []int32
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.15 {
				isHub[v] = true
				hubs = append(hubs, int32(v))
			}
		}
		queries := []int32{int32(rng.Intn(n))}
		if len(hubs) > 0 {
			queries = append(queries, hubs[0]) // exercise the u∈H case
		}
		// Pre-compute hub partial vectors and skeletons.
		hubPartials := make(map[int32]sparse.Vector, len(hubs))
		for _, h := range hubs {
			ph, _, err := PartialVector(g, h, isHub, p)
			if err != nil {
				t.Fatal(err)
			}
			hubPartials[h] = ph
		}
		skeleton := make(map[int32][]float64, len(hubs))
		for _, h := range hubs {
			s, err := SkeletonForHub(g, h, p)
			if err != nil {
				t.Fatal(err)
			}
			skeleton[h] = s
		}
		for _, u := range queries {
			pu, _, err := PartialVector(g, u, isHub, p)
			if err != nil {
				t.Fatal(err)
			}
			constructed := pu.Clone()
			for _, h := range hubs {
				su := skeleton[h][u]
				if u == h {
					su -= p.Alpha // S_u(h) = s_u(h) − α·f_u(h)
				}
				if su == 0 {
					continue
				}
				adjusted := hubPartials[h].Clone()
				adjusted.Add(h, -p.Alpha) // P_h = p_h − α·x_h
				constructed.AddScaled(adjusted, su/p.Alpha)
			}
			// Every hub-target entry comes straight from the skeleton
			// (P_h vanishes on all hub entries; see PartialVector docs).
			for _, h := range hubs {
				constructed.Set(h, skeleton[h][u])
			}
			want, err := PowerIteration(g, u, p)
			if err != nil {
				t.Fatal(err)
			}
			if d := sparse.LInfDistance(constructed, want); d > 1e-5 {
				t.Fatalf("trial %d u=%d (hub=%v): Eq.4 violated, L∞ = %v",
					trial, u, isHub[u], d)
			}
		}
	}
}

// TestTheorem2 verifies that the partial vector w.r.t. a separator hub set
// equals the local PPV on the virtual subgraph (Theorem 2).
func TestTheorem2(t *testing.T) {
	// Two communities joined only through hub node 4:
	// part A = {0,1,2,3}, hub = {4}, part B = {5,6,7}.
	adj := [][]int32{
		{1, 2}, {2, 3}, {0, 3}, {4}, // A, 3→4 crosses into the hub
		{5},           // hub 4 → B
		{6}, {7}, {5}, // B cycle-ish
	}
	g := graph.FromAdjacency(adj)
	isHub := make([]bool, g.NumNodes())
	isHub[4] = true
	p := Params{Alpha: 0.15, Eps: 1e-10}

	members := []int32{0, 1, 2, 3}
	vs := graph.VirtualSubgraph(g, members)
	for _, u := range members {
		partial, _, err := PartialVector(g, u, isHub, p)
		if err != nil {
			t.Fatal(err)
		}
		local, err := PowerIteration(vs.G, vs.Local(u), p)
		if err != nil {
			t.Fatal(err)
		}
		// Map local PPV back to global ids for comparison.
		global := sparse.New(local.Len())
		for lid, x := range local {
			global.Set(vs.Parent(lid), x)
		}
		if d := sparse.LInfDistance(partial, global); d > 1e-6 {
			t.Fatalf("u=%d: Theorem 2 violated, L∞ = %v\npartial=%v\nlocal  =%v",
				u, d, partial, global)
		}
	}
}

// TestTheorem2Random repeats Theorem 2 on random community graphs with
// partition-derived separators.
func TestTheorem2Random(t *testing.T) {
	g, err := gen.Community(gen.Config{Nodes: 300, AvgOutDegree: 4, Communities: 2, InterFrac: 0.05, Seed: 6, MinOutDegree: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Simple deterministic 2-way split by id (communities are contiguous),
	// hubs = greedy cover of the cut.
	parts := make([]int32, g.NumNodes())
	for i := range parts {
		if i >= g.NumNodes()/2 {
			parts[i] = 1
		}
	}
	isHub := make([]bool, g.NumNodes())
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Out(u) {
			if parts[u] != parts[v] {
				isHub[u] = true // crude cover: take all boundary tails
			}
		}
	}
	var members []int32
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		if parts[u] == 0 && !isHub[u] {
			members = append(members, u)
		}
	}
	vs := graph.VirtualSubgraph(g, members)
	p := Params{Alpha: 0.15, Eps: 1e-9}
	for i := 0; i < 5; i++ {
		u := members[i*len(members)/5]
		partial, _, err := PartialVector(g, u, isHub, p)
		if err != nil {
			t.Fatal(err)
		}
		local, err := PowerIteration(vs.G, vs.Local(u), p)
		if err != nil {
			t.Fatal(err)
		}
		global := sparse.New(local.Len())
		for lid, x := range local {
			global.Set(vs.Parent(lid), x)
		}
		if d := sparse.LInfDistance(partial, global); d > 1e-5 {
			t.Fatalf("u=%d: Theorem 2 violated on random graph, L∞ = %v", u, d)
		}
	}
}

// isHub covering only boundary tails is not a vertex cover of the cut in
// general (heads on the other side stay); verify the test premise: tours
// from part-0 non-hub members cannot leave part 0 without passing a hub.
func TestTheorem2RandomPremise(t *testing.T) {
	g, err := gen.Community(gen.Config{Nodes: 200, AvgOutDegree: 4, Communities: 2, InterFrac: 0.05, Seed: 8, MinOutDegree: 1})
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]int32, g.NumNodes())
	for i := range parts {
		if i >= g.NumNodes()/2 {
			parts[i] = 1
		}
	}
	isHub := make([]bool, g.NumNodes())
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Out(u) {
			if parts[u] != parts[v] {
				isHub[u] = true
			}
		}
	}
	// Every edge from a part-0 non-hub lands in part 0 (or a hub): OUT
	// edges crossing imply tail is a hub by construction. In-edges from
	// part 1 don't matter for forward tours.
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		if parts[u] != 0 || isHub[u] {
			continue
		}
		for _, v := range g.Out(u) {
			if parts[v] != 0 && !isHub[v] {
				t.Fatalf("edge (%d,%d) escapes part 0 without a hub", u, v)
			}
		}
	}
}
