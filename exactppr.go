// Package exactppr computes EXACT Personalized PageRank Vectors (PPVs)
// on a coordinator-based share-nothing cluster with a single round of
// communication per query, reproducing "Distributed Algorithms on Exact
// Personalized PageRank" (Guo, Cao, Cong, Lu, Lin — SIGMOD 2017).
//
// The library decomposes the graph with a built-in METIS-style multilevel
// partitioner into a hierarchy of subgraphs separated by hub nodes,
// pre-computes Jeh–Widom partial vectors and hubs skeleton vectors per
// subgraph (HGPA; GPA is the single-level special case), and answers any
// single-node PPV query exactly: each machine folds its hub slice into
// one sparse vector, and the coordinator sums them.
//
// Quick start:
//
//	g, _ := exactppr.LoadEdgeListFile("graph.txt")
//	store, _ := exactppr.BuildHGPA(g, exactppr.HierarchyOptions{}, exactppr.DefaultParams(), 0)
//	ppv, _ := store.Query(42)
//	for _, e := range ppv.TopK(10) {
//	    fmt.Println(e.ID, e.Score)
//	}
//
// For a real cluster, persist the store with SaveStore, Split it across
// machines, serve each shard with cluster workers (see cmd/pprserve and
// examples/distributed), and point a Coordinator at them.
package exactppr

import (
	"io"

	"exactppr/internal/cluster"
	"exactppr/internal/core"
	"exactppr/internal/gen"
	"exactppr/internal/graph"
	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

// Re-exported types. Aliases keep the public surface in one import path
// while the implementation lives in focused internal packages.
type (
	// Graph is a directed graph in CSR form. It is immutable except
	// through batched edge deltas (Graph.ApplyDelta / Store.ApplyUpdates).
	Graph = graph.Graph
	// GraphBuilder accumulates edges for a Graph.
	GraphBuilder = graph.Builder
	// Delta is a batch of edge insertions/deletions — the unit of
	// incremental maintenance.
	Delta = graph.Delta
	// Vector is a sparse PPV (node id → score) — the mutable map
	// representation used for construction and results.
	Vector = sparse.Vector
	// Packed is the immutable sorted columnar representation of a sparse
	// PPV — what stores keep and the wire carries. Convert with
	// Packed.Unpack and Pack.
	Packed = sparse.Packed
	// Entry is one (id, score) element of a Vector.
	Entry = sparse.Entry
	// Params are the PPR parameters (teleport α, tolerance ε, and the
	// pre-computation Kernel selection).
	Params = ppr.Params
	// Kernel selects the pre-computation engine (Params.Kernel):
	// KernelAuto (sparse-frontier push with adaptive dense fallback, the
	// default), KernelDense (the original dense sweeps), or KernelPush
	// (pure sparse bookkeeping). The choice never changes results — all
	// engines produce identical vectors — only how the work scales.
	Kernel = ppr.Kernel
	// PrecomputeInfo reports the cost of a pre-computation run,
	// including the kernel used and its pushes/vector work counters.
	PrecomputeInfo = core.PrecomputeInfo
	// HierarchyOptions tunes the recursive partitioning.
	HierarchyOptions = hierarchy.Options
	// Hierarchy is the tree of subgraphs with per-level hub sets.
	Hierarchy = hierarchy.Hierarchy
	// Store is the HGPA pre-computation plus exact query construction.
	Store = core.Store
	// LiveStore publishes a Store behind an atomic pointer and applies
	// edge-delta batches with dirty-partition recomputation; queries
	// keep serving the previous snapshot while a batch lands.
	LiveStore = core.LiveStore
	// UpdateInfo reports the cost of one incremental update batch.
	UpdateInfo = core.UpdateInfo
	// Shard is one machine's slice of a Store.
	Shard = core.Shard
	// Coordinator fans queries out to machines and sums the shares.
	Coordinator = cluster.Coordinator
	// QueryStats reports one distributed query (result, bytes, times).
	QueryStats = cluster.QueryStats
	// Machine is the worker-side query interface.
	Machine = cluster.Machine
	// ShardMachine is an in-process Machine over a Shard.
	ShardMachine = cluster.ShardMachine
	// Gateway serves PPV queries over HTTP/JSON.
	Gateway = cluster.Gateway
	// Querier is the backend interface a Gateway serves from
	// (implemented by Coordinator).
	Querier = cluster.Querier
	// NetworkModel converts rounds and bytes into modeled wire time.
	NetworkModel = cluster.NetworkModel
	// GenConfig parameterizes the synthetic community-graph generator.
	GenConfig = gen.Config
)

// Pre-computation kernel choices for Params.Kernel.
const (
	KernelAuto  = ppr.KernelAuto
	KernelDense = ppr.KernelDense
	KernelPush  = ppr.KernelPush
)

// ParseKernel parses a kernel name ("auto", "dense", "push") — the
// spelling used by the cmds' -kernel flags.
func ParseKernel(s string) (Kernel, error) { return ppr.ParseKernel(s) }

// DefaultParams returns the paper's defaults: α = 0.15, ε = 1e-4.
func DefaultParams() Params { return ppr.Defaults() }

// BuildHGPAWithInfo is BuildHGPA plus pre-computation cost reporting
// (wall/task time, kernel choice, pushes per vector).
func BuildHGPAWithInfo(g *Graph, opts HierarchyOptions, params Params, workers int) (*Store, *PrecomputeInfo, error) {
	h, err := hierarchy.Build(g, opts)
	if err != nil {
		return nil, nil, err
	}
	return core.PrecomputeWithInfo(h, params, workers)
}

// Pack converts a map Vector into its canonical packed (sorted
// columnar) form.
func Pack(v Vector) Packed { return sparse.Pack(v) }

// NewGraphBuilder returns a builder for a graph with n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// LoadEdgeList reads a SNAP-format edge list.
func LoadEdgeList(r io.Reader) (*Graph, error) { return graph.LoadEdgeList(r) }

// LoadEdgeListFile reads a SNAP-format edge list from a file.
func LoadEdgeListFile(path string) (*Graph, error) { return graph.LoadEdgeListFile(path) }

// GenerateCommunityGraph produces a synthetic directed graph with planted
// community structure (see gen.Config) — handy for experiments when real
// data is unavailable.
func GenerateCommunityGraph(cfg GenConfig) (*Graph, error) { return gen.Community(cfg) }

// GenerateDataset produces a named analogue of the paper's datasets
// (email, web, youtube, pld, pld_full) at the given scale.
func GenerateDataset(name string, scale float64, seed int64) (*Graph, error) {
	return gen.Dataset(name, scale, seed)
}

// BuildHGPA partitions g hierarchically and runs the full
// pre-computation with `workers` parallel workers (0 = all cores).
func BuildHGPA(g *Graph, opts HierarchyOptions, params Params, workers int) (*Store, error) {
	return core.BuildHGPA(g, opts, params, workers)
}

// BuildGPA is the single-level variant: m balanced parts, one hub set.
func BuildGPA(g *Graph, m int, params Params, workers int, seed int64) (*Store, error) {
	return core.BuildGPA(g, m, params, workers, seed)
}

// Split divides a store across n machines (the paper's hub-distributed
// load balancing).
func Split(s *Store, n int) ([]*Shard, error) { return core.Split(s, n) }

// NewLiveStore wraps a store for incremental maintenance: ApplyUpdates
// applies an edge-delta batch (recomputing only the dirty partitions of
// the hierarchy) and atomically publishes the new snapshot.
func NewLiveStore(s *Store) *LiveStore { return core.NewLiveStore(s) }

// NewLocalCluster shards a store across n in-process machines behind a
// coordinator.
func NewLocalCluster(s *Store, n int) (*Coordinator, error) {
	return cluster.NewLocalCluster(s, n)
}

// NewLiveLocalCluster is NewLocalCluster over an updatable store: the
// machines share one LiveStore and the returned cluster's ApplyUpdates
// applies each batch exactly once (it also backs the gateway's
// POST /edges in single-host mode).
func NewLiveLocalCluster(s *Store, n int) (*cluster.LiveLocalCluster, error) {
	return cluster.NewLiveLocalCluster(s, n)
}

// NewCoordinator wires a coordinator over explicit machines (e.g. TCP
// workers dialed with DialMachine).
func NewCoordinator(machines ...Machine) (*Coordinator, error) {
	return cluster.NewCoordinator(machines...)
}

// DialMachine connects to a pprserve worker over one multiplexed TCP
// connection (any number of queries may be in flight concurrently).
func DialMachine(addr string) (*cluster.TCPMachine, error) { return cluster.DialMachine(addr) }

// DialPool connects to a pprserve worker over n multiplexed TCP
// connections, spreading calls round-robin for socket-level parallelism.
func DialPool(addr string, n int) (*cluster.Pool, error) { return cluster.DialPool(addr, n) }

// NewGateway exposes a coordinator (or any cluster.Querier) over
// HTTP/JSON: GET /ppv/{node}, POST /ppv, /healthz, /stats.
func NewGateway(b cluster.Querier) *Gateway { return cluster.NewGateway(b) }

// PowerIteration computes a PPV by plain power iteration — the exactness
// oracle and the baseline the paper beats.
func PowerIteration(g *Graph, q int32, p Params) (Vector, error) {
	return ppr.PowerIteration(g, q, p)
}

// PowerIterationSet computes the PPV of a preference node set (uniform
// preference), using the linearity property of PPVs.
func PowerIterationSet(g *Graph, pref []int32, p Params) (Vector, error) {
	return ppr.PowerIterationSet(g, pref, p)
}

// Preference is a weighted preference node set for QuerySet.
type Preference = core.Preference

// DiskStore answers exact queries straight from a store file, for
// pre-computations larger than memory: memory-mapped zero-copy serving,
// a transposed skeleton index, and a sharded coalescing vector cache.
type DiskStore = core.DiskStore

// DiskOptions tunes OpenDiskStoreWith (mmap on/off, cache capacity).
type DiskOptions = core.DiskOptions

// DiskStats is a snapshot of a DiskStore's serving counters (cache
// hits/misses, coalesced reads, mmap vs fallback).
type DiskStats = core.DiskStats

// DiskShard is one machine's slice of a DiskStore.
type DiskShard = core.DiskShard

// DiskCluster is a coordinator over in-process disk shards; its
// DiskStats feed the gateway's /stats.
type DiskCluster = cluster.DiskCluster

// OpenDiskStore opens a store file for on-demand (disk-resident)
// querying with default options; see core.DiskStore.
func OpenDiskStore(path string) (*DiskStore, error) { return core.OpenDiskStore(path) }

// OpenDiskStoreWith is OpenDiskStore with explicit serving options.
func OpenDiskStoreWith(path string, opts DiskOptions) (*DiskStore, error) {
	return core.OpenDiskStoreWith(path, opts)
}

// SplitDisk divides a disk store across n machines with the same
// assignment as Split, so disk and memory shard shares are
// interchangeable.
func SplitDisk(ds *DiskStore, n int) ([]*DiskShard, error) { return core.SplitDisk(ds, n) }

// NewDiskLocalCluster shards a disk store across n in-process machines
// behind a coordinator — single-host serving for stores larger than
// memory.
func NewDiskLocalCluster(ds *DiskStore, n int) (*DiskCluster, error) {
	return cluster.NewDiskLocalCluster(ds, n)
}

// SaveStore persists a store; LoadStore restores it.
func SaveStore(w io.Writer, s *Store) error { return core.Save(w, s) }

// SaveStoreFile persists a store to a file path.
func SaveStoreFile(path string, s *Store) error { return core.SaveFile(path, s) }

// LoadStore reads a store written by SaveStore.
func LoadStore(r io.Reader) (*Store, error) { return core.Load(r) }

// LoadStoreFile reads a store from a file path.
func LoadStoreFile(path string) (*Store, error) { return core.LoadFile(path) }
