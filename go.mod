module exactppr

go 1.24
