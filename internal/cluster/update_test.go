package cluster

import (
	"context"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"exactppr/internal/core"
	"exactppr/internal/graph"
	"exactppr/internal/sparse"
)

// TestGatewayBatchPartialFailure: a failed source inside a batch must be
// visibly failed — per-result error text plus top-level failed/partial —
// never a zeroed result masquerading as an empty PPV in a clean 200.
func TestGatewayBatchPartialFailure(t *testing.T) {
	_, srv := testGateway(t)
	var out batchResponse
	postJSON(t, srv.URL+"/ppv", map[string]any{"nodes": []int32{5, -1, 9}}, http.StatusOK, &out)
	if !out.Partial || out.Failed != 1 {
		t.Fatalf("partial=%v failed=%d, want true/1", out.Partial, out.Failed)
	}
	if out.Results[1].Error == "" {
		t.Fatal("failed result carries no error text")
	}
	if out.Results[0].Error != "" || out.Results[2].Error != "" {
		t.Fatalf("good results polluted: %+v", out.Results)
	}

	// A fully healthy batch reports neither flag.
	var healthy batchResponse
	postJSON(t, srv.URL+"/ppv", map[string]any{"nodes": []int32{5, 9}}, http.StatusOK, &healthy)
	if healthy.Partial || healthy.Failed != 0 {
		t.Fatalf("healthy batch flagged partial=%v failed=%d", healthy.Partial, healthy.Failed)
	}
}

// TestGatewayBatchCancellation: a batch whose REQUEST context dies
// mid-fan-out must not return 200 with zeroed results — deadline maps
// to 504, client-gone to 499, consistent with single queries.
func TestGatewayBatchCancellation(t *testing.T) {
	g := NewGateway(stuckQuerier{})
	g.Timeout = 10 * time.Second // per-query budget is NOT the trigger here

	run := func(ctx context.Context) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/ppv",
			strings.NewReader(`{"nodes":[1,2,3]}`)).WithContext(ctx)
		rec := httptest.NewRecorder()
		g.Handler().ServeHTTP(rec, req)
		return rec
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if rec := run(ctx); rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline-cut batch: status %d, want 504", rec.Code)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel2() }()
	if rec := run(ctx2); rec.Code != statusClientClosedRequest {
		t.Fatalf("client-cancelled batch: status %d, want 499", rec.Code)
	}

	// The single-query path maps the same way.
	req := httptest.NewRequest("GET", "/ppv/1", nil)
	ctx3, cancel3 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel3()
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req.WithContext(ctx3))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline-cut single query: status %d, want 504", rec.Code)
	}
}

// TestGatewayEdges: POST /edges applies a delta through a live local
// cluster and subsequent queries serve the updated graph.
func TestGatewayEdges(t *testing.T) {
	s := testStore(t)
	live, err := NewLiveLocalCluster(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewGateway(live).Handler())
	defer srv.Close()

	before, err := live.Store().Query(7)
	if err != nil {
		t.Fatal(err)
	}
	var ack map[string]any
	postJSON(t, srv.URL+"/edges", map[string]any{
		"insert": [][2]int32{{7, 250}, {7, 251}},
	}, http.StatusOK, &ack)
	if ack["inserted"].(float64) != 2 {
		t.Fatalf("ack = %v", ack)
	}
	if ack["recomputed"].(float64) <= 0 {
		t.Fatal("nothing recomputed")
	}

	after := live.Store()
	want, err := after.Query(7)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.LInfDistance(before, want) == 0 {
		t.Fatal("update did not change node 7's PPV")
	}
	// The HTTP query path serves the post-update snapshot.
	var res resultJSON
	getJSON(t, srv.URL+"/ppv/7?topk=3", http.StatusOK, &res)
	wantTop := want.TopK(3)
	for i, e := range res.TopK {
		if e.ID != wantTop[i].ID || math.Abs(e.Score-wantTop[i].Score) > 1e-9 {
			t.Fatalf("rank %d: got (%d,%v), want (%d,%v)", i, e.ID, e.Score, wantTop[i].ID, wantTop[i].Score)
		}
	}

	var e map[string]string
	postJSON(t, srv.URL+"/edges", map[string]any{}, http.StatusBadRequest, &e)
	postJSON(t, srv.URL+"/edges", map[string]any{
		"insert": [][2]int32{{0, 99999}},
	}, http.StatusBadRequest, &e)
	if !strings.Contains(e["error"], "out of range") {
		t.Fatalf("error = %q", e["error"])
	}
}

// TestGatewayEdgesUnsupported: a read-only backend answers 501, not a
// panic or a silent 200.
func TestGatewayEdgesUnsupported(t *testing.T) {
	_, srv := testGateway(t) // plain NewLocalCluster: no Updater
	var e map[string]string
	postJSON(t, srv.URL+"/edges", map[string]any{
		"insert": [][2]int32{{1, 2}},
	}, http.StatusNotImplemented, &e)
}

// TestTCPClusterUpdates drives the UPDATE frame end-to-end: two TCP
// workers (each holding its own live store copy, as real worker
// processes do), a coordinator fan-out, and query equivalence against
// an in-process store maintained with the same batches.
func TestTCPClusterUpdates(t *testing.T) {
	oracle := testStore(t) // in-process reference, updated in lockstep
	oracleLive := core.NewLiveStore(oracle)

	const machines = 2
	var addrs []string
	for i := 0; i < machines; i++ {
		s := testStore(t) // each worker process loads its own store copy
		live, err := NewLiveShard(core.NewLiveStore(s), i, machines)
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &Server{Machine: live, Updater: live}
		go srv.Serve(l)
		defer l.Close()
		addrs = append(addrs, l.Addr().String())
	}
	var ms []Machine
	for _, addr := range addrs {
		m, err := DialMachine(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		ms = append(ms, m)
	}
	coord, err := NewCoordinator(ms...)
	if err != nil {
		t.Fatal(err)
	}

	d := graph.Delta{
		Insert: [][2]int32{{3, 200}, {120, 4}},
		Delete: [][2]int32{{0, oracle.H.G.Out(0)[0]}},
	}
	stats, err := coord.ApplyUpdates(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	info, err := oracleLive.ApplyUpdates(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recomputed != int64(info.Recomputed) || stats.Inserted != int64(info.Inserted) || stats.Deleted != int64(info.Deleted) {
		t.Fatalf("cluster stats %+v disagree with local info %+v", stats, info)
	}

	for _, u := range []int32{0, 3, 120, 299} {
		qs, err := coord.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracleLive.Store().Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if dist := sparse.LInfDistance(qs.Result.Unpack(), want); dist > 1e-9 {
			t.Fatalf("u=%d: distributed post-update L∞ = %v", u, dist)
		}
	}

	// A read-only worker refuses the frame with a clean error.
	s := testStore(t)
	shards, err := core.Split(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startWorker(t, &ShardMachine{Shard: shards[0]})
	defer stop()
	m, err := DialMachine(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.ApplyUpdates(context.Background(), d); err == nil || !strings.Contains(err.Error(), "updates not enabled") {
		t.Fatalf("read-only worker: err = %v", err)
	}
	roCoord, err := NewCoordinator(ms[0], m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := roCoord.ApplyUpdates(context.Background(), d); err == nil {
		t.Fatal("coordinator must refuse a mixed-capability cluster or surface the failure")
	}
	// The capability probe reflects the WORKER's configuration, not the
	// client stub's method set: true for -updates workers, false for the
	// read-only one, so the gateway's 501 pre-check fires over the wire.
	if !ms[0].(*TCPMachine).SupportsUpdates() {
		t.Fatal("updatable worker probed as read-only")
	}
	if m.SupportsUpdates() {
		t.Fatal("read-only worker probed as updatable")
	}
	if roCoord.SupportsUpdates() {
		t.Fatal("mixed cluster must not report update support")
	}
}

// TestLiveLocalClusterSnapshotAtomicQueries: on a single host, a query
// overlapping an update must match the pre-batch or the post-batch
// store exactly — never a cross-machine mix of the two. Run under
// -race in CI.
func TestLiveLocalClusterSnapshotAtomicQueries(t *testing.T) {
	s := testStore(t)
	live, err := NewLiveLocalCluster(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	const q = 7
	// Batches that materially move r_q: edges out of q shift its mass.
	batches := []graph.Delta{
		{Insert: [][2]int32{{q, 200}, {q, 201}, {q, 202}}},
		{Delete: [][2]int32{{q, 200}, {q, 201}, {q, 202}}},
	}
	stop := make(chan struct{})
	bad := make(chan string, 4)
	var wg sync.WaitGroup
	var snapsMu sync.Mutex
	snaps := []*core.Store{live.Store()} // every snapshot ever published
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				qs, err := live.QueryCtx(context.Background(), q)
				if err != nil {
					bad <- err.Error()
					return
				}
				got := qs.Result.Unpack()
				matches := func() bool {
					snapsMu.Lock()
					candidates := append([]*core.Store(nil), snaps...)
					snapsMu.Unlock()
					for _, snap := range candidates {
						want, err := snap.Query(q)
						if err != nil {
							return false
						}
						if sparse.LInfDistance(got, want) <= 1e-11 {
							return true
						}
					}
					return false
				}
				if !matches() {
					// The swap happens inside ApplyUpdates, slightly before
					// the test appends the new snapshot — give the appender
					// a moment before declaring the result torn.
					time.Sleep(50 * time.Millisecond)
					if !matches() {
						bad <- "query result matches no published snapshot (torn across machines?)"
						return
					}
				}
			}
		}()
	}
	for round := 0; round < 3; round++ {
		for _, d := range batches {
			if _, err := live.ApplyUpdates(context.Background(), d); err != nil {
				t.Fatal(err)
			}
			snapsMu.Lock()
			snaps = append(snaps, live.Store())
			snapsMu.Unlock()
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-bad:
		t.Fatal(msg)
	default:
	}
}

// TestDeltaCodecRoundTrip covers the opUpdate payload encoding.
func TestDeltaCodecRoundTrip(t *testing.T) {
	d := graph.Delta{
		Insert: [][2]int32{{1, 2}, {3, 4}},
		Delete: [][2]int32{{9, 0}},
	}
	got, err := decodeDelta(encodeDelta(d))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Insert) != 2 || len(got.Delete) != 1 || got.Insert[1] != [2]int32{3, 4} || got.Delete[0] != [2]int32{9, 0} {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := decodeDelta([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame must fail")
	}
	if _, err := decodeDelta(append(encodeDelta(d), 0)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
	st := UpdateStats{Inserted: 5, Deleted: 2, Recomputed: 77}
	got2, err := decodeUpdateStats(encodeUpdateStats(st))
	if err != nil {
		t.Fatal(err)
	}
	if got2 != st {
		t.Fatalf("stats round trip = %+v", got2)
	}
	if _, err := decodeUpdateStats([]byte{1}); err == nil {
		t.Fatal("malformed ack must fail")
	}
}
