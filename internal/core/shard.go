package core

import (
	"fmt"

	"exactppr/internal/sparse"
)

// Shard is the slice of a Store assigned to one machine under the paper's
// hub-distributed scheme (§4.4): every subgraph's hub set is divided
// evenly across the s machines, and the leaf-level vectors are likewise
// spread evenly. Each machine answers a query with ONE sparse vector; the
// coordinator sums the vectors — the shard outputs form an exact additive
// decomposition of the PPV (TestShardsSumToQuery).
type Shard struct {
	Index, Total int
	store        *Store
	// hubs owned by this shard, grouped per hierarchy node id so the
	// query fold can walk Path(u) cheaply.
	hubsByNode map[int][]int32
	// leaves owned by this shard.
	leaves map[int32]bool
}

// Split divides the store across n machines: each subgraph's hub list is
// dealt round-robin with a GLOBAL cursor (so machines stay balanced even
// though most tree nodes contribute only one or two hubs), and non-hub
// node u's leaf vector goes to machine u mod n — the paper's even
// division of hub sets and leaf subgraphs (§4.4).
func Split(s *Store, n int) ([]*Shard, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: cannot split into %d shards", n)
	}
	shards := make([]*Shard, n)
	for i := range shards {
		shards[i] = &Shard{
			Index:      i,
			Total:      n,
			store:      s,
			hubsByNode: make(map[int][]int32),
			leaves:     make(map[int32]bool),
		}
	}
	cursor := 0
	for _, node := range s.H.Nodes() {
		for _, h := range node.Hubs {
			sh := shards[cursor%n]
			cursor++
			sh.hubsByNode[node.ID] = append(sh.hubsByNode[node.ID], h)
		}
	}
	for u := range s.LeafPPV {
		shards[int(u)%n].leaves[u] = true
	}
	return shards, nil
}

// QueryVector computes this machine's additive share of the PPV of u —
// Algorithm 1 of the paper (with the skeleton hub-entry term included so
// the shares stay exact; see the package comment).
func (sh *Shard) QueryVector(u int32) (sparse.Vector, error) {
	acc := sparse.AcquireAccumulator(sh.store.H.G.NumNodes())
	defer acc.Release()
	if err := sh.queryInto(acc, u, 1); err != nil {
		return nil, err
	}
	return acc.Vector(), nil
}

// QueryPacked is QueryVector draining into the columnar representation.
// This is what workers ship: the sorted arrays encode straight into the
// canonical wire format with no map iteration.
func (sh *Shard) QueryPacked(u int32) (sparse.Packed, error) {
	acc := sparse.AcquireAccumulator(sh.store.H.G.NumNodes())
	defer acc.Release()
	if err := sh.queryInto(acc, u, 1); err != nil {
		return sparse.Packed{}, err
	}
	return acc.Packed(), nil
}

// queryInto folds w times this shard's share of u's PPV into acc.
func (sh *Shard) queryInto(acc *sparse.Accumulator, u int32, w float64) error {
	s := sh.store
	if u < 0 || int(u) >= s.H.G.NumNodes() {
		return fmt.Errorf("core: query node %d out of range", u)
	}
	for _, node := range s.H.Path(u) {
		for _, h := range sh.hubsByNode[node.ID] {
			s.addHubContribution(acc, u, h, w)
		}
	}
	// The final term belongs to whoever stores it: the owner of u's leaf
	// vector, or of u's hub partial when u is a hub.
	if s.H.IsHub(u) {
		if sh.ownsHub(u) {
			s.addFinalTerm(acc, u, w)
		}
	} else if sh.leaves[u] {
		s.addFinalTerm(acc, u, w)
	}
	return nil
}

func (sh *Shard) ownsHub(h int32) bool {
	node := sh.store.H.Home(h)
	for _, x := range sh.hubsByNode[node.ID] {
		if x == h {
			return true
		}
	}
	return false
}

// QueryWork returns the number of sparse-vector entries this shard folds
// to answer a query for u — a deterministic proxy for per-machine compute
// that is immune to scheduling noise. The paper's load-balance claim
// (§4.4) is that the MAX of this quantity across machines shrinks as
// 1/machines; see the fig10 experiment.
func (sh *Shard) QueryWork(u int32) (int64, error) {
	s := sh.store
	if u < 0 || int(u) >= s.H.G.NumNodes() {
		return 0, fmt.Errorf("core: query node %d out of range", u)
	}
	var work int64
	for _, node := range s.H.Path(u) {
		for _, h := range sh.hubsByNode[node.ID] {
			if s.Skeleton[h].Get(u) != 0 {
				work += int64(s.HubPartial[h].Len()) + 1
			}
			work++ // skeleton lookup
		}
	}
	if s.H.IsHub(u) {
		if sh.ownsHub(u) {
			work += int64(s.HubPartial[u].Len()) + 1
		}
	} else if sh.leaves[u] {
		work += int64(s.LeafPPV[u].Len())
	}
	return work, nil
}

// HubCount returns the number of hubs assigned to the shard.
func (sh *Shard) HubCount() int {
	c := 0
	for _, hs := range sh.hubsByNode {
		c += len(hs)
	}
	return c
}

// LeafCount returns the number of leaf vectors assigned to the shard.
func (sh *Shard) LeafCount() int { return len(sh.leaves) }

// SpaceBytes reports the encoded size of the vectors THIS shard stores —
// the per-machine space metric of §6.2.3 (no redundancy across machines).
func (sh *Shard) SpaceBytes() int64 {
	var total int64
	s := sh.store
	for _, hs := range sh.hubsByNode {
		for _, h := range hs {
			total += int64(sparse.EncodedSizePacked(s.HubPartial[h]))
			total += int64(sparse.EncodedSizePacked(s.Skeleton[h]))
		}
	}
	for u := range sh.leaves {
		total += int64(sparse.EncodedSizePacked(s.LeafPPV[u]))
	}
	return total
}

// OwnedHubs returns the hubs assigned to this shard (any order).
func (sh *Shard) OwnedHubs() []int32 {
	var out []int32
	for _, hs := range sh.hubsByNode {
		out = append(out, hs...)
	}
	return out
}

// OwnedLeaves returns the leaf nodes assigned to this shard (any order).
func (sh *Shard) OwnedLeaves() []int32 {
	out := make([]int32, 0, len(sh.leaves))
	for u := range sh.leaves {
		out = append(out, u)
	}
	return out
}
