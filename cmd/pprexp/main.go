// Command pprexp runs the paper-reproduction experiments: one runner per
// table and figure of the evaluation section (see DESIGN.md §4 for the
// per-experiment index).
//
//	pprexp -list
//	pprexp -run fig9
//	pprexp -run all -scale 0.3 -queries 10
package main

import (
	"flag"
	"fmt"
	"os"

	"exactppr/internal/experiments"
	"exactppr/internal/ppr"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment id (or 'all')")
		list     = flag.Bool("list", false, "list experiment ids")
		scale    = flag.Float64("scale", 0.5, "dataset scale")
		seed     = flag.Int64("seed", 1, "seed")
		machines = flag.Int("machines", 6, "default machine count")
		queries  = flag.Int("queries", 20, "query sample size per measurement")
		alpha    = flag.Float64("alpha", 0.15, "teleport probability")
		eps      = flag.Float64("eps", 1e-4, "tolerance")
		workers  = flag.Int("workers", 0, "precompute workers (0 = all cores)")
		kernel   = flag.String("kernel", "auto", "precompute kernel: auto, dense, push")
	)
	flag.Parse()

	kern, err := ppr.ParseKernel(*kernel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pprexp: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, id := range experiments.List() {
			fmt.Printf("%-8s %s\n", id, experiments.About(id))
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "pprexp: -run <id> or -list required")
		os.Exit(2)
	}
	cfg := experiments.Config{
		Scale: *scale, Seed: *seed, Machines: *machines,
		Queries: *queries, Alpha: *alpha, Eps: *eps, Kernel: kern, Workers: *workers,
	}
	ids := []string{*run}
	if *run == "all" {
		ids = experiments.List()
	}
	for _, id := range ids {
		if err := experiments.RunAndPrint(id, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "pprexp: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
