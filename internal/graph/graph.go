// Package graph implements the directed-graph substrate for the exact
// distributed PPV algorithms: a compact CSR representation, builders,
// subgraph extraction, and the paper's virtual subgraphs (Definition 3),
// which preserve original out-degrees so that local PPVs equal partial
// vectors (Theorem 2).
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Graph is an immutable directed graph over nodes 0..N-1 in CSR
// (compressed sparse row) layout. Build one with a Builder or the loaders
// in this package; once constructed it must not be mutated.
//
// Each node carries an "OutWeight": the out-degree used when computing
// random-walk transition probabilities. For an ordinary graph OutWeight
// equals the structural out-degree. For a virtual subgraph it equals the
// node's out-degree in the ORIGINAL graph, which may exceed the number of
// retained out-edges; the missing probability mass flows to the virtual
// sink and dies there (tours that leave the subgraph never return).
type Graph struct {
	n       int     // node count; fixed for the life of the graph
	offsets []int32 // len N+1; out-edges of u are adj[offsets[u]:offsets[u+1]]
	adj     []int32
	outW    []int32 // transition denominator per node (see doc above)
	virtual int32   // id of the virtual sink, or -1 when the graph has none

	// The reverse adjacency is built lazily and invalidated by ApplyDelta:
	// epoch counts edge-batch applications, inEpoch records the epoch the
	// reverse arrays were built at. sync.Once cannot express "valid until
	// the next mutation", so the cache is epoch-aware instead.
	epoch   uint64
	inMu    sync.Mutex
	inEpoch uint64
	inOff   []int32
	inAdj   []int32
}

// NumNodes returns N, including the virtual sink when present. The node
// set is fixed at construction — edge deltas never change it — so this
// is safe to call concurrently with ApplyDelta.
func (g *Graph) NumNodes() int { return g.n }

// Epoch returns the number of edge-delta batches applied to the graph.
// A freshly built graph is at epoch 0.
func (g *Graph) Epoch() uint64 { return g.epoch }

// NumEdges returns the number of directed edges stored.
func (g *Graph) NumEdges() int { return len(g.adj) }

// Out returns the out-neighbors of u. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) Out(u int32) []int32 { return g.adj[g.offsets[u]:g.offsets[u+1]] }

// OutDegree returns the number of stored out-edges of u.
func (g *Graph) OutDegree(u int32) int { return int(g.offsets[u+1] - g.offsets[u]) }

// OutWeight returns the random-walk transition denominator of u: the
// original out-degree for virtual subgraphs, the structural out-degree
// otherwise. It is 0 only for true dangling nodes.
func (g *Graph) OutWeight(u int32) int { return int(g.outW[u]) }

// In returns the in-neighbors of u. The reverse adjacency is built on
// first use after each mutation (see BuildReverse); concurrent readers
// are safe, but In must not race with ApplyDelta.
func (g *Graph) In(u int32) []int32 {
	g.BuildReverse()
	return g.inAdj[g.inOff[u]:g.inOff[u+1]]
}

// InLists returns the reverse adjacency in raw CSR form: the in-edges of
// u are adj[off[u]:off[u+1]]. Unlike In, the per-call mutex is paid once
// here instead of on every lookup, which is what the sparse-frontier
// reverse-push kernel needs — its inner loop reads one in-list per
// residual pop. The slices alias internal storage (read-only) and are
// valid until the next ApplyDelta; like In, this must not race with one.
func (g *Graph) InLists() (off, adj []int32) {
	g.BuildReverse()
	return g.inOff, g.inAdj
}

// BuildReverse materializes the reverse adjacency (in-edges). Safe for
// concurrent use with other readers; only the first call after a
// mutation does work. It must not race with ApplyDelta (see Delta).
func (g *Graph) BuildReverse() {
	g.inMu.Lock()
	defer g.inMu.Unlock()
	if g.inOff != nil && g.inEpoch == g.epoch {
		return
	}
	g.buildReverse()
	g.inEpoch = g.epoch
}

func (g *Graph) buildReverse() {
	n := g.NumNodes()
	cnt := make([]int32, n+1)
	for _, v := range g.adj {
		cnt[v+1]++
	}
	for i := 0; i < n; i++ {
		cnt[i+1] += cnt[i]
	}
	inAdj := make([]int32, len(g.adj))
	next := make([]int32, n)
	copy(next, cnt[:n])
	for u := int32(0); u < int32(n); u++ {
		for _, v := range g.Out(u) {
			inAdj[next[v]] = u
			next[v]++
		}
	}
	g.inOff, g.inAdj = cnt, inAdj
}

// HasVirtualSink reports whether the graph carries a virtual sink node.
func (g *Graph) HasVirtualSink() bool { return g.virtual >= 0 }

// VirtualSink returns the virtual sink id, or -1 when there is none.
func (g *Graph) VirtualSink() int32 { return g.virtual }

// IsVirtual reports whether u is the virtual sink of this graph.
func (g *Graph) IsVirtual(u int32) bool { return g.virtual >= 0 && u == g.virtual }

// HasEdge reports whether the edge (u, v) exists. Out-lists are sorted, so
// this is a binary search.
func (g *Graph) HasEdge(u, v int32) bool {
	out := g.Out(u)
	i := sort.Search(len(out), func(i int) bool { return out[i] >= v })
	return i < len(out) && out[i] == v
}

// Validate checks structural invariants and returns the first violation.
func (g *Graph) Validate() error {
	n := int32(g.NumNodes())
	if g.offsets[0] != 0 || int(g.offsets[n]) != len(g.adj) {
		return fmt.Errorf("graph: bad offsets bounds")
	}
	for u := int32(0); u < n; u++ {
		if g.offsets[u] > g.offsets[u+1] {
			return fmt.Errorf("graph: offsets not monotone at node %d", u)
		}
		out := g.Out(u)
		for i, v := range out {
			if v < 0 || v >= n {
				return fmt.Errorf("graph: edge (%d,%d) out of range", u, v)
			}
			if i > 0 && out[i-1] >= v {
				return fmt.Errorf("graph: out-list of %d not strictly sorted", u)
			}
		}
		if int(g.outW[u]) < len(out) {
			return fmt.Errorf("graph: node %d OutWeight %d < stored degree %d", u, g.outW[u], len(out))
		}
	}
	if g.virtual >= n {
		return fmt.Errorf("graph: virtual sink %d out of range", g.virtual)
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges and self-loops are dropped at Build time (the paper's random-surfer
// model is over simple directed graphs).
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddEdge records the directed edge (u, v). Ids outside [0, n) panic:
// that is a programming error, not an input error (loaders validate input).
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	b.edges = append(b.edges, [2]int32{u, v})
}

// Build finalizes the graph. The builder may be reused afterwards only by
// calling Reset.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	offsets := make([]int32, b.n+1)
	adj := make([]int32, 0, len(b.edges))
	var prev [2]int32 = [2]int32{-1, -1}
	for _, e := range b.edges {
		if e == prev || e[0] == e[1] {
			continue // duplicate or self-loop
		}
		prev = e
		adj = append(adj, e[1])
		offsets[e[0]+1]++
	}
	for i := 0; i < b.n; i++ {
		offsets[i+1] += offsets[i]
	}
	outW := make([]int32, b.n)
	for u := 0; u < b.n; u++ {
		outW[u] = offsets[u+1] - offsets[u]
	}
	return &Graph{n: b.n, offsets: offsets, adj: adj, outW: outW, virtual: -1}
}

// Reset clears accumulated edges keeping capacity.
func (b *Builder) Reset() { b.edges = b.edges[:0] }

// FromAdjacency builds a graph from an adjacency-list description; handy in
// tests. adj[u] lists the out-neighbors of u.
func FromAdjacency(adj [][]int32) *Graph {
	b := NewBuilder(len(adj))
	for u, outs := range adj {
		for _, v := range outs {
			b.AddEdge(int32(u), v)
		}
	}
	return b.Build()
}
