package partition

import (
	"math/rand"
	"testing"

	"exactppr/internal/gen"
	"exactppr/internal/graph"
	"exactppr/internal/matching"
)

func TestUndirectedView(t *testing.T) {
	// 0→1 and 1→0 merge into one edge of weight 2; 1→2 weight 1.
	g := graph.FromAdjacency([][]int32{{1}, {0, 2}, {}})
	ug := undirectedView(g)
	if ug.numNodes() != 3 {
		t.Fatalf("numNodes = %d", ug.numNodes())
	}
	nbrs, wts := ug.neighbors(0)
	if len(nbrs) != 1 || nbrs[0] != 1 || wts[0] != 2 {
		t.Fatalf("neighbors(0) = %v %v", nbrs, wts)
	}
	nbrs, wts = ug.neighbors(1)
	if len(nbrs) != 2 {
		t.Fatalf("neighbors(1) = %v", nbrs)
	}
	if ug.totalWeight() != 3 {
		t.Fatalf("totalWeight = %d", ug.totalWeight())
	}
}

func TestCutWeight(t *testing.T) {
	g := graph.FromAdjacency([][]int32{{1}, {2}, {}})
	ug := undirectedView(g)
	if cut := ug.cutWeight([]int8{0, 0, 1}); cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
	if cut := ug.cutWeight([]int8{0, 1, 0}); cut != 2 {
		t.Fatalf("cut = %d, want 2", cut)
	}
}

func TestHeavyEdgeMatchValid(t *testing.T) {
	g := gen.ErdosRenyi(200, 4, 3)
	ug := undirectedView(g)
	match := heavyEdgeMatch(ug, rand.New(rand.NewSource(1)))
	for v := int32(0); v < int32(ug.numNodes()); v++ {
		m := match[v]
		if m < 0 || int(m) >= ug.numNodes() {
			t.Fatalf("match[%d] = %d out of range", v, m)
		}
		if m != v && match[m] != v {
			t.Fatalf("matching not symmetric at %d↔%d", v, m)
		}
	}
}

func TestContractPreservesWeight(t *testing.T) {
	g := gen.ErdosRenyi(300, 3, 5)
	ug := undirectedView(g)
	match := heavyEdgeMatch(ug, rand.New(rand.NewSource(2)))
	cg, cmap := contract(ug, match)
	if cg.totalWeight() != ug.totalWeight() {
		t.Fatalf("vertex weight not preserved: %d vs %d", cg.totalWeight(), ug.totalWeight())
	}
	if cg.numNodes() >= ug.numNodes() {
		t.Fatalf("contract did not shrink: %d vs %d", cg.numNodes(), ug.numNodes())
	}
	// Total edge weight is preserved minus intra-pair edges.
	var fineW, coarseW int64
	for i := range ug.adjwgt {
		fineW += int64(ug.adjwgt[i])
	}
	for i := range cg.adjwgt {
		coarseW += int64(cg.adjwgt[i])
	}
	if coarseW > fineW {
		t.Fatalf("coarse edge weight grew: %d > %d", coarseW, fineW)
	}
	for v := range cmap {
		if cmap[v] < 0 || int(cmap[v]) >= cg.numNodes() {
			t.Fatalf("cmap[%d] = %d", v, cmap[v])
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	g := graph.FromAdjacency([][]int32{{1}, {}})
	if _, err := Partition(g, 0, Options{}); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := Partition(g, 5, Options{}); err == nil {
		t.Fatal("k>n should fail")
	}
	if _, err := Partition(graph.FromAdjacency(nil), 1, Options{}); err == nil {
		t.Fatal("empty graph should fail")
	}
}

func TestPartitionK1(t *testing.T) {
	g := gen.ErdosRenyi(50, 2, 1)
	parts, err := Partition(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if p != 0 {
			t.Fatal("k=1 must place everything in part 0")
		}
	}
}

func TestPartitionTwoCliques(t *testing.T) {
	// Two 10-cliques joined by one edge: the bisector must find the cut.
	b := graph.NewBuilder(20)
	for i := int32(0); i < 10; i++ {
		for j := int32(0); j < 10; j++ {
			if i != j {
				b.AddEdge(i, j)
				b.AddEdge(i+10, j+10)
			}
		}
	}
	b.AddEdge(3, 13)
	g := b.Build()
	parts, err := Partition(g, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All of 0..9 must share a part, all of 10..19 the other.
	for i := 1; i < 10; i++ {
		if parts[i] != parts[0] {
			t.Fatalf("clique 1 split: %v", parts)
		}
		if parts[i+10] != parts[10] {
			t.Fatalf("clique 2 split: %v", parts)
		}
	}
	if parts[0] == parts[10] {
		t.Fatal("cliques not separated")
	}
	cut := CutEdges(g, parts)
	if len(cut) != 1 {
		t.Fatalf("cut edges = %v, want exactly the bridge", cut)
	}
}

func TestPartitionBalanced(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		g, err := gen.Dataset("email", 0.5, 7)
		if err != nil {
			t.Fatal(err)
		}
		parts, err := Partition(g, k, Options{Imbalance: 0.1, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		bal := Balance(parts, k, nil)
		// Recursive bisection compounds imbalance; allow some slack.
		if bal > 1.45 {
			t.Errorf("k=%d balance = %.3f, want ≤ 1.45", k, bal)
		}
		for _, p := range parts {
			if p < 0 || int(p) >= k {
				t.Fatalf("part id %d out of range", p)
			}
		}
	}
}

func TestPartitionCutQualityOnCommunities(t *testing.T) {
	// With planted communities and k = #communities the cut should be a
	// small fraction of edges.
	g, err := gen.Community(gen.Config{Nodes: 1200, AvgOutDegree: 6, Communities: 4, InterFrac: 0.02, Seed: 5, MinOutDegree: 1})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Partition(g, 4, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cut := CutEdges(g, parts)
	frac := float64(len(cut)) / float64(g.NumEdges())
	if frac > 0.15 {
		t.Fatalf("cut fraction %.3f too high for planted communities", frac)
	}
}

func TestHubNodesSeparator2Way(t *testing.T) {
	g, err := gen.Dataset("email", 0.4, 9)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Partition(g, 2, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	hubs := HubNodes(g, parts, 2)
	if len(hubs) == 0 {
		t.Fatal("expected a nonempty hub set")
	}
	if !graph.IsSeparator(g, hubs, parts) {
		t.Fatal("hub set is not a separator")
	}
	// Hub set must cover all cut edges.
	if !matching.IsVertexCover(CutEdges(g, parts), hubs) {
		t.Fatal("hub set does not cover the cut")
	}
}

func TestHubNodesSeparatorKWay(t *testing.T) {
	g, err := gen.Dataset("email", 0.4, 10)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Partition(g, 4, Options{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	hubs := HubNodes(g, parts, 4)
	if !graph.IsSeparator(g, hubs, parts) {
		t.Fatal("k-way hub set is not a separator")
	}
}

func TestHubNodesKonigMinimality(t *testing.T) {
	// Star cut: nodes 1..5 in part 0 all point at node 0 in part 1.
	// König must pick just {0}; greedy would pick 2 nodes.
	b := graph.NewBuilder(6)
	for i := int32(1); i <= 5; i++ {
		b.AddEdge(i, 0)
	}
	g := b.Build()
	parts := []int32{1, 0, 0, 0, 0, 0}
	hubs := HubNodes(g, parts, 2)
	if len(hubs) != 1 || !hubs[0] {
		t.Fatalf("hubs = %v, want exactly {0}", hubs)
	}
}

func TestHubNodesNoCut(t *testing.T) {
	// Disconnected graph, parts along components: no cut, no hubs.
	g := graph.FromAdjacency([][]int32{{1}, {}, {3}, {}})
	hubs := HubNodes(g, []int32{0, 0, 1, 1}, 2)
	if len(hubs) != 0 {
		t.Fatalf("hubs = %v, want empty", hubs)
	}
}

func TestBalanceMetric(t *testing.T) {
	parts := []int32{0, 0, 0, 1}
	if got := Balance(parts, 2, nil); got != 1.5 {
		t.Fatalf("Balance = %v, want 1.5", got)
	}
	if got := Balance(parts, 2, map[int32]bool{0: true}); got != (2.0 * 2 / 3) {
		t.Fatalf("Balance with skip = %v", got)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g, _ := gen.Dataset("email", 0.3, 21)
	p1, err := Partition(g, 4, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := Partition(g, 4, Options{Seed: 5})
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("partition not deterministic for equal seeds")
		}
	}
}

func TestPartitionRandomGraphsSeparatorProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(300)
		g := gen.ErdosRenyi(n, 2+rng.Float64()*3, int64(trial))
		k := 2 + rng.Intn(3)
		if k > n {
			k = n
		}
		parts, err := Partition(g, k, Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		hubs := HubNodes(g, parts, k)
		if !graph.IsSeparator(g, hubs, parts) {
			t.Fatalf("trial %d: hub set not a separator", trial)
		}
	}
}
