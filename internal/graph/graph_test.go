package graph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// diamond returns the 4-node graph 0→1, 0→2, 1→3, 2→3.
func diamond() *Graph {
	return FromAdjacency([][]int32{{1, 2}, {3}, {3}, {}})
}

func TestBuilderBasics(t *testing.T) {
	g := diamond()
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("NumNodes=%d NumEdges=%d", g.NumNodes(), g.NumEdges())
	}
	if got := g.Out(0); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Fatalf("Out(0) = %v", got)
	}
	if g.OutDegree(3) != 0 || g.OutWeight(3) != 0 {
		t.Fatalf("node 3 should be dangling")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDropsDuplicatesAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1)
	b.AddEdge(2, 0)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (dup and self-loop dropped)", g.NumEdges())
	}
	if g.OutDegree(1) != 0 {
		t.Fatalf("self loop survived: Out(1)=%v", g.Out(1))
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range should panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestHasEdge(t *testing.T) {
	g := diamond()
	cases := []struct {
		u, v int32
		want bool
	}{{0, 1, true}, {0, 2, true}, {0, 3, false}, {1, 3, true}, {3, 0, false}}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestReverse(t *testing.T) {
	g := diamond()
	if got := g.In(3); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Fatalf("In(3) = %v", got)
	}
	if got := g.In(0); len(got) != 0 {
		t.Fatalf("In(0) = %v, want empty", got)
	}
	// Total in-degree equals total out-degree.
	sumIn := 0
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		sumIn += len(g.In(u))
	}
	if sumIn != g.NumEdges() {
		t.Fatalf("Σ in-degree = %d, want %d", sumIn, g.NumEdges())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := diamond()
	s := InducedSubgraph(g, []int32{0, 1, 3})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Edge 0→1 and 1→3 survive; 0→2 does not.
	l0, l1, l3 := s.Local(0), s.Local(1), s.Local(3)
	if l0 < 0 || l1 < 0 || l3 < 0 || s.Local(2) != -1 {
		t.Fatalf("Local mapping wrong: %d %d %d %d", l0, l1, l3, s.Local(2))
	}
	if !s.G.HasEdge(l0, l1) || !s.G.HasEdge(l1, l3) {
		t.Fatal("expected edges missing in induced subgraph")
	}
	if s.G.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", s.G.NumEdges())
	}
	// Induced OutWeight is the LOCAL degree: node 0 lost edge 0→2.
	if s.G.OutWeight(l0) != 1 {
		t.Fatalf("induced OutWeight = %d, want 1", s.G.OutWeight(l0))
	}
	if s.G.HasVirtualSink() {
		t.Fatal("induced subgraph must not have a sink")
	}
	if s.Parent(l3) != 3 {
		t.Fatalf("Parent(%d) = %d", l3, s.Parent(l3))
	}
}

func TestVirtualSubgraph(t *testing.T) {
	g := diamond()
	s := VirtualSubgraph(g, []int32{0, 1, 3})
	if !s.G.HasVirtualSink() {
		t.Fatal("virtual subgraph must have a sink")
	}
	sink := s.G.VirtualSink()
	if int(sink) != s.Len() {
		t.Fatalf("sink id = %d, want %d", sink, s.Len())
	}
	l0 := s.Local(0)
	// Node 0 keeps its ORIGINAL out-weight 2 and gains a sink edge for 0→2.
	if s.G.OutWeight(l0) != 2 {
		t.Fatalf("virtual OutWeight = %d, want 2", s.G.OutWeight(l0))
	}
	if !s.G.HasEdge(l0, sink) {
		t.Fatal("node 0 should have a sink edge (its edge to 2 left the subgraph)")
	}
	// Node 1's only edge (→3) is internal: no sink edge.
	if s.G.HasEdge(s.Local(1), sink) {
		t.Fatal("node 1 must not have a sink edge")
	}
	if s.G.OutDegree(sink) != 0 || s.G.OutWeight(sink) != 0 {
		t.Fatal("sink must be absorbing")
	}
	if err := s.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.G.IsVirtual(sink) || s.G.IsVirtual(l0) {
		t.Fatal("IsVirtual misbehaves")
	}
}

func TestSubgraphParentPanicsOnSink(t *testing.T) {
	g := diamond()
	s := VirtualSubgraph(g, []int32{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Parent(sink) should panic")
		}
	}()
	s.Parent(s.G.VirtualSink())
}

func TestExtractDuplicateMemberPanics(t *testing.T) {
	g := diamond()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate member should panic")
		}
	}()
	InducedSubgraph(g, []int32{0, 0})
}

func TestLoadEdgeList(t *testing.T) {
	in := `# comment
% another comment
10 20
20 30

10 30
`
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	// 10→0, 20→1, 30→2 by first appearance.
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Fatal("edges remapped incorrectly")
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"1", "a b", "1 -2"} {
		if _, err := LoadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("LoadEdgeList(%q) should fail", bad)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := diamond()
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d vs %d/%d", g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		if !reflect.DeepEqual(g.Out(u), g2.Out(u)) {
			t.Fatalf("Out(%d) differs: %v vs %v", u, g.Out(u), g2.Out(u))
		}
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	// Two components: {0,1} and {2,3} (2→3 only).
	g := FromAdjacency([][]int32{{1}, {}, {3}, {}})
	labels, k := g.WeaklyConnectedComponents(nil)
	if k != 2 {
		t.Fatalf("k = %d, want 2", k)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] {
		t.Fatalf("labels = %v", labels)
	}
}

func TestComponentsWithBlocked(t *testing.T) {
	// Path 0-1-2; blocking 1 splits it.
	g := FromAdjacency([][]int32{{1}, {2}, {}})
	labels, k := g.WeaklyConnectedComponents(func(u int32) bool { return u == 1 })
	if k != 2 || labels[1] != -1 {
		t.Fatalf("k=%d labels=%v", k, labels)
	}
}

func TestIsSeparator(t *testing.T) {
	// 0-1-2-3 path (undirected view) with parts {0,1|2,3}. Hub {3} does
	// not cut the 1-2 boundary, so nodes of different parts stay connected.
	g := FromAdjacency([][]int32{{1}, {2}, {3}, {}})
	parts := []int32{0, 0, 1, 1}
	if IsSeparator(g, map[int32]bool{3: true}, parts) {
		t.Fatal("{3} must not separate parts split between nodes 1 and 2")
	}
	// Hub {1} does cut it: remaining components {0} and {2,3} are pure.
	if !IsSeparator(g, map[int32]bool{1: true}, parts) {
		t.Fatal("{1} must separate the path")
	}
}

func TestIsSeparatorPositive(t *testing.T) {
	// 0→1→2, 3→1. Hub {1}: removing it leaves {0},{2},{3} all isolated, so
	// any part assignment is separated.
	g := FromAdjacency([][]int32{{1}, {2}, {}, {1}})
	parts := []int32{0, 0, 1, 1}
	if !IsSeparator(g, map[int32]bool{1: true}, parts) {
		t.Fatal("{1} must separate this graph")
	}
}

func TestReachableFrom(t *testing.T) {
	g := diamond()
	r := g.ReachableFrom(0, nil)
	if len(r) != 4 {
		t.Fatalf("ReachableFrom(0) = %v", r)
	}
	r = g.ReachableFrom(0, func(u int32) bool { return u == 1 || u == 2 })
	if len(r) != 1 || !r[0] {
		t.Fatalf("blocked reach = %v", r)
	}
	r = g.ReachableFrom(3, nil)
	if len(r) != 1 {
		t.Fatalf("ReachableFrom(3) = %v", r)
	}
}

func TestBFSUndirectedView(t *testing.T) {
	// 0→1, 2→1: BFS from 0 must reach 2 through the undirected view.
	g := FromAdjacency([][]int32{{1}, {}, {1}})
	var got []int32
	g.BFSFrom(0, nil, func(u int32) { got = append(got, u) })
	if len(got) != 3 {
		t.Fatalf("BFS reached %v, want all 3 nodes", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := diamond()
	g.outW[0] = 0 // below stored degree
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should catch OutWeight < degree")
	}
}

func TestRandomGraphInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(50)
		b := NewBuilder(n)
		for e := 0; e < rng.Intn(4*n); e++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Virtual subgraph of a random member subset keeps parent weights.
		var members []int32
		for u := 0; u < n; u++ {
			if rng.Intn(2) == 0 {
				members = append(members, int32(u))
			}
		}
		if len(members) == 0 {
			continue
		}
		s := VirtualSubgraph(g, members)
		if err := s.G.Validate(); err != nil {
			t.Fatalf("trial %d virtual: %v", trial, err)
		}
		for _, p := range members {
			l := s.Local(p)
			if s.G.OutWeight(l) != g.OutWeight(p) {
				t.Fatalf("OutWeight not preserved for %d", p)
			}
			if s.Parent(l) != p {
				t.Fatalf("Parent(Local(%d)) = %d", p, s.Parent(l))
			}
		}
	}
}
