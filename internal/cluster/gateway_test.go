package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"exactppr/internal/core"
)

func testGateway(t *testing.T) (*core.Store, *httptest.Server) {
	t.Helper()
	s := testStore(t)
	c, err := NewLocalCluster(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewGateway(c).Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func getJSON(t *testing.T, url string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url string, body any, wantStatus int, v any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestGatewaySingleQuery(t *testing.T) {
	s, srv := testGateway(t)
	for _, u := range []int32{0, 42, 299} {
		var res resultJSON
		getJSON(t, fmt.Sprintf("%s/ppv/%d?topk=5", srv.URL, u), http.StatusOK, &res)
		if res.Node == nil || *res.Node != u {
			t.Fatalf("node = %v, want %d", res.Node, u)
		}
		want, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		wantTop := want.TopK(5)
		if len(res.TopK) != len(wantTop) {
			t.Fatalf("u=%d: got %d entries, want %d", u, len(res.TopK), len(wantTop))
		}
		for i, e := range res.TopK {
			if e.ID != wantTop[i].ID || math.Abs(e.Score-wantTop[i].Score) > 1e-9 {
				t.Fatalf("u=%d rank %d: got (%d, %v), want (%d, %v)",
					u, i, e.ID, e.Score, wantTop[i].ID, wantTop[i].Score)
			}
		}
		if res.Bytes <= 0 {
			t.Fatalf("u=%d: no byte accounting in HTTP answer", u)
		}
	}
}

func TestGatewayBadRequests(t *testing.T) {
	_, srv := testGateway(t)
	var e map[string]string
	getJSON(t, srv.URL+"/ppv/notanode", http.StatusBadRequest, &e)
	getJSON(t, srv.URL+"/ppv/1?topk=zero", http.StatusBadRequest, &e)
	postJSON(t, srv.URL+"/ppv", map[string]any{"nodes": []int32{}}, http.StatusBadRequest, &e)
	// Weights without set:true would silently answer unweighted — refuse.
	postJSON(t, srv.URL+"/ppv", map[string]any{
		"nodes": []int32{1, 2}, "weights": []float64{0.9, 0.1},
	}, http.StatusBadRequest, &e)
	// Out-of-range node: the worker's validation error surfaces as 404
	// (the node does not exist), not a hang and not a 502.
	var res resultJSON
	getJSON(t, srv.URL+"/ppv/99999", http.StatusNotFound, &res)
	if res.Error == "" {
		t.Fatal("missing error text in 404 body")
	}
}

func TestGatewayBatch(t *testing.T) {
	s, srv := testGateway(t)
	nodes := []int32{1, 7, 150, 299}
	var out struct {
		Results []resultJSON `json:"results"`
	}
	postJSON(t, srv.URL+"/ppv", map[string]any{"nodes": nodes, "topk": 3}, http.StatusOK, &out)
	if len(out.Results) != len(nodes) {
		t.Fatalf("got %d results, want %d", len(out.Results), len(nodes))
	}
	for i, res := range out.Results {
		if res.Error != "" {
			t.Fatalf("node %d: %s", nodes[i], res.Error)
		}
		want, err := s.Query(nodes[i])
		if err != nil {
			t.Fatal(err)
		}
		wantTop := want.TopK(3)
		for j, e := range res.TopK {
			if e.ID != wantTop[j].ID || math.Abs(e.Score-wantTop[j].Score) > 1e-9 {
				t.Fatalf("node %d rank %d: got (%d, %v), want (%d, %v)",
					nodes[i], j, e.ID, e.Score, wantTop[j].ID, wantTop[j].Score)
			}
		}
	}

	// A bad source fails in place without sinking its batch-mates.
	postJSON(t, srv.URL+"/ppv", map[string]any{"nodes": []int32{5, -1, 9}}, http.StatusOK, &out)
	if out.Results[1].Error == "" {
		t.Fatal("bad node should report an error")
	}
	if out.Results[0].Error != "" || out.Results[2].Error != "" {
		t.Fatalf("good nodes failed: %+v", out.Results)
	}
}

// TestGatewayWeightsMismatch: weights shorter than nodes must be a 400,
// never a panic (it used to crash the process through encodePreference
// on the TCP transport).
func TestGatewayWeightsMismatch(t *testing.T) {
	_, srv := testGateway(t)
	var e map[string]string
	postJSON(t, srv.URL+"/ppv", map[string]any{
		"nodes": []int32{1, 2, 3}, "weights": []float64{0.5}, "set": true,
	}, http.StatusBadRequest, &e)
	if e["error"] == "" {
		t.Fatal("missing error text")
	}
}

// TestTCPMachineWeightsMismatch: the TCP transport rejects the same
// malformed preference the in-process machine rejects.
func TestTCPMachineWeightsMismatch(t *testing.T) {
	s := testStore(t)
	shards, err := core.Split(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startWorker(t, &ShardMachine{Shard: shards[0]})
	defer stop()
	m, err := DialMachine(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	bad := core.Preference{Nodes: []int32{1, 2, 3}, Weights: []float64{0.5}}
	if _, _, err := m.QuerySetShare(context.Background(), bad); err == nil {
		t.Fatal("mismatched weights must fail, not panic")
	}
}

func TestGatewayPreferenceSet(t *testing.T) {
	s, srv := testGateway(t)
	pref := core.Preference{Nodes: []int32{5, 50, 150}, Weights: []float64{1, 2, 1}}
	var res resultJSON
	postJSON(t, srv.URL+"/ppv", map[string]any{
		"nodes": pref.Nodes, "weights": pref.Weights, "set": true, "topk": 5,
	}, http.StatusOK, &res)
	want, err := s.QuerySet(pref)
	if err != nil {
		t.Fatal(err)
	}
	wantTop := want.TopK(5)
	for i, e := range res.TopK {
		if e.ID != wantTop[i].ID || math.Abs(e.Score-wantTop[i].Score) > 1e-9 {
			t.Fatalf("rank %d: got (%d, %v), want (%d, %v)", i, e.ID, e.Score, wantTop[i].ID, wantTop[i].Score)
		}
	}
}

// stuckQuerier blocks until the per-query deadline fires.
type stuckQuerier struct{}

func (stuckQuerier) QueryCtx(ctx context.Context, u int32) (*QueryStats, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func (stuckQuerier) QuerySetCtx(ctx context.Context, p core.Preference) (*QueryStats, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestGatewayTimeoutIs504: a query that exceeds the gateway's per-query
// budget reports 504 Gateway Timeout, not 502.
func TestGatewayTimeoutIs504(t *testing.T) {
	g := NewGateway(stuckQuerier{})
	g.Timeout = 20 * time.Millisecond
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	var res resultJSON
	getJSON(t, srv.URL+"/ppv/1", http.StatusGatewayTimeout, &res)
	if res.Error == "" {
		t.Fatal("missing error text in 504 body")
	}
}

func TestGatewayHealthAndStats(t *testing.T) {
	_, srv := testGateway(t)
	var health map[string]any
	getJSON(t, srv.URL+"/healthz", http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}
	if health["machines"].(float64) != 3 {
		t.Fatalf("machines = %v, want 3", health["machines"])
	}

	// Serve a mix of traffic concurrently, then audit the counters.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(u int32) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/ppv/%d", srv.URL, u))
			if err == nil {
				resp.Body.Close()
			}
		}(int32(i))
	}
	wg.Wait()
	resp, err := http.Get(srv.URL + "/ppv/99999") // one failure
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var stats map[string]any
	getJSON(t, srv.URL+"/stats", http.StatusOK, &stats)
	if stats["queries"].(float64) < 8 {
		t.Fatalf("queries = %v, want ≥ 8", stats["queries"])
	}
	if stats["errors"].(float64) < 1 {
		t.Fatalf("errors = %v, want ≥ 1", stats["errors"])
	}
	if stats["bytes_received"].(float64) <= 0 {
		t.Fatalf("bytes_received = %v", stats["bytes_received"])
	}
}
