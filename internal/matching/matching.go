// Package matching implements bipartite maximum matching (Hopcroft–Karp),
// the König-theorem minimum vertex cover derived from it, and the classic
// greedy 2-approximation for general graphs. The paper (§4.2, Appendix D)
// selects hub nodes as a vertex cover of the cut edges left by the graph
// partitioner: 2-way cuts yield bipartite cut graphs where König gives an
// exactly minimum hub set; multi-way cuts fall back to the approximation.
package matching

// BipartiteGraph is a bipartite graph given as adjacency from left
// vertices (0..L-1) to right vertices (0..R-1).
type BipartiteGraph struct {
	L, R int
	// Adj[l] lists the right-side neighbors of left vertex l.
	Adj [][]int32
}

const unmatched = int32(-1)

// HopcroftKarp computes a maximum matching. matchL[l] is the right vertex
// matched to l (or -1), matchR[r] symmetric. Runs in O(E·√V).
func HopcroftKarp(g *BipartiteGraph) (matchL, matchR []int32, size int) {
	matchL = make([]int32, g.L)
	matchR = make([]int32, g.R)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}
	const inf = int32(1 << 30)
	dist := make([]int32, g.L)
	queue := make([]int32, 0, g.L)

	bfs := func() bool {
		queue = queue[:0]
		for l := int32(0); l < int32(g.L); l++ {
			if matchL[l] == unmatched {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range g.Adj[l] {
				nl := matchR[r]
				if nl == unmatched {
					found = true
				} else if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}

	var dfs func(l int32) bool
	dfs = func(l int32) bool {
		for _, r := range g.Adj[l] {
			nl := matchR[r]
			if nl == unmatched || (dist[nl] == dist[l]+1 && dfs(nl)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := int32(0); l < int32(g.L); l++ {
			if matchL[l] == unmatched && dfs(l) {
				size++
			}
		}
	}
	return matchL, matchR, size
}

// MinVertexCover returns a minimum vertex cover of the bipartite graph via
// König's theorem: |cover| equals the maximum matching size. The result is
// (leftInCover, rightInCover) boolean masks.
//
// Construction: let Z be the set of vertices reachable from unmatched left
// vertices by alternating paths (unmatched edges left→right, matched edges
// right→left). The cover is (L \ Z) ∪ (R ∩ Z).
func MinVertexCover(g *BipartiteGraph) (left, right []bool) {
	matchL, matchR, _ := HopcroftKarp(g)
	visitL := make([]bool, g.L)
	visitR := make([]bool, g.R)
	var stack []int32
	for l := int32(0); l < int32(g.L); l++ {
		if matchL[l] == unmatched {
			visitL[l] = true
			stack = append(stack, l)
		}
	}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range g.Adj[l] {
			if matchL[l] == r || visitR[r] {
				continue // only traverse UNmatched edges left→right
			}
			visitR[r] = true
			if nl := matchR[r]; nl != unmatched && !visitL[nl] {
				visitL[nl] = true
				stack = append(stack, nl)
			}
		}
	}
	left = make([]bool, g.L)
	right = make([]bool, g.R)
	for l := 0; l < g.L; l++ {
		left[l] = !visitL[l]
	}
	for r := 0; r < g.R; r++ {
		right[r] = visitR[r]
	}
	return left, right
}

// Edge is an undirected edge between arbitrary vertex ids.
type Edge struct{ U, V int32 }

// GreedyVertexCover returns a vertex cover of the given edge set using the
// maximal-matching 2-approximation: repeatedly pick an uncovered edge and
// add both endpoints. Deterministic given the input order.
func GreedyVertexCover(edges []Edge) map[int32]bool {
	cover := make(map[int32]bool)
	for _, e := range edges {
		if !cover[e.U] && !cover[e.V] {
			cover[e.U] = true
			cover[e.V] = true
		}
	}
	return cover
}

// IsVertexCover reports whether every edge has at least one endpoint in the
// cover.
func IsVertexCover(edges []Edge, cover map[int32]bool) bool {
	for _, e := range edges {
		if !cover[e.U] && !cover[e.V] {
			return false
		}
	}
	return true
}
