package core

import (
	"math"
	"testing"

	"exactppr/internal/gen"
	"exactppr/internal/graph"
	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

func tightParams() ppr.Params { return ppr.Params{Alpha: 0.15, Eps: 1e-9} }

func testGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.Community(gen.Config{
		Nodes: 400, AvgOutDegree: 4, Communities: 4,
		InterFrac: 0.05, MinOutDegree: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func buildStore(t *testing.T, g *graph.Graph, opts hierarchy.Options) *Store {
	t.Helper()
	s, err := BuildHGPA(g, opts, tightParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sampleQueries picks a spread of query nodes including hubs of several
// levels, the regression-prone cases.
func sampleQueries(s *Store) []int32 {
	n := s.H.G.NumNodes()
	queries := []int32{0, int32(n / 3), int32(n - 1)}
	seenLevel := map[int]bool{}
	for u := int32(0); u < int32(n); u++ {
		if s.H.IsHub(u) && !seenLevel[s.H.HubLevel(u)] {
			seenLevel[s.H.HubLevel(u)] = true
			queries = append(queries, u)
			if len(seenLevel) >= 3 {
				break
			}
		}
	}
	return queries
}

// TestHGPAExactness is Theorem 3: HGPA's construction equals power
// iteration (within the ε-driven bound) for hub and non-hub queries.
func TestHGPAExactness(t *testing.T) {
	g := testGraph(t, 1)
	s := buildStore(t, g, hierarchy.Options{Seed: 2})
	for _, u := range sampleQueries(s) {
		got, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ppr.PowerIteration(g, u, tightParams())
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(got, want); d > 1e-4 {
			t.Errorf("u=%d (hub level %d): L∞ = %v", u, s.H.HubLevel(u), d)
		}
		if d := sparse.L1Distance(got, want) / float64(g.NumNodes()); d > 1e-6 {
			t.Errorf("u=%d: avg L1 = %v", u, d)
		}
	}
}

// TestGPAExactness is Theorem 1: the single-level construction matches
// power iteration too.
func TestGPAExactness(t *testing.T) {
	g := testGraph(t, 3)
	s, err := BuildGPA(g, 4, tightParams(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.H.Depth() != 2 {
		t.Fatalf("GPA should have exactly root+leaves, depth=%d", s.H.Depth())
	}
	for _, u := range sampleQueries(s) {
		got, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ppr.PowerIteration(g, u, tightParams())
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(got, want); d > 1e-4 {
			t.Errorf("u=%d: GPA L∞ = %v", u, d)
		}
	}
}

// TestGPAEqualsHGPA: Theorem 3's statement — both algorithms compute the
// same vector.
func TestGPAEqualsHGPA(t *testing.T) {
	g := testGraph(t, 5)
	gpa, err := BuildGPA(g, 4, tightParams(), 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	hgpa := buildStore(t, g, hierarchy.Options{Seed: 11})
	for _, u := range []int32{1, 100, 399} {
		a, err := gpa.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		b, err := hgpa.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(a, b); d > 2e-4 {
			t.Errorf("u=%d: GPA vs HGPA L∞ = %v", u, d)
		}
	}
}

// TestShardsSumToQuery: the distributed decomposition is exact — the sum
// of the per-machine vectors equals the centralized result, for any
// machine count (§4.4, Theorem 4's setting).
func TestShardsSumToQuery(t *testing.T) {
	g := testGraph(t, 8)
	s := buildStore(t, g, hierarchy.Options{Seed: 4})
	for _, n := range []int{1, 2, 3, 6, 10} {
		shards, err := Split(s, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range sampleQueries(s) {
			want, err := s.Query(u)
			if err != nil {
				t.Fatal(err)
			}
			sum := sparse.New(64)
			for _, sh := range shards {
				v, err := sh.QueryVector(u)
				if err != nil {
					t.Fatal(err)
				}
				sum.AddScaled(v, 1)
			}
			if d := sparse.LInfDistance(sum, want); d > 1e-12 {
				t.Errorf("n=%d u=%d: shard sum L∞ = %v (must be exact)", n, u, d)
			}
		}
	}
}

func TestSplitCoversStore(t *testing.T) {
	g := testGraph(t, 9)
	s := buildStore(t, g, hierarchy.Options{Seed: 5})
	shards, err := Split(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	hubs, leaves := 0, 0
	var bytes int64
	for _, sh := range shards {
		hubs += sh.HubCount()
		leaves += sh.LeafCount()
		bytes += sh.SpaceBytes()
	}
	if hubs != len(s.HubPartial) {
		t.Fatalf("shards own %d hubs, store has %d", hubs, len(s.HubPartial))
	}
	if leaves != len(s.LeafPPV) {
		t.Fatalf("shards own %d leaves, store has %d", leaves, len(s.LeafPPV))
	}
	if bytes != s.SpaceBytes() {
		t.Fatalf("shard bytes %d ≠ store bytes %d (no redundancy allowed)", bytes, s.SpaceBytes())
	}
	if _, err := Split(s, 0); err == nil {
		t.Fatal("Split(0) should fail")
	}
}

func TestShardLoadBalance(t *testing.T) {
	g := testGraph(t, 12)
	s := buildStore(t, g, hierarchy.Options{Seed: 6})
	shards, err := Split(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	minH, maxH := math.MaxInt, 0
	for _, sh := range shards {
		if c := sh.HubCount(); c < minH {
			minH = c
		}
		if c := sh.HubCount(); c > maxH {
			maxH = c
		}
	}
	// Per-subgraph round robin keeps the counts within #subgraphs of each
	// other; with many subgraphs the relative imbalance must stay small.
	if maxH-minH > len(s.H.Nodes()) {
		t.Fatalf("hub imbalance %d..%d over %d tree nodes", minH, maxH, len(s.H.Nodes()))
	}
}

func TestQueryErrors(t *testing.T) {
	g := testGraph(t, 13)
	s := buildStore(t, g, hierarchy.Options{Seed: 7})
	if _, err := s.Query(-1); err == nil {
		t.Fatal("negative query should fail")
	}
	if _, err := s.Query(int32(g.NumNodes())); err == nil {
		t.Fatal("out-of-range query should fail")
	}
	shards, _ := Split(s, 2)
	if _, err := shards[0].QueryVector(-5); err == nil {
		t.Fatal("shard query out of range should fail")
	}
}

func TestPrecomputeParamErrors(t *testing.T) {
	g := testGraph(t, 14)
	h, err := hierarchy.Build(g, hierarchy.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Precompute(h, ppr.Params{Alpha: 5, Eps: 1e-4}, 1); err == nil {
		t.Fatal("invalid params should fail")
	}
}

func TestTruncateHGPAad(t *testing.T) {
	g := testGraph(t, 15)
	s := buildStore(t, g, hierarchy.Options{Seed: 8})
	ad := s.Clone()
	dropped := ad.Truncate(1e-4)
	if dropped == 0 {
		t.Fatal("expected some entries below 1e-4")
	}
	if ad.SpaceBytes() >= s.SpaceBytes() {
		t.Fatal("truncation must shrink the store")
	}
	// HGPA_ad stays close to exact: L∞ within the truncation magnitude.
	u := int32(10)
	exact, err := s.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ad.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.LInfDistance(exact, approx); d > 5e-2 {
		t.Fatalf("HGPA_ad drifted too far: L∞ = %v", d)
	}
	// Original store unaffected by the clone's truncation.
	again, _ := s.Query(u)
	if d := sparse.LInfDistance(exact, again); d != 0 {
		t.Fatal("Truncate on clone mutated the original")
	}
}

func TestStats(t *testing.T) {
	g := testGraph(t, 16)
	s := buildStore(t, g, hierarchy.Options{Seed: 9})
	st := s.Stats()
	if st.Hubs != len(s.HubPartial) || st.Leaves != len(s.LeafPPV) {
		t.Fatalf("stats mismatch: %+v", st)
	}
	if st.Hubs+st.Leaves != g.NumNodes() {
		t.Fatalf("hubs %d + leaves %d ≠ |V| %d", st.Hubs, st.Leaves, g.NumNodes())
	}
	if st.Bytes <= 0 || st.GraphNodes != g.NumNodes() {
		t.Fatalf("stats: %+v", st)
	}
}

// TestJWExactness: the brute-force baseline is exact too (it shares the
// construction identity with a flat, non-separator hub set).
func TestJWExactness(t *testing.T) {
	g := gen.ErdosRenyi(150, 3, 21)
	s, err := PrecomputeJW(g, 12, tightParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	queries := []int32{0, 75, 149, s.Hubs[0]}
	for _, u := range queries {
		got, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ppr.PowerIteration(g, u, tightParams())
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(got, want); d > 1e-4 {
			t.Errorf("JW u=%d: L∞ = %v", u, d)
		}
	}
}

func TestJWErrors(t *testing.T) {
	g := gen.ErdosRenyi(20, 2, 1)
	if _, err := PrecomputeJW(g, 100, tightParams(), 1); err == nil {
		t.Fatal("hubCount > n should fail")
	}
	s, err := PrecomputeJW(g, 3, tightParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(99); err == nil {
		t.Fatal("out-of-range query should fail")
	}
	if s.SpaceBytes() <= 0 {
		t.Fatal("space must be positive")
	}
}

// TestHGPASpaceSmallerThanJW reproduces the headline space claim of §3.2:
// separator hubs confine partial vectors, so HGPA stores far fewer
// entries than PPV-JW on a community graph.
func TestHGPASpaceSmallerThanJW(t *testing.T) {
	g := testGraph(t, 30)
	params := ppr.Params{Alpha: 0.15, Eps: 1e-6}
	hgpa, err := BuildHGPA(g, hierarchy.Options{Seed: 3}, params, 2)
	if err != nil {
		t.Fatal(err)
	}
	jw, err := PrecomputeJW(g, hgpa.H.TotalHubs(), params, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hgpa.SpaceBytes() >= jw.SpaceBytes() {
		t.Fatalf("HGPA %d bytes ≥ PPV-JW %d bytes — partition should win",
			hgpa.SpaceBytes(), jw.SpaceBytes())
	}
}

// TestMultiFanoutExactness covers the multi-way partitioning of §6.2.5.
func TestMultiFanoutExactness(t *testing.T) {
	g := testGraph(t, 31)
	for _, fanout := range []int{4, 8} {
		s := buildStore(t, g, hierarchy.Options{Fanout: fanout, Seed: 13})
		u := int32(42)
		got, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ppr.PowerIteration(g, u, tightParams())
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(got, want); d > 1e-4 {
			t.Errorf("fanout=%d: L∞ = %v", fanout, d)
		}
	}
}

// TestLevelCapExactness covers restricted hierarchies (§6.2.4).
func TestLevelCapExactness(t *testing.T) {
	g := testGraph(t, 32)
	for _, ml := range []int{1, 2, 4} {
		s := buildStore(t, g, hierarchy.Options{MaxLevels: ml, Seed: 17})
		u := int32(7)
		got, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ppr.PowerIteration(g, u, tightParams())
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(got, want); d > 1e-4 {
			t.Errorf("MaxLevels=%d: L∞ = %v", ml, d)
		}
	}
}

// TestQueryWorkScalesDown: the deterministic per-machine load metric must
// fall as machines grow — the mechanism behind Figure 10.
func TestQueryWorkScalesDown(t *testing.T) {
	g := testGraph(t, 90)
	s := buildStore(t, g, hierarchy.Options{Seed: 90})
	work := func(machines int) int64 {
		shards, err := Split(s, machines)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, u := range []int32{5, 111, 333} {
			var maxW int64
			for _, sh := range shards {
				w, err := sh.QueryWork(u)
				if err != nil {
					t.Fatal(err)
				}
				if w > maxW {
					maxW = w
				}
			}
			total += maxW
		}
		return total
	}
	w2, w8 := work(2), work(8)
	if w8 >= w2 {
		t.Fatalf("max work did not fall: %d @2 machines vs %d @8", w2, w8)
	}
	// Expect at least ~2x improvement for 4x machines (imperfect split).
	if w8 > w2/2 {
		t.Fatalf("max work fell too little: %d → %d", w2, w8)
	}
	if _, err := Split(s, 2); err != nil {
		t.Fatal(err)
	}
	shards, _ := Split(s, 2)
	if _, err := shards[0].QueryWork(-1); err == nil {
		t.Fatal("bad node should fail")
	}
}
