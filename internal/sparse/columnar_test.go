package sparse

import (
	"reflect"
	"testing"
)

func TestColumnarRoundTrip(t *testing.T) {
	cases := []struct {
		ids    []int32
		scores []float64
	}{
		{nil, nil},
		{[]int32{3}, []float64{0.5}},
		{[]int32{0, 2, 9}, []float64{1, -2, 3.25}},               // odd count → pad
		{[]int32{1, 5, 7, 2147483647}, []float64{4, 3, 2, 1e-9}}, // even count
		{[]int32{9, 2, 5}, []float64{1, 2, 3}},                   // unordered (plan rows)
	}
	for _, c := range cases {
		buf := EncodeColumnar(c.ids, c.scores)
		if len(buf) != EncodedSizeColumnar(len(c.ids)) {
			t.Fatalf("size %d != EncodedSizeColumnar %d", len(buf), EncodedSizeColumnar(len(c.ids)))
		}
		for _, decode := range []func([]byte) ([]int32, []float64, error){DecodeColumnar, ViewColumnar} {
			ids, scores, err := decode(buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(c.ids) || len(scores) != len(c.scores) {
				t.Fatalf("round trip lengths: %d/%d want %d/%d", len(ids), len(scores), len(c.ids), len(c.scores))
			}
			for k := range ids {
				if ids[k] != c.ids[k] || scores[k] != c.scores[k] {
					t.Fatalf("entry %d: (%d,%v) want (%d,%v)", k, ids[k], scores[k], c.ids[k], c.scores[k])
				}
			}
		}
	}
}

func TestColumnarPackedMatchesWireDecode(t *testing.T) {
	v := Vector{}
	for i := int32(0); i < 57; i++ {
		v.Set(i*7%201, float64(i)+0.25)
	}
	p := Pack(v)
	buf := EncodeColumnarPacked(p)
	ids, scores, err := ViewColumnar(buf)
	if err != nil {
		t.Fatal(err)
	}
	view, err := PackedView(ids, scores)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(view.Entries(), p.Entries()) {
		t.Fatal("columnar round trip changed entries")
	}
}

// TestViewColumnarAliases: on a little-endian host with an aligned
// buffer, the view must share memory with the payload (the zero-copy
// contract DiskStore's mmap path is built on).
func TestViewColumnarAliases(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("big-endian host always copies")
	}
	buf := EncodeColumnar([]int32{1, 2, 3}, []float64{10, 20, 30})
	ids, scores, err := ViewColumnar(buf)
	if err != nil {
		t.Fatal(err)
	}
	// make's []byte is word-aligned, so the view path must have engaged.
	buf[8] = 99 // ids[0] low byte
	if ids[0] != 99 {
		t.Fatal("ids do not alias the buffer")
	}
	_ = scores
}

// TestViewColumnarMisaligned: a deliberately misaligned buffer must fall
// back to the copying decoder, not fault or return garbage.
func TestViewColumnarMisaligned(t *testing.T) {
	buf := EncodeColumnar([]int32{4, 8}, []float64{1.5, 2.5})
	shifted := make([]byte, len(buf)+1)
	copy(shifted[1:], buf)
	ids, scores, err := ViewColumnar(shifted[1:])
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != 4 || ids[1] != 8 || scores[0] != 1.5 || scores[1] != 2.5 {
		t.Fatalf("misaligned decode wrong: %v %v", ids, scores)
	}
}

func TestColumnarRejectsCorruptFraming(t *testing.T) {
	buf := EncodeColumnar([]int32{1, 2}, []float64{1, 2})
	for _, bad := range [][]byte{nil, buf[:4], buf[:len(buf)-1], append(append([]byte{}, buf...), 0)} {
		if _, _, err := DecodeColumnar(bad); err == nil {
			t.Fatalf("corrupt framing (%d bytes) accepted", len(bad))
		}
		if _, _, err := ViewColumnar(bad); err == nil {
			t.Fatalf("corrupt framing (%d bytes) accepted by view", len(bad))
		}
	}
}

func TestPackedViewValidates(t *testing.T) {
	if _, err := PackedView([]int32{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := PackedView([]int32{2, 1}, []float64{1, 2}); err == nil {
		t.Fatal("descending ids accepted")
	}
	if _, err := PackedView([]int32{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	p, err := PackedView([]int32{1, 5}, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if p.Get(5) != 0.75 || p.Get(2) != 0 {
		t.Fatal("view lookups wrong")
	}
}
