package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"exactppr/internal/sparse"
)

// vecCache is the DiskStore's vector cache: an N-way sharded CLOCK
// (second-chance) cache with per-key read coalescing. It replaces the
// old single-mutex map with random eviction, fixing both of its serving
// pathologies at once:
//
//   - lock contention: concurrent queries hash to independent shards, so
//     a hot serving box no longer serializes every cache probe on one
//     mutex;
//   - miss storms: a burst of queries missing on the same hot hub used
//     to issue one disk read PER in-flight query. Misses now coalesce
//     through a per-key flight — exactly one loader runs, everyone else
//     waits for its result;
//   - eviction quality: CLOCK gives recently referenced vectors a second
//     chance instead of evicting uniformly at random, so a scan of cold
//     leaf vectors cannot flush the path hubs every query needs.
//
// Values are cval — either a packed vector (payload sections) or a hub
// plan row — so one cache serves all store sections.
type vecCache struct {
	shards []vecCacheShard
	mask   uint32
}

// cval is one cached object. Exactly one of the two shapes is populated,
// according to the section the key belongs to.
type cval struct {
	vec  sparse.Packed
	plan planRow
}

// flightCall is one in-progress load; latecomers for the same key block
// on done instead of issuing their own read.
type flightCall struct {
	done chan struct{}
	val  cval
	err  error
}

type clockSlot struct {
	key cacheKey
	val cval
	ref bool
}

type vecCacheShard struct {
	mu     sync.Mutex
	cap    int
	pos    map[cacheKey]int // key → ring index
	ring   []clockSlot
	hand   int
	flight map[cacheKey]*flightCall
}

// diskCounters are the DiskStore's serving observability counters,
// updated atomically by the cache and surfaced via DiskStore.Stats and
// the gateway's /stats endpoint.
type diskCounters struct {
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	reads     atomic.Int64
	evictions atomic.Int64
}

// newVecCache builds a cache with the given total capacity spread over
// `shards` shards (shards must be a power of two; 0 picks a default from
// GOMAXPROCS). Per-shard capacity is at least 1, so the effective total
// is max(cap, shards).
func newVecCache(shards, capacity int) *vecCache {
	if shards <= 0 {
		shards = 1
		for shards < runtime.GOMAXPROCS(0) && shards < 32 {
			shards <<= 1
		}
	}
	c := &vecCache{shards: make([]vecCacheShard, shards), mask: uint32(shards - 1)}
	for i := range c.shards {
		c.shards[i] = vecCacheShard{
			pos:    make(map[cacheKey]int),
			flight: make(map[cacheKey]*flightCall),
		}
	}
	c.setCap(capacity)
	return c
}

func (c *vecCache) shard(k cacheKey) *vecCacheShard {
	h := uint32(k.key)*2654435761 ^ uint32(k.section)<<27
	return &c.shards[h&c.mask]
}

// setCap rebounds the total capacity, shrinking shards via the CLOCK
// policy (no arbitrary map-iteration eviction).
func (c *vecCache) setCap(total int, st ...*diskCounters) {
	if total < 1 {
		total = 1
	}
	per := max(1, total/len(c.shards))
	var counters *diskCounters
	if len(st) > 0 {
		counters = st[0]
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.cap = per
		for len(sh.ring) > sh.cap {
			sh.evictOneLocked(counters)
		}
		sh.mu.Unlock()
	}
}

// purge drops every cached value (used by Close before unmapping the
// file: cached views alias the mapping and must not survive it).
func (c *vecCache) purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.pos = make(map[cacheKey]int)
		sh.ring = sh.ring[:0]
		sh.hand = 0
		sh.mu.Unlock()
	}
}

// len reports the total cached entries (for tests and stats).
func (c *vecCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.ring)
		sh.mu.Unlock()
	}
	return n
}

// getOrLoad returns the cached value for k, or runs load exactly once
// per concurrent burst of callers and caches its result. Errors are
// broadcast to the coalesced waiters but never cached — the next caller
// retries the read.
func (c *vecCache) getOrLoad(k cacheKey, st *diskCounters, load func() (cval, error)) (cval, error) {
	sh := c.shard(k)
	sh.mu.Lock()
	if i, ok := sh.pos[k]; ok {
		sh.ring[i].ref = true
		v := sh.ring[i].val
		sh.mu.Unlock()
		st.hits.Add(1)
		return v, nil
	}
	st.misses.Add(1)
	if fc, ok := sh.flight[k]; ok {
		sh.mu.Unlock()
		st.coalesced.Add(1)
		<-fc.done
		return fc.val, fc.err
	}
	fc := &flightCall{done: make(chan struct{})}
	sh.flight[k] = fc
	sh.mu.Unlock()

	func() {
		// The flight must resolve even if load panics (a corrupt mapping
		// tripping a slice bound, say) or waiters would hang forever —
		// and it must resolve as a FAILURE: caching the zero value and
		// handing waiters (empty vector, nil error) would silently
		// corrupt query results.
		completed := false
		defer func() {
			if !completed && fc.err == nil {
				fc.err = fmt.Errorf("core: cache load for (%d,%d) panicked", k.section, k.key)
			}
			sh.mu.Lock()
			delete(sh.flight, k)
			if fc.err == nil {
				sh.insertLocked(k, fc.val, st)
			}
			sh.mu.Unlock()
			close(fc.done)
		}()
		st.reads.Add(1)
		fc.val, fc.err = load()
		completed = true
	}()
	return fc.val, fc.err
}

// insertLocked places a value, evicting one second-chance victim when
// the shard is full. Caller holds sh.mu.
func (sh *vecCacheShard) insertLocked(k cacheKey, v cval, st *diskCounters) {
	if _, ok := sh.pos[k]; ok {
		return // a racing loader of the same key already filled it
	}
	for len(sh.ring) >= sh.cap {
		sh.evictOneLocked(st)
	}
	sh.pos[k] = len(sh.ring)
	sh.ring = append(sh.ring, clockSlot{key: k, val: v})
}

// evictOneLocked runs the CLOCK hand: referenced slots get their bit
// cleared and a second chance; the first unreferenced slot is evicted.
// Caller holds sh.mu and guarantees the ring is non-empty.
func (sh *vecCacheShard) evictOneLocked(st *diskCounters) {
	for {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		if sh.ring[sh.hand].ref {
			sh.ring[sh.hand].ref = false
			sh.hand++
			continue
		}
		victim := sh.hand
		delete(sh.pos, sh.ring[victim].key)
		last := len(sh.ring) - 1
		if victim != last {
			sh.ring[victim] = sh.ring[last]
			sh.pos[sh.ring[victim].key] = victim
		}
		sh.ring = sh.ring[:last]
		if st != nil {
			st.evictions.Add(1)
		}
		return
	}
}
