// Package bsp implements the paper's distributed baselines (§6.2.8): a
// Pregel-like vertex-centric engine ("Pregel+") and a Blogel-like
// block-centric engine, both running the power-iteration PPV computation.
// The point the paper makes — and these engines reproduce — is that BSP
// power iteration needs one message exchange per iteration until
// convergence, so its communication grows with iterations, edges, and
// machine count, while GPA/HGPA need exactly one round.
//
// Workers run concurrently inside the process; messages between vertices
// on different workers are combined per (worker, target) pair — as
// Pregel+ and Blogel's sum combiners do — and accounted as 12 bytes each
// (4-byte target id + 8-byte float), mirroring the sparse wire format
// used by the cluster package so communication numbers are comparable.
package bsp

import (
	"fmt"
	"math"
	"sync"
	"time"

	"exactppr/internal/graph"
	"exactppr/internal/partition"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

// Mode selects the engine flavour.
type Mode int

const (
	// VertexCentric hashes vertices across workers (Pregel+-style) and
	// performs one global iteration per superstep.
	VertexCentric Mode = iota
	// BlockCentric places partitioned blocks on workers (Blogel-style)
	// and iterates each block to LOCAL convergence within a superstep,
	// which cuts both supersteps and cross-worker messages.
	BlockCentric
)

func (m Mode) String() string {
	if m == BlockCentric {
		return "blogel"
	}
	return "pregel+"
}

const bytesPerMessage = 12 // 4-byte target + 8-byte float64

// Engine is a BSP runner for one graph over a fixed worker layout.
type Engine struct {
	g       *graph.Graph
	mode    Mode
	workers int
	owner   []int32   // vertex → worker
	local   [][]int32 // worker → its vertices
}

// NewEngine builds an engine. For BlockCentric the graph is partitioned
// into `workers` blocks with the multilevel partitioner (seed fixed for
// determinism); for VertexCentric vertices are hash-distributed, as in
// Pregel+'s default layout.
func NewEngine(g *graph.Graph, mode Mode, workers int) (*Engine, error) {
	if workers < 1 {
		return nil, fmt.Errorf("bsp: workers = %d", workers)
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("bsp: empty graph")
	}
	e := &Engine{g: g, mode: mode, workers: workers}
	e.owner = make([]int32, n)
	switch mode {
	case VertexCentric:
		for v := 0; v < n; v++ {
			e.owner[v] = int32(v % workers)
		}
	case BlockCentric:
		if workers > 1 {
			parts, err := partition.Partition(g, workers, partition.Options{Seed: 42})
			if err != nil {
				return nil, err
			}
			e.owner = parts
		}
		g.BuildReverse() // block steps pull along in-edges
	default:
		return nil, fmt.Errorf("bsp: unknown mode %d", mode)
	}
	e.local = make([][]int32, workers)
	for v := 0; v < n; v++ {
		e.local[e.owner[v]] = append(e.local[e.owner[v]], int32(v))
	}
	return e, nil
}

// Workers returns the engine's worker count.
func (e *Engine) Workers() int { return e.workers }

// Mode returns the engine flavour.
func (e *Engine) Mode() Mode { return e.mode }

// RunStats reports one PPV computation.
type RunStats struct {
	Result sparse.Vector
	// Supersteps is the number of global BSP rounds until convergence.
	Supersteps int
	// Messages counts combined cross-worker messages over the whole run.
	Messages int64
	// NetworkBytes = Messages × 12, the communication-cost metric.
	NetworkBytes int64
	// ComputeWall is the in-process compute time (all supersteps).
	ComputeWall time.Duration
}

// RunPPV computes the PPV of q by BSP power iteration:
//
//	r(v) = α·x_q(v) + (1−α)·Σ_{u→v} r(u)/OutWeight(u)
//
// Vertex mode performs exactly one Jacobi sweep per superstep; block mode
// solves each block to local convergence per superstep treating external
// messages as fixed boundary input. Both stop when the largest value
// change in a superstep is at most Eps, matching ppr.PowerIteration.
func (e *Engine) RunPPV(q int32, p ppr.Params) (*RunStats, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := e.g.NumNodes()
	if q < 0 || int(q) >= n || e.g.IsVirtual(q) {
		return nil, fmt.Errorf("bsp: query %d invalid", q)
	}
	start := time.Now()
	stats := &RunStats{}

	cur := make([]float64, n)   // value per vertex
	inbox := make([]float64, n) // Σ delivered messages per vertex
	out := make([]map[int32]float64, e.workers)

	maxSupersteps := p.MaxIter
	if maxSupersteps <= 0 {
		maxSupersteps = 10000
	}
	for step := 0; step < maxSupersteps; step++ {
		stats.Supersteps++
		deltas := make([]float64, e.workers)
		var wg sync.WaitGroup
		wg.Add(e.workers)
		for w := 0; w < e.workers; w++ {
			go func(w int) {
				defer wg.Done()
				out[w] = make(map[int32]float64)
				if e.mode == BlockCentric {
					deltas[w] = e.blockStep(w, q, cur, inbox, out[w], p)
				} else {
					deltas[w] = e.vertexStep(w, q, cur, inbox, out[w], p)
				}
			}(w)
		}
		wg.Wait()

		// Barrier: deliver combined messages, counting boundary crossings.
		for i := range inbox {
			inbox[i] = 0
		}
		for w := 0; w < e.workers; w++ {
			for target, val := range out[w] {
				inbox[target] += val
				if e.owner[target] != int32(w) {
					stats.Messages++
				}
			}
		}

		maxDelta := 0.0
		for _, d := range deltas {
			if d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta <= p.Eps {
			break
		}
	}
	stats.NetworkBytes = stats.Messages * bytesPerMessage
	stats.ComputeWall = time.Since(start)
	res := sparse.New(256)
	for v := 0; v < n; v++ {
		if cur[v] != 0 && !e.g.IsVirtual(int32(v)) {
			res.Set(int32(v), cur[v])
		}
	}
	stats.Result = res
	return stats, nil
}

// vertexStep: one Jacobi sweep for worker w's vertices, then scatter
// cur(v)/OutWeight(v) along every out-edge (the combiner map merges).
func (e *Engine) vertexStep(w int, q int32, cur, inbox []float64, out map[int32]float64, p ppr.Params) float64 {
	var maxDelta float64
	for _, v := range e.local[w] {
		next := (1 - p.Alpha) * inbox[v]
		if v == q {
			next += p.Alpha
		}
		if d := math.Abs(next - cur[v]); d > maxDelta {
			maxDelta = d
		}
		cur[v] = next
	}
	for _, v := range e.local[w] {
		e.scatter(v, cur[v], out)
	}
	return maxDelta
}

// blockStep: solve worker w's block to local convergence, treating the
// external inbox as fixed, then scatter only boundary messages. Internal
// propagation happens in-memory, which is exactly Blogel's advantage.
func (e *Engine) blockStep(w int, q int32, cur, inbox []float64, out map[int32]float64, p ppr.Params) float64 {
	mine := e.local[w]
	var totalDelta float64
	for iter := 0; iter < 10000; iter++ {
		var localDelta float64
		for _, v := range mine {
			acc := inbox[v] // external contributions (pre-divided by deg)
			for _, u := range e.g.In(v) {
				if e.owner[u] == int32(w) && !e.g.IsVirtual(u) {
					if ow := e.g.OutWeight(u); ow > 0 {
						acc += cur[u] / float64(ow)
					}
				}
			}
			next := (1 - p.Alpha) * acc
			if v == q {
				next += p.Alpha
			}
			if d := math.Abs(next - cur[v]); d > localDelta {
				localDelta = d
			}
			cur[v] = next
		}
		if localDelta > totalDelta {
			totalDelta = localDelta
		}
		if localDelta <= p.Eps {
			break
		}
	}
	// Boundary scatter only: internal edges were handled in the solve.
	for _, v := range mine {
		if cur[v] == 0 {
			continue
		}
		ow := e.g.OutWeight(v)
		if ow == 0 {
			continue
		}
		share := cur[v] / float64(ow)
		for _, t := range e.g.Out(v) {
			if e.owner[t] != int32(w) && !e.g.IsVirtual(t) {
				out[t] += share
			}
		}
	}
	return totalDelta
}

// scatter sends v's value/OutWeight to every real out-neighbor.
func (e *Engine) scatter(v int32, val float64, out map[int32]float64) {
	if val == 0 {
		return
	}
	ow := e.g.OutWeight(v)
	if ow == 0 {
		return
	}
	share := val / float64(ow)
	for _, t := range e.g.Out(v) {
		if !e.g.IsVirtual(t) {
			out[t] += share
		}
	}
}
