// Command pprserve runs one side of the paper's distributed architecture
// over TCP, plus an HTTP/JSON gateway for ordinary web clients.
//
// Worker mode — serve shard i of n from a store file (multiplexed wire
// protocol, bounded per-connection query pool):
//
//	pprserve -store web.store -shard 0 -of 3 -listen :7001
//
// Add -updates to accept edge-delta batches (UPDATE frames from a
// coordinator, POST /edges through a gateway): each batch recomputes
// only the dirty partitions and swaps the serving snapshot atomically.
//
// Coordinator mode — query workers once and print the result:
//
//	pprserve -coordinator -workers host1:7001,host2:7002,host3:7003 -node 42
//
// Gateway mode — serve HTTP over the workers (with -conns multiplexed
// connections per worker):
//
//	pprserve -coordinator -workers host1:7001,host2:7002 -http :8080
//
// or over a local store with in-process shards (single-host quickstart):
//
//	pprserve -store web.store -of 4 -http :8080
//
// Add -disk to serve straight from the store file instead of loading it
// into memory — the §5.2 "vectors larger than main memory" deployment.
// The file is memory-mapped and vectors are folded zero-copy out of the
// page cache (-mmap=off falls back to plain reads; -cachecap bounds the
// vector cache). Works in both worker and local gateway mode; /stats
// then reports the disk cache and coalescing counters. -disk serving is
// read-only: it cannot be combined with -updates.
//
// Gateway endpoints: GET /ppv/{node}?topk=K, POST /ppv (batch or
// preference set), GET /healthz, GET /stats.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"exactppr/internal/cluster"
	"exactppr/internal/core"
	"exactppr/internal/ppr"
)

func main() {
	var (
		storePath   = flag.String("store", "ppr.store", "store file (worker / local gateway mode)")
		shard       = flag.Int("shard", 0, "shard index (worker mode)")
		of          = flag.Int("of", 1, "total machines (worker / local gateway mode)")
		listen      = flag.String("listen", ":7001", "listen address (worker mode)")
		inFlight    = flag.Int("inflight", 0, "max concurrent queries per worker connection (0 = default)")
		coordinator = flag.Bool("coordinator", false, "run as coordinator")
		workers     = flag.String("workers", "", "comma-separated worker addresses (coordinator mode)")
		conns       = flag.Int("conns", 1, "multiplexed connections per worker (coordinator mode)")
		node        = flag.Int("node", 0, "query node (coordinator one-shot mode)")
		topk        = flag.Int("topk", 10, "entries to print (coordinator one-shot mode)")
		httpAddr    = flag.String("http", "", "serve the HTTP/JSON gateway on this address")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-query timeout (gateway mode)")
		updates     = flag.Bool("updates", false, "accept edge-delta updates (worker / local gateway mode)")
		kernel      = flag.String("kernel", "auto", "recompute kernel for -updates batches: auto, dense, push")
		disk        = flag.Bool("disk", false, "serve vectors from the store file on demand instead of loading it into memory")
		mmapMode    = flag.String("mmap", "on", "disk mode: memory-map the store file (on) or force the ReadAt fallback (off)")
		cacheCap    = flag.Int("cachecap", 0, "disk mode: vectors held in the serving cache (0 = default 1024)")
	)
	flag.Parse()

	kern, err := ppr.ParseKernel(*kernel)
	if err != nil {
		fatal(err)
	}
	diskOpts, err := core.ParseDiskOptions(*mmapMode, *cacheCap)
	if err != nil {
		fatal(err)
	}

	if *coordinator {
		coord := dialCoordinator(*workers, *conns)
		if *httpAddr != "" {
			runGateway(*httpAddr, coord, *timeout)
			return
		}
		runQuery(coord, int32(*node), *topk)
		return
	}

	if *disk {
		if *updates {
			fatal(fmt.Errorf("-disk serving is read-only: drop -updates or serve from memory"))
		}
		serveDisk(*storePath, diskOpts, *shard, *of, *listen, *httpAddr, *inFlight, *timeout)
		return
	}

	store, err := core.LoadFile(*storePath)
	if err != nil {
		fatal(err)
	}
	// The kernel knob only matters for -updates recomputes; stored
	// vectors are kernel-independent, so setting it is always safe.
	store.Params.Kernel = kern

	if *httpAddr != "" {
		// Local gateway: shard the store across in-process machines and
		// serve HTTP directly — no TCP workers needed on one host. With
		// -updates the machines share one live store and POST /edges
		// applies dirty-partition batches to it.
		var backend cluster.Querier
		if *updates {
			live, err := cluster.NewLiveLocalCluster(store, *of)
			if err != nil {
				fatal(err)
			}
			backend = live
		} else {
			coord, err := cluster.NewLocalCluster(store, *of)
			if err != nil {
				fatal(err)
			}
			backend = coord
		}
		fmt.Fprintf(os.Stderr, "gateway: %d in-process shards (updates=%v)\n", *of, *updates)
		runGateway(*httpAddr, backend, *timeout)
		return
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	if *shard < 0 || *shard >= *of {
		fatal(fmt.Errorf("shard %d out of range [0,%d)", *shard, *of))
	}
	srv := &cluster.Server{MaxInFlight: *inFlight}
	var sh *core.Shard
	if *updates {
		live, err := cluster.NewLiveShard(core.NewLiveStore(store), *shard, *of)
		if err != nil {
			fatal(err)
		}
		srv.Machine, srv.Updater = live, live
		sh = live.Shard()
	} else {
		shards, err := core.Split(store, *of)
		if err != nil {
			fatal(err)
		}
		sh = shards[*shard]
		srv.Machine = &cluster.ShardMachine{Shard: sh}
	}
	fmt.Fprintf(os.Stderr, "worker: shard %d/%d (%d hubs, %d leaves, %.2f MB, updates=%v) listening on %s\n",
		*shard, *of, sh.HubCount(), sh.LeafCount(), float64(sh.SpaceBytes())/(1<<20), *updates, l.Addr())
	if err := srv.Serve(l); err != nil {
		fatal(err)
	}
}

// serveDisk runs worker or local-gateway mode over a DiskStore: the
// mmap serving path behind the same coordinator/gateway stack as the
// in-memory backends.
func serveDisk(storePath string, opts core.DiskOptions, shard, of int, listen, httpAddr string, inFlight int, timeout time.Duration) {
	ds, err := core.OpenDiskStoreWith(storePath, opts)
	if err != nil {
		fatal(err)
	}
	mode := "mmap"
	if !ds.Stats().Mmap {
		mode = "readat-fallback"
	}

	if httpAddr != "" {
		c, err := cluster.NewDiskLocalCluster(ds, of)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gateway: %d in-process disk shards (store v%d, %s)\n",
			of, ds.Stats().FormatVersion, mode)
		runGateway(httpAddr, c, timeout)
		return
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	if shard < 0 || shard >= of {
		fatal(fmt.Errorf("shard %d out of range [0,%d)", shard, of))
	}
	shards, err := core.SplitDisk(ds, of)
	if err != nil {
		fatal(err)
	}
	sh := shards[shard]
	srv := &cluster.Server{
		MaxInFlight: inFlight,
		Machine:     &cluster.LocalMachine{Backend: sh},
	}
	fmt.Fprintf(os.Stderr, "worker: disk shard %d/%d (%d hubs, %d leaves, %.2f MB on disk, store v%d, %s) listening on %s\n",
		shard, of, sh.HubCount(), sh.LeafCount(), float64(sh.SpaceBytes())/(1<<20),
		ds.Stats().FormatVersion, mode, l.Addr())
	if err := srv.Serve(l); err != nil {
		fatal(err)
	}
}

func dialCoordinator(workerList string, conns int) *cluster.Coordinator {
	addrs := strings.Split(workerList, ",")
	if workerList == "" || len(addrs) == 0 {
		fatal(fmt.Errorf("coordinator mode needs -workers"))
	}
	var machines []cluster.Machine
	for _, addr := range addrs {
		p, err := cluster.DialPool(strings.TrimSpace(addr), conns)
		if err != nil {
			fatal(fmt.Errorf("dial %s: %w", addr, err))
		}
		machines = append(machines, p)
	}
	coord, err := cluster.NewCoordinator(machines...)
	if err != nil {
		fatal(err)
	}
	return coord
}

func runQuery(coord *cluster.Coordinator, node int32, topk int) {
	stats, err := coord.Query(node)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query %d over %d workers: %v wall, %.1f KB received\n",
		node, coord.NumMachines(), stats.Wall.Round(time.Microsecond), float64(stats.BytesReceived)/1024)
	for i, e := range stats.Result.TopK(topk) {
		fmt.Printf("%3d. node %-8d %.6f\n", i+1, e.ID, e.Score)
	}
}

func runGateway(addr string, backend cluster.Querier, timeout time.Duration) {
	g := cluster.NewGateway(backend)
	g.Timeout = timeout
	machines := 0
	if c, ok := backend.(interface{ NumMachines() int }); ok {
		machines = c.NumMachines()
	}
	fmt.Fprintf(os.Stderr, "gateway: serving HTTP on %s (%d machines, %v timeout)\n",
		addr, machines, timeout)
	if err := http.ListenAndServe(addr, g.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pprserve:", err)
	os.Exit(1)
}
