package bsp

import (
	"math"
	"time"

	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

// RunPageRank computes global PageRank on the BSP engine — the "basic
// graph computing application" the paper notes these platforms ship with
// (§6.2.8). The recurrence per superstep is
//
//	r(v) = α/n + (1−α)·Σ_{u→v} r(u)/OutWeight(u)
//
// with dangling/sink mass absorbed (matching ppr.PageRank's default).
// Useful as a second workload for the engines and as a cross-check that
// the message plumbing is not PPV-specific.
func (e *Engine) RunPageRank(p ppr.Params) (*RunStats, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	stats := &RunStats{}
	n := e.g.NumNodes()
	base := p.Alpha / float64(n)

	cur := make([]float64, n)
	inbox := make([]float64, n)
	for v := range cur {
		cur[v] = 1 / float64(n)
	}
	out := make([]map[int32]float64, e.workers)
	maxSupersteps := p.MaxIter
	if maxSupersteps <= 0 {
		maxSupersteps = 10000
	}
	for step := 0; step < maxSupersteps; step++ {
		stats.Supersteps++
		// Scatter phase: every vertex sends cur/OutWeight.
		for w := 0; w < e.workers; w++ {
			out[w] = make(map[int32]float64)
			for _, v := range e.local[w] {
				e.scatter(v, cur[v], out[w])
			}
		}
		for i := range inbox {
			inbox[i] = 0
		}
		for w := 0; w < e.workers; w++ {
			for target, val := range out[w] {
				inbox[target] += val
				if e.owner[target] != int32(w) {
					stats.Messages++
				}
			}
		}
		// Gather phase.
		maxDelta := 0.0
		for v := 0; v < n; v++ {
			if e.g.IsVirtual(int32(v)) {
				continue
			}
			next := base + (1-p.Alpha)*inbox[v]
			if d := math.Abs(next - cur[v]); d > maxDelta {
				maxDelta = d
			}
			cur[v] = next
		}
		if maxDelta <= p.Eps {
			break
		}
	}
	stats.NetworkBytes = stats.Messages * bytesPerMessage
	stats.ComputeWall = time.Since(start)
	res := sparse.New(256)
	for v := 0; v < n; v++ {
		if cur[v] != 0 && !e.g.IsVirtual(int32(v)) {
			res.Set(int32(v), cur[v])
		}
	}
	stats.Result = res
	return stats, nil
}
