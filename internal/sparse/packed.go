package sparse

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
)

// Packed is the immutable, columnar representation of a sparse vector:
// ids sorted strictly ascending, scores parallel to them. It is the
// storage and wire type for every pre-computed object on the hot path —
// hub partial vectors, skeleton vectors, leaf PPVs, and query-time
// shares. Compared with the map Vector it trades mutability for
// cache-friendly sequential folds, binary-search point lookups,
// allocation-free iteration, and a canonical byte encoding (sorted
// arrays serialize directly, so identical values always produce
// identical bytes).
//
// The zero value is the empty vector. Packed values share their backing
// arrays on assignment; treat them as read-only.
type Packed struct {
	ids    []int32
	scores []float64
}

// Pack converts a map Vector into its canonical packed form, dropping
// explicit zeros.
func Pack(v Vector) Packed {
	ids := make([]int32, 0, len(v))
	for i, x := range v {
		if x != 0 {
			ids = append(ids, i)
		}
	}
	slices.Sort(ids)
	scores := make([]float64, len(ids))
	for k, i := range ids {
		scores[k] = v[i]
	}
	return Packed{ids, scores}
}

// PackEntries builds a Packed from (id, score) pairs in any order,
// dropping zero scores. Duplicate ids are rejected: entries of a vector
// are a set, and silently summing or overwriting would hide caller bugs.
//
// The sort runs over int64 keys packing (id, input index) so the hot
// path — every pre-computed vector passes through here — uses the
// specialized integer sort instead of a comparator over 12-byte
// structs. (Requires len(es) < 2³²; a vector has at most 2³¹ ids.)
func PackEntries(es []Entry) (Packed, error) {
	keys := make([]int64, 0, len(es))
	for i, e := range es {
		if e.Score != 0 {
			keys = append(keys, int64(e.ID)<<32|int64(uint32(i)))
		}
	}
	slices.Sort(keys)
	ids := make([]int32, len(keys))
	scores := make([]float64, len(keys))
	for k, key := range keys {
		id := int32(key >> 32)
		if k > 0 && id == ids[k-1] {
			return Packed{}, fmt.Errorf("sparse: duplicate id %d in entries", id)
		}
		ids[k] = id
		scores[k] = es[uint32(key)].Score
	}
	return Packed{ids, scores}, nil
}

// PackedFromDense builds a Packed from a dense slice, dropping entries
// with absolute value at or below eps. The result is sorted by
// construction — this is the truncation step of the pre-computation
// kernels.
func PackedFromDense(d []float64, eps float64) Packed {
	n := 0
	for _, x := range d {
		if math.Abs(x) > eps {
			n++
		}
	}
	ids := make([]int32, 0, n)
	scores := make([]float64, 0, n)
	for i, x := range d {
		if math.Abs(x) > eps {
			ids = append(ids, int32(i))
			scores = append(scores, x)
		}
	}
	return Packed{ids, scores}
}

// PackFromDenseIDs builds a Packed from the values of dense at the given
// ids, dropping zeros. ids must be unique; they are sorted in place.
// This is the drain step of the sparse-frontier push kernels: cost is
// O(t log t) in the touched count t, never O(len(dense)).
func PackFromDenseIDs(ids []int32, dense []float64) Packed {
	slices.Sort(ids)
	outIDs := make([]int32, 0, len(ids))
	scores := make([]float64, 0, len(ids))
	for _, id := range ids {
		if x := dense[id]; x != 0 {
			outIDs = append(outIDs, id)
			scores = append(scores, x)
		}
	}
	return Packed{outIDs, scores}
}

// InRange reports whether every id lies in [0, n) — an O(1) check
// thanks to the sorted invariant. Callers folding untrusted data (a
// store file, a wire payload) into a dense accumulator sized for n
// nodes must check this first: a corrupt id would otherwise index out
// of the scratch array.
func (p Packed) InRange(n int) bool {
	if len(p.ids) == 0 {
		return true
	}
	return p.ids[0] >= 0 && int(p.ids[len(p.ids)-1]) < n
}

// Unpack converts back to a map Vector (a fresh, exactly-sized map).
func (p Packed) Unpack() Vector {
	v := make(Vector, len(p.ids))
	for k, i := range p.ids {
		v[i] = p.scores[k]
	}
	return v
}

// Len reports the number of non-zero entries.
func (p Packed) Len() int { return len(p.ids) }

// Get returns the value at id (0 when absent) by binary search.
func (p Packed) Get(id int32) float64 {
	lo, hi := 0, len(p.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.ids) && p.ids[lo] == id {
		return p.scores[lo]
	}
	return 0
}

// At returns the k-th entry in id order.
func (p Packed) At(k int) Entry { return Entry{p.ids[k], p.scores[k]} }

// ForEach calls f for every entry in ascending id order.
func (p Packed) ForEach(f func(id int32, score float64)) {
	for k, i := range p.ids {
		f(i, p.scores[k])
	}
}

// Entries returns the entries sorted by id ascending (a fresh slice).
func (p Packed) Entries() []Entry {
	es := make([]Entry, len(p.ids))
	for k := range p.ids {
		es[k] = Entry{p.ids[k], p.scores[k]}
	}
	return es
}

// Clone deep-copies the backing arrays.
func (p Packed) Clone() Packed {
	ids := make([]int32, len(p.ids))
	scores := make([]float64, len(p.scores))
	copy(ids, p.ids)
	copy(scores, p.scores)
	return Packed{ids, scores}
}

// Sum returns the total mass Σ p_i.
func (p Packed) Sum() float64 {
	var s float64
	for _, x := range p.scores {
		s += x
	}
	return s
}

// L1 returns the l1 norm Σ|p_i|.
func (p Packed) L1() float64 {
	var s float64
	for _, x := range p.scores {
		s += math.Abs(x)
	}
	return s
}

// Truncated returns the vector without the entries of absolute value
// below min, plus the number dropped — the packed analogue of
// Store.Truncate. When nothing is droppable the receiver is returned
// as-is (sharing is safe: Packed is immutable).
func (p Packed) Truncated(min float64) (Packed, int) {
	drop := 0
	for _, x := range p.scores {
		if x < min && x > -min {
			drop++
		}
	}
	if drop == 0 {
		return p, 0
	}
	ids := make([]int32, 0, len(p.ids)-drop)
	scores := make([]float64, 0, len(p.scores)-drop)
	for k, x := range p.scores {
		if x < min && x > -min {
			continue
		}
		ids = append(ids, p.ids[k])
		scores = append(scores, x)
	}
	return Packed{ids, scores}, drop
}

// TopK returns the k highest-scoring entries, ties broken by smaller id,
// in O(n log k) with a bounded min-heap.
func (p Packed) TopK(k int) []Entry {
	sel := newTopKSelector(k)
	for i, id := range p.ids {
		sel.offer(id, p.scores[i])
	}
	return sel.take()
}

// MergePacked sums k packed vectors by streaming merge of their sorted
// id columns — the coordinator's "sum the shares" fold, no maps, no
// rehashing. Entries that cancel to exactly zero are dropped so the
// result stays canonical. A single-part merge returns that part as-is:
// Packed is immutable, so sharing is safe and saves the copy on
// one-machine clusters.
func MergePacked(parts []Packed) Packed {
	switch len(parts) {
	case 0:
		return Packed{}
	case 1:
		return parts[0]
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	ids := make([]int32, 0, total)
	scores := make([]float64, 0, total)
	// cursor per stream; pick the minimum head id each step. The stream
	// count is the machine count (small), so a linear scan beats heap
	// bookkeeping.
	cur := make([]int, len(parts))
	for {
		min := int32(math.MaxInt32)
		found := false
		for s, p := range parts {
			if cur[s] < p.Len() && (!found || p.ids[cur[s]] < min) {
				min = p.ids[cur[s]]
				found = true
			}
		}
		if !found {
			return Packed{ids, scores}
		}
		var sum float64
		for s, p := range parts {
			if cur[s] < p.Len() && p.ids[cur[s]] == min {
				sum += p.scores[cur[s]]
				cur[s]++
			}
		}
		if sum != 0 {
			ids = append(ids, min)
			scores = append(scores, sum)
		}
	}
}

// Accumulator is a reusable dense scratch buffer for query-time folds:
// adds are O(1) array writes (no hashing, no rehash growth), and the
// result drains out as a canonical Packed or map Vector. Touched slots
// are tracked in a list and invalidated by epoch stamps, so Reset is
// O(1) and a pooled accumulator never leaks values across queries.
//
// The scratch is dense: each accumulator pins 12 bytes per node id, and
// concurrent queries each hold one, so peak accumulator memory is
// 12·n·(in-flight queries) bytes. That is the deliberate trade for
// hash-free folds at the graph sizes this module targets; a
// billion-node deployment would want a sparse fallback above a node
// threshold.
//
// Not safe for concurrent use; acquire one per goroutine.
type Accumulator struct {
	scratch []float64
	stamp   []uint32
	touched []int32
	epoch   uint32
}

// accPool recycles accumulators across queries. Capacity follows the
// largest graph seen; Acquire grows the scratch when needed.
var accPool = sync.Pool{New: func() any { return &Accumulator{} }}

// AcquireAccumulator returns a pooled accumulator ready for ids in
// [0, n). Call Release when done folding.
func AcquireAccumulator(n int) *Accumulator {
	a := accPool.Get().(*Accumulator)
	a.Reset(n)
	return a
}

// Release returns the accumulator to the pool. The caller must not use
// it afterwards.
func (a *Accumulator) Release() { accPool.Put(a) }

// Reset prepares the accumulator for ids in [0, n), discarding any
// previous contents without touching the scratch array.
func (a *Accumulator) Reset(n int) {
	if cap(a.scratch) < n {
		a.scratch = make([]float64, n)
		a.stamp = make([]uint32, n)
		a.epoch = 0
	}
	a.scratch = a.scratch[:cap(a.scratch)]
	a.stamp = a.stamp[:cap(a.stamp)]
	a.touched = a.touched[:0]
	a.epoch++
	if a.epoch == 0 { // stamp wrap: all stamps are stale, clear them
		clear(a.stamp)
		a.epoch = 1
	}
}

// Add accumulates x into the slot at id. id must be within the range
// given to Reset/Acquire.
func (a *Accumulator) Add(id int32, x float64) {
	if a.stamp[id] != a.epoch {
		a.stamp[id] = a.epoch
		a.scratch[id] = x
		a.touched = append(a.touched, id)
		return
	}
	a.scratch[id] += x
}

// AddPacked folds c·p into the accumulator — the hot inner loop of
// every query: one sequential pass over the columnar arrays.
func (a *Accumulator) AddPacked(p Packed, c float64) {
	if c == 0 {
		return
	}
	for k, id := range p.ids {
		a.Add(id, c*p.scores[k])
	}
}

// AddVector folds c·v into the accumulator.
func (a *Accumulator) AddVector(v Vector, c float64) {
	if c == 0 {
		return
	}
	for id, x := range v {
		a.Add(id, c*x)
	}
}

// Get returns the accumulated value at id (0 for any id outside the
// scratch range).
func (a *Accumulator) Get(id int32) float64 {
	if id < 0 || int(id) >= len(a.stamp) || a.stamp[id] != a.epoch {
		return 0
	}
	return a.scratch[id]
}

// Len reports the number of touched slots (including exact-zero
// cancellations, which are dropped on drain).
func (a *Accumulator) Len() int { return len(a.touched) }

// Packed drains the accumulator into a canonical Packed: the touched
// list is sorted once, zeros from cancellation are dropped. The
// accumulator remains valid (and unchanged) afterwards.
func (a *Accumulator) Packed() Packed {
	slices.Sort(a.touched)
	ids := make([]int32, 0, len(a.touched))
	scores := make([]float64, 0, len(a.touched))
	for _, id := range a.touched {
		if x := a.scratch[id]; x != 0 {
			ids = append(ids, id)
			scores = append(scores, x)
		}
	}
	return Packed{ids, scores}
}

// Vector drains the accumulator into a fresh, exactly-sized map Vector.
func (a *Accumulator) Vector() Vector {
	v := make(Vector, len(a.touched))
	for _, id := range a.touched {
		if x := a.scratch[id]; x != 0 {
			v[id] = x
		}
	}
	return v
}

// TopK returns the k highest-scoring accumulated entries (ties to the
// smaller id) without draining.
func (a *Accumulator) TopK(k int) []Entry {
	sel := newTopKSelector(k)
	for _, id := range a.touched {
		if x := a.scratch[id]; x != 0 {
			sel.offer(id, x)
		}
	}
	return sel.take()
}

// topKSelector is a bounded min-heap of the k best entries seen so far:
// O(n log k) instead of the O(n log n) full sort, which is the
// per-request cost the gateway pays on every ?topk=K query. The heap
// root is the worst kept entry (lowest score; ties prefer evicting the
// larger id).
type topKSelector struct {
	k    int
	heap []Entry
}

func newTopKSelector(k int) *topKSelector {
	if k < 0 {
		k = 0
	}
	return &topKSelector{k: k, heap: make([]Entry, 0, min(k, 64))}
}

// worse reports whether a ranks below b (a would be evicted first).
func worse(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

func (s *topKSelector) offer(id int32, score float64) {
	e := Entry{id, score}
	if len(s.heap) < s.k {
		s.heap = append(s.heap, e)
		// sift up
		i := len(s.heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !worse(s.heap[i], s.heap[parent]) {
				break
			}
			s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
			i = parent
		}
		return
	}
	if s.k == 0 || !worse(s.heap[0], e) {
		return // e is no better than the current worst
	}
	s.heap[0] = e
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s.heap) && worse(s.heap[l], s.heap[smallest]) {
			smallest = l
		}
		if r < len(s.heap) && worse(s.heap[r], s.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.heap[i], s.heap[smallest] = s.heap[smallest], s.heap[i]
		i = smallest
	}
}

// take returns the kept entries ordered by score descending, ties by
// smaller id — the presentation order of every TopK in the module.
func (s *topKSelector) take() []Entry {
	es := s.heap
	sort.Slice(es, func(a, b int) bool { return worse(es[b], es[a]) })
	return es
}
