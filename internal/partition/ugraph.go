// Package partition implements a METIS-style multilevel graph partitioner
// (heavy-edge-matching coarsening, greedy region-growing initial bisection,
// Fiduccia–Mattheyses boundary refinement) plus the paper's hub-node
// selection: the bridging nodes between parts are chosen as a vertex cover
// of the cut edges — minimum via König's theorem for 2-way cuts, greedy
// 2-approximation otherwise (Appendix D).
package partition

import (
	"sort"

	"exactppr/internal/graph"
)

// ugraph is the undirected weighted working representation used across
// coarsening levels. Vertices carry weights (number of original nodes they
// stand for) and parallel edges are merged with summed weights.
type ugraph struct {
	xadj   []int32 // CSR offsets, len n+1
	adjncy []int32 // neighbor ids
	adjwgt []int32 // edge weights, parallel to adjncy
	vwgt   []int32 // vertex weights, len n
}

func (u *ugraph) numNodes() int { return len(u.vwgt) }

func (u *ugraph) neighbors(v int32) ([]int32, []int32) {
	return u.adjncy[u.xadj[v]:u.xadj[v+1]], u.adjwgt[u.xadj[v]:u.xadj[v+1]]
}

func (u *ugraph) totalWeight() int64 {
	var t int64
	for _, w := range u.vwgt {
		t += int64(w)
	}
	return t
}

// undirectedView collapses a directed graph into the ugraph form: edge
// (a,b) exists when a→b or b→a exists; weight is the number of directed
// edges between the pair (1 or 2).
func undirectedView(g *graph.Graph) *ugraph {
	n := g.NumNodes()
	type pair struct{ a, b int32 }
	w := make(map[pair]int32, g.NumEdges())
	for a := int32(0); a < int32(n); a++ {
		for _, b := range g.Out(a) {
			p := pair{a, b}
			if b < a {
				p = pair{b, a}
			}
			w[p]++
		}
	}
	deg := make([]int32, n+1)
	for p := range w {
		deg[p.a+1]++
		deg[p.b+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	adjncy := make([]int32, 2*len(w))
	adjwgt := make([]int32, 2*len(w))
	next := make([]int32, n)
	copy(next, deg[:n])
	for p, wt := range w {
		adjncy[next[p.a]] = p.b
		adjwgt[next[p.a]] = wt
		next[p.a]++
		adjncy[next[p.b]] = p.a
		adjwgt[next[p.b]] = wt
		next[p.b]++
	}
	vwgt := make([]int32, n)
	for i := range vwgt {
		vwgt[i] = 1
	}
	ug := &ugraph{xadj: deg, adjncy: adjncy, adjwgt: adjwgt, vwgt: vwgt}
	ug.sortAdj()
	return ug
}

// sortAdj sorts each adjacency list by id, keeping weights aligned. Sorted
// lists make coarse-graph construction and tests deterministic.
func (u *ugraph) sortAdj() {
	for v := 0; v < u.numNodes(); v++ {
		lo, hi := u.xadj[v], u.xadj[v+1]
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = int(lo) + i
		}
		sort.Slice(idx, func(a, b int) bool { return u.adjncy[idx[a]] < u.adjncy[idx[b]] })
		nc := make([]int32, hi-lo)
		nw := make([]int32, hi-lo)
		for i, j := range idx {
			nc[i] = u.adjncy[j]
			nw[i] = u.adjwgt[j]
		}
		copy(u.adjncy[lo:hi], nc)
		copy(u.adjwgt[lo:hi], nw)
	}
}

// cutWeight returns the total weight of edges crossing the bisection
// defined by side (0/1 per vertex).
func (u *ugraph) cutWeight(side []int8) int64 {
	var cut int64
	for v := int32(0); v < int32(u.numNodes()); v++ {
		nbrs, wts := u.neighbors(v)
		for i, nb := range nbrs {
			if nb > v && side[nb] != side[v] {
				cut += int64(wts[i])
			}
		}
	}
	return cut
}
