// Updates: keep serving exact PPV queries while the graph changes.
//
// The demo builds an HGPA store over a community graph, wraps it in a
// LiveStore, and streams random edge-delta batches at it. After every
// batch it (a) reports how much of the store the dirty-partition
// recompute actually touched, and (b) cross-checks a few queries
// against a from-scratch rebuild of the updated graph — the
// incremental snapshot and the rebuild must agree to ~1e-9.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"exactppr/internal/core"
	"exactppr/internal/gen"
	"exactppr/internal/graph"
	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

func main() {
	g, err := gen.Community(gen.Config{
		Nodes: 400, AvgOutDegree: 4, Communities: 4,
		InterFrac: 0.05, MinOutDegree: 1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	params := ppr.Params{Alpha: 0.15, Eps: 1e-12}
	opts := hierarchy.Options{Seed: 3}
	store, err := core.BuildHGPA(g, opts, params, 0)
	if err != nil {
		log.Fatal(err)
	}
	live := core.NewLiveStore(store)
	fmt.Printf("built store: %d nodes, %d edges, %d hubs, %d leaf vectors\n",
		g.NumNodes(), g.NumEdges(), len(store.HubPartial), len(store.LeafPPV))

	rng := rand.New(rand.NewSource(42))
	totalRecomputed, totalFull := 0, 0
	for batch := 1; batch <= 8; batch++ {
		d := randomDelta(rng, live.Store().H.G, 4)
		info, err := live.ApplyUpdates(d, 0)
		if err != nil {
			log.Fatal(err)
		}
		totalRecomputed += info.Recomputed
		totalFull += info.StoreVectors
		fmt.Printf("batch %d: +%d/-%d edges, %d dirty partitions, %d promoted, recomputed %d of %d vectors (%.1f%%) in %v\n",
			batch, info.Inserted, info.Deleted, info.DirtyNodes, info.Promoted,
			info.Recomputed, info.StoreVectors,
			100*float64(info.Recomputed)/float64(info.StoreVectors), info.Wall.Round(1000))

		// Equivalence check: the incrementally maintained store answers
		// exactly like a from-scratch build of the updated graph.
		snap := live.Store()
		fresh, err := core.BuildHGPA(rebuild(snap.H.G), opts, params, 0)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for _, u := range []int32{1, 99, 250, 399} {
			a, err := snap.Query(u)
			if err != nil {
				log.Fatal(err)
			}
			b, err := fresh.Query(u)
			if err != nil {
				log.Fatal(err)
			}
			if d := sparse.LInfDistance(a, b); d > worst {
				worst = d
			}
		}
		if worst > 1e-9 {
			log.Fatalf("batch %d: incremental store diverged from rebuild: L∞ = %g", batch, worst)
		}
		fmt.Printf("         equivalence vs rebuild: worst L∞ = %.2g ✓\n", worst)
	}
	fmt.Printf("\nacross all batches: recomputed %d vectors where rebuilds would have computed %d (%.1fx saving)\n",
		totalRecomputed, totalFull, float64(totalFull)/float64(totalRecomputed))
}

func randomDelta(rng *rand.Rand, g *graph.Graph, ops int) graph.Delta {
	var d graph.Delta
	n := int32(g.NumNodes())
	for i := 0; i < ops; i++ {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			d.Delete = append(d.Delete, [2]int32{u, v})
		} else {
			d.Insert = append(d.Insert, [2]int32{u, v})
		}
	}
	return d
}

func rebuild(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumNodes())
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Out(u) {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}
