package graph

import (
	"math/rand"
	"testing"
)

func edgeSet(g *Graph) map[[2]int32]bool {
	set := make(map[[2]int32]bool, g.NumEdges())
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Out(u) {
			set[[2]int32{u, v}] = true
		}
	}
	return set
}

func buildFrom(n int, set map[[2]int32]bool) *Graph {
	b := NewBuilder(n)
	for e := range set {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func graphsEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d nodes, %d/%d edges",
			got.NumNodes(), want.NumNodes(), got.NumEdges(), want.NumEdges())
	}
	for u := int32(0); u < int32(want.NumNodes()); u++ {
		g, w := got.Out(u), want.Out(u)
		if len(g) != len(w) {
			t.Fatalf("node %d: %d out-edges, want %d", u, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("node %d edge %d: %d, want %d", u, i, g[i], w[i])
			}
		}
		if got.OutWeight(u) != want.OutWeight(u) {
			t.Fatalf("node %d OutWeight %d, want %d", u, got.OutWeight(u), want.OutWeight(u))
		}
	}
}

func TestApplyDeltaBasics(t *testing.T) {
	g := FromAdjacency([][]int32{{1, 2}, {2}, {0}, {}})
	ins, del, err := (Delta{Insert: [][2]int32{{3, 0}, {0, 1}}, Delete: [][2]int32{{1, 2}, {2, 1}}}).Effective(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || ins[0] != [2]int32{3, 0} {
		t.Fatalf("effective inserts = %v (existing edge must be dropped)", ins)
	}
	if len(del) != 1 || del[0] != [2]int32{1, 2} {
		t.Fatalf("effective deletes = %v (missing edge must be dropped)", del)
	}

	ni, nd, err := g.ApplyDelta(Delta{Insert: [][2]int32{{3, 0}, {0, 1}}, Delete: [][2]int32{{1, 2}, {2, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if ni != 1 || nd != 1 {
		t.Fatalf("applied %d/%d, want 1/1", ni, nd)
	}
	if !g.HasEdge(3, 0) || g.HasEdge(1, 2) || !g.HasEdge(0, 1) {
		t.Fatal("edge set wrong after delta")
	}
	if g.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", g.Epoch())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	g := FromAdjacency([][]int32{{1}, {}})
	if _, _, err := g.ApplyDelta(Delta{Insert: [][2]int32{{0, 5}}}); err == nil {
		t.Fatal("out-of-range insert should fail")
	}
	if _, _, err := g.ApplyDelta(Delta{Delete: [][2]int32{{-1, 0}}}); err == nil {
		t.Fatal("negative delete should fail")
	}
	if _, _, err := g.ApplyDelta(Delta{Insert: [][2]int32{{1, 0}}, Delete: [][2]int32{{1, 0}}}); err == nil {
		t.Fatal("insert+delete of one edge should fail")
	}
	// Self-loops and no-ops are skipped, not errors.
	ni, nd, err := g.ApplyDelta(Delta{Insert: [][2]int32{{0, 0}, {0, 1}}, Delete: [][2]int32{{1, 0}}})
	if err != nil || ni != 0 || nd != 0 {
		t.Fatalf("no-op delta: %d/%d inserted/deleted, err %v", ni, nd, err)
	}
	if g.Epoch() != 0 {
		t.Fatal("no-op delta must not bump the epoch")
	}
	sub := VirtualSubgraph(g, []int32{0})
	if _, _, err := sub.G.ApplyDelta(Delta{Insert: [][2]int32{{0, 0}}}); err == nil {
		t.Fatal("virtual subgraphs must be immutable")
	}
}

// TestApplyDeltaRandomizedMatchesRebuild: applying random batches in
// place always equals rebuilding the graph from the updated edge set.
func TestApplyDeltaRandomizedMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 60
	set := make(map[[2]int32]bool)
	for i := 0; i < 150; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			set[[2]int32{u, v}] = true
		}
	}
	g := buildFrom(n, set)
	for batch := 0; batch < 30; batch++ {
		var d Delta
		for i := 0; i < 1+rng.Intn(6); i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			e := [2]int32{u, v}
			if u == v {
				continue
			}
			if set[e] {
				if !containsEdge(d.Insert, e) && !containsEdge(d.Delete, e) {
					d.Delete = append(d.Delete, e)
					delete(set, e)
				}
			} else if !containsEdge(d.Insert, e) && !containsEdge(d.Delete, e) {
				d.Insert = append(d.Insert, e)
				set[e] = true
			}
		}
		if _, _, err := g.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		graphsEqual(t, g, buildFrom(n, set))
	}
}

func containsEdge(es [][2]int32, e [2]int32) bool {
	for _, x := range es {
		if x == e {
			return true
		}
	}
	return false
}

// TestReverseCacheEpochAware: In() must reflect post-delta adjacency —
// the old sync.Once cache would have served stale in-edges forever.
func TestReverseCacheEpochAware(t *testing.T) {
	g := FromAdjacency([][]int32{{1}, {2}, {}})
	if got := g.In(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("In(2) = %v", got)
	}
	if _, _, err := g.ApplyDelta(Delta{Insert: [][2]int32{{0, 2}}, Delete: [][2]int32{{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if got := g.In(2); len(got) != 1 || got[0] != 0 {
		t.Fatalf("In(2) after delta = %v (stale reverse cache?)", got)
	}
	if got := g.In(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("In(1) after delta = %v", got)
	}
}
