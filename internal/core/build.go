package core

import (
	"exactppr/internal/graph"
	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
)

// BuildGPA builds the single-level graph-partition store of §3: the graph
// is divided into m balanced parts, the bridging nodes become the (only)
// hub set, and the non-hub "leaf" vectors are the local PPVs of the
// parts' virtual subgraphs — which by Theorem 2 equal the partial vectors
// GPA stores. GPA is thus the depth-1 special case of HGPA, sharing the
// same exact construction.
func BuildGPA(g *graph.Graph, m int, params ppr.Params, workers int, seed int64) (*Store, error) {
	h, err := hierarchy.Build(g, hierarchy.Options{
		Fanout:    m,
		MaxLevels: 1,
		Seed:      seed,
	})
	if err != nil {
		return nil, err
	}
	return Precompute(h, params, workers)
}

// BuildHGPA builds the full hierarchical store of §4: recursive two-way
// (or fanout-way) partitioning down to edge-free subgraphs, hub sets per
// level, and the complete pre-computation of §5.
func BuildHGPA(g *graph.Graph, opts hierarchy.Options, params ppr.Params, workers int) (*Store, error) {
	h, err := hierarchy.Build(g, opts)
	if err != nil {
		return nil, err
	}
	return Precompute(h, params, workers)
}
