package hierarchy

import (
	"math/rand"
	"testing"

	"exactppr/internal/gen"
	"exactppr/internal/graph"
)

func testCommunity(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.Community(gen.Config{
		Nodes: 220, AvgOutDegree: 3, Communities: 4,
		InterFrac: 0.05, MinOutDegree: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestApplyDeltaDirtyIsTailPaths: the dirty set of a batch with no
// separator violations is exactly the union of the tails' root-to-home
// chains.
func TestApplyDeltaDirtyIsTailPaths(t *testing.T) {
	g := testCommunity(t, 1)
	h, err := Build(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Delete an existing edge: deletions never promote, so the dirty set
	// must equal Path(tail) exactly.
	var tail, head int32 = -1, -1
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		if len(g.Out(u)) > 0 {
			tail, head = u, g.Out(u)[0]
			break
		}
	}
	upd, err := h.ApplyDelta(graph.Delta{Delete: [][2]int32{{tail, head}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(upd.Promoted) != 0 {
		t.Fatalf("deletion promoted %v", upd.Promoted)
	}
	want := map[int]bool{}
	for _, n := range h.Path(tail) {
		want[n.ID] = true
	}
	if len(upd.Dirty) != len(want) {
		t.Fatalf("dirty %d nodes, want %d (the tail's path)", len(upd.Dirty), len(want))
	}
	for _, n := range upd.Dirty {
		if !want[n.ID] {
			t.Fatalf("node %d dirty but not on Path(%d)", n.ID, tail)
		}
	}
	// The receiver is untouched.
	if err := h.Validate(); err != nil {
		t.Fatalf("snapshot hierarchy corrupted: %v", err)
	}
}

// TestApplyDeltaPromotionRestoresSeparator: an insert crossing two
// children of a node must promote its tail into that node's hub set,
// and the updated hierarchy must validate against the updated graph.
func TestApplyDeltaPromotionRestoresSeparator(t *testing.T) {
	g := testCommunity(t, 3)
	h, err := Build(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Find two non-hub nodes in different children of the root.
	root := h.Root
	if len(root.Children) < 2 {
		t.Skip("root did not split")
	}
	tail := root.Children[0].Members[0]
	head := root.Children[1].Members[0]
	for h.IsHub(tail) {
		t.Fatal("picked a hub tail")
	}
	upd, err := h.ApplyDelta(graph.Delta{Insert: [][2]int32{{tail, head}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(upd.Promoted) != 1 || upd.Promoted[0] != tail {
		t.Fatalf("promoted %v, want [%d]", upd.Promoted, tail)
	}
	if !upd.H.IsHub(tail) || upd.H.Home(tail) != upd.H.Root {
		t.Fatalf("tail %d not promoted to root hub", tail)
	}
	if h.IsHub(tail) {
		t.Fatal("promotion leaked into the snapshot hierarchy")
	}
	if _, _, err := g.ApplyDelta(graph.Delta{Insert: [][2]int32{{tail, head}}}); err != nil {
		t.Fatal(err)
	}
	upd.RefreshSubgraphs()
	if err := upd.H.Validate(); err != nil {
		t.Fatalf("updated hierarchy invalid: %v", err)
	}
}

// TestApplyDeltaRandomizedInvariants hammers the surgery: random
// batches against a live graph, validating the hierarchy (separators,
// partitions, indexes) after every batch.
func TestApplyDeltaRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := testCommunity(t, 7)
	h, err := Build(g, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	n := int32(g.NumNodes())
	for batch := 0; batch < 25; batch++ {
		var d graph.Delta
		for i := 0; i < 1+rng.Intn(5); i++ {
			u, v := rng.Int31n(n), rng.Int31n(n)
			if u == v {
				continue
			}
			if g.HasEdge(u, v) {
				d.Delete = append(d.Delete, [2]int32{u, v})
			} else {
				d.Insert = append(d.Insert, [2]int32{u, v})
			}
		}
		upd, err := h.ApplyDelta(d)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if _, _, err := g.ApplyDelta(d); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		upd.RefreshSubgraphs()
		if err := upd.H.Validate(); err != nil {
			t.Fatalf("batch %d: hierarchy invalid: %v", batch, err)
		}
		// Dirty nodes must be sorted and deduplicated.
		for i := 1; i < len(upd.Dirty); i++ {
			if upd.Dirty[i-1].ID >= upd.Dirty[i].ID {
				t.Fatalf("batch %d: dirty list not strictly sorted", batch)
			}
		}
		h = upd.H
	}
}
