package matching

import (
	"math/rand"
	"testing"
)

func bip(l, r int, edges [][2]int32) *BipartiteGraph {
	g := &BipartiteGraph{L: l, R: r, Adj: make([][]int32, l)}
	for _, e := range edges {
		g.Adj[e[0]] = append(g.Adj[e[0]], e[1])
	}
	return g
}

func validMatching(t *testing.T, g *BipartiteGraph, matchL, matchR []int32, size int) {
	t.Helper()
	count := 0
	for l, r := range matchL {
		if r == unmatched {
			continue
		}
		count++
		if matchR[r] != int32(l) {
			t.Fatalf("matchL/matchR inconsistent at l=%d r=%d", l, r)
		}
		found := false
		for _, rr := range g.Adj[l] {
			if rr == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("matched pair (%d,%d) is not an edge", l, r)
		}
	}
	if count != size {
		t.Fatalf("size %d but %d matched pairs", size, count)
	}
}

func TestHopcroftKarpPerfect(t *testing.T) {
	// 3x3 with a perfect matching.
	g := bip(3, 3, [][2]int32{{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 2}})
	matchL, matchR, size := HopcroftKarp(g)
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	validMatching(t, g, matchL, matchR, size)
}

func TestHopcroftKarpStar(t *testing.T) {
	// All left vertices point at right vertex 0: max matching 1.
	g := bip(4, 1, [][2]int32{{0, 0}, {1, 0}, {2, 0}, {3, 0}})
	_, _, size := HopcroftKarp(g)
	if size != 1 {
		t.Fatalf("size = %d, want 1", size)
	}
}

func TestHopcroftKarpEmpty(t *testing.T) {
	g := bip(3, 3, nil)
	_, _, size := HopcroftKarp(g)
	if size != 0 {
		t.Fatalf("size = %d, want 0", size)
	}
	g = bip(0, 0, nil)
	_, _, size = HopcroftKarp(g)
	if size != 0 {
		t.Fatalf("empty graph size = %d", size)
	}
}

func TestHopcroftKarpAugmenting(t *testing.T) {
	// Classic case that requires an augmenting path:
	// 0-0, 0-1, 1-0. Greedy might match 0-0 then block 1; HK must find 2.
	g := bip(2, 2, [][2]int32{{0, 0}, {0, 1}, {1, 0}})
	_, _, size := HopcroftKarp(g)
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
}

func coverSize(left, right []bool) int {
	n := 0
	for _, b := range left {
		if b {
			n++
		}
	}
	for _, b := range right {
		if b {
			n++
		}
	}
	return n
}

func coversAll(g *BipartiteGraph, left, right []bool) bool {
	for l := 0; l < g.L; l++ {
		for _, r := range g.Adj[l] {
			if !left[l] && !right[r] {
				return false
			}
		}
	}
	return true
}

func TestKonigSmall(t *testing.T) {
	g := bip(3, 3, [][2]int32{{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 2}})
	left, right := MinVertexCover(g)
	if !coversAll(g, left, right) {
		t.Fatal("not a cover")
	}
	_, _, size := HopcroftKarp(g)
	if got := coverSize(left, right); got != size {
		t.Fatalf("König violated: |cover| = %d, matching = %d", got, size)
	}
}

func TestKonigStar(t *testing.T) {
	g := bip(5, 1, [][2]int32{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}})
	left, right := MinVertexCover(g)
	if !coversAll(g, left, right) {
		t.Fatal("not a cover")
	}
	if got := coverSize(left, right); got != 1 {
		t.Fatalf("star cover size = %d, want 1 (the hub)", got)
	}
	if !right[0] {
		t.Fatal("the star center must be the cover")
	}
}

// Property: on random bipartite graphs, König's theorem holds — the cover
// produced is a valid cover with |cover| == max matching size.
func TestKonigRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		l := 1 + rng.Intn(20)
		r := 1 + rng.Intn(20)
		var edges [][2]int32
		for e := 0; e < rng.Intn(60); e++ {
			edges = append(edges, [2]int32{int32(rng.Intn(l)), int32(rng.Intn(r))})
		}
		g := bip(l, r, edges)
		matchL, matchR, size := HopcroftKarp(g)
		validMatching(t, g, matchL, matchR, size)
		left, right := MinVertexCover(g)
		if !coversAll(g, left, right) {
			t.Fatalf("trial %d: not a cover", trial)
		}
		if got := coverSize(left, right); got != size {
			t.Fatalf("trial %d: |cover| = %d != matching %d", trial, got, size)
		}
	}
}

func TestGreedyVertexCover(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	cover := GreedyVertexCover(edges)
	if !IsVertexCover(edges, cover) {
		t.Fatal("greedy result is not a cover")
	}
	// 2-approximation bound: the 4-cycle has min VC 2, so ≤ 4.
	if len(cover) > 4 {
		t.Fatalf("cover size %d exceeds 2-approx bound", len(cover))
	}
}

func TestGreedyVertexCoverEmpty(t *testing.T) {
	if c := GreedyVertexCover(nil); len(c) != 0 {
		t.Fatalf("empty edge set cover = %v", c)
	}
	if !IsVertexCover(nil, nil) {
		t.Fatal("empty edge set is covered by anything")
	}
}

// Property: greedy cover is valid and within 2× of max matching lower bound
// on random edge sets.
func TestGreedyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		var edges []Edge
		n := 2 + rng.Intn(30)
		for e := 0; e < rng.Intn(80); e++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				edges = append(edges, Edge{u, v})
			}
		}
		cover := GreedyVertexCover(edges)
		if !IsVertexCover(edges, cover) {
			t.Fatalf("trial %d: invalid cover", trial)
		}
		// The greedy cover has size 2·|maximal matching| and any VC is at
		// least |maximal matching| ≥ |cover|/2, so a cover smaller than
		// half is impossible — sanity only; main check is validity above.
		if len(edges) > 0 && len(cover) == 0 {
			t.Fatalf("trial %d: empty cover for nonempty edges", trial)
		}
	}
}
