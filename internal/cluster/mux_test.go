package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exactppr/internal/core"
	"exactppr/internal/sparse"
)

// gateMachine wraps a Machine and holds every query at the gate until
// released, counting arrivals — the instrument for proving genuine
// in-flight concurrency on the worker side.
type gateMachine struct {
	inner   Machine
	entered atomic.Int64
	release chan struct{}
}

func newGateMachine(inner Machine) *gateMachine {
	return &gateMachine{inner: inner, release: make(chan struct{})}
}

func (g *gateMachine) wait(ctx context.Context) error {
	select {
	case <-g.release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gateMachine) QueryShare(ctx context.Context, u int32) ([]byte, time.Duration, error) {
	g.entered.Add(1)
	if err := g.wait(ctx); err != nil {
		return nil, 0, err
	}
	return g.inner.QueryShare(ctx, u)
}

func (g *gateMachine) QuerySetShare(ctx context.Context, p core.Preference) ([]byte, time.Duration, error) {
	g.entered.Add(1)
	if err := g.wait(ctx); err != nil {
		return nil, 0, err
	}
	return g.inner.QuerySetShare(ctx, p)
}

func startWorker(t *testing.T, m Machine) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(l, m)
	return l.Addr().String(), func() { l.Close() }
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMux64InFlightOneConnection: a single worker holds 64 queries
// simultaneously in flight over ONE multiplexed TCP connection, and when
// released every response demuxes back to the caller that asked for it.
func TestMux64InFlightOneConnection(t *testing.T) {
	s := testStore(t)
	shards, err := core.Split(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	gate := newGateMachine(&ShardMachine{Shard: shards[0]})
	addr, stop := startWorker(t, gate)
	defer stop()
	m, err := DialMachine(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const inFlight = 64
	errs := make([]error, inFlight)
	payloads := make([][]byte, inFlight)
	var wg sync.WaitGroup
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payloads[i], _, errs[i] = m.QueryShare(context.Background(), int32(i))
		}(i)
	}
	// All 64 must reach the worker's gate before anything is answered:
	// that is ≥64 concurrent in-flight queries on one connection.
	waitFor(t, "64 in-flight queries", func() bool { return gate.entered.Load() == inFlight })
	close(gate.release)
	wg.Wait()

	for i := 0; i < inFlight; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		got, err := sparse.Decode(payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := shards[0].QueryVector(int32(i))
		if err != nil {
			t.Fatal(err)
		}
		// Each caller must get the answer to ITS source node — any demux
		// mix-up swaps whole distinct vectors and trips this immediately.
		if d := sparse.LInfDistance(got, want); d != 0 {
			t.Fatalf("query %d demuxed wrong response, L∞ = %v", i, d)
		}
	}
}

// delayMachine adds a fixed latency to every query, standing in for the
// network + compute time of a realistically loaded worker.
type delayMachine struct {
	inner Machine
	delay time.Duration
}

func (d *delayMachine) QueryShare(ctx context.Context, u int32) ([]byte, time.Duration, error) {
	select {
	case <-time.After(d.delay):
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
	return d.inner.QueryShare(ctx, u)
}

func (d *delayMachine) QuerySetShare(ctx context.Context, p core.Preference) ([]byte, time.Duration, error) {
	select {
	case <-time.After(d.delay):
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
	return d.inner.QuerySetShare(ctx, p)
}

// TestThroughputScalesWithConcurrency: with 20ms of per-query worker
// latency, 32 concurrent clients on ONE multiplexed connection finish in
// a fraction of the 32×20ms a lock-step protocol would need — the old
// protocol's 1/latency throughput cap is gone.
func TestThroughputScalesWithConcurrency(t *testing.T) {
	s := testStore(t)
	shards, err := core.Split(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	const delay = 20 * time.Millisecond
	const clients = 32
	addr, stop := startWorker(t, &delayMachine{inner: &ShardMachine{Shard: shards[0]}, delay: delay})
	defer stop()
	m, err := DialMachine(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Query(int32(i))
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	// Lock-step would take clients×delay = 640ms; overlapped in-flight
	// queries should take ~delay. A 4× margin keeps slow CI hosts green
	// while still proving genuine overlap.
	if lockStep := time.Duration(clients) * delay; wall > lockStep/4 {
		t.Fatalf("32 concurrent queries took %v — not overlapping (lock-step would be %v)", wall, lockStep)
	}
}

// recordingListener hands accepted connections to the test so it can
// sever them mid-flight, simulating a worker crash.
type recordingListener struct {
	net.Listener
	conns chan net.Conn
}

func (l *recordingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.conns <- c
	}
	return c, err
}

// TestWorkerKilledMidFlight: severing the worker connection fails every
// in-flight query promptly (no hangs) while a healthy worker keeps
// serving untouched.
func TestWorkerKilledMidFlight(t *testing.T) {
	s := testStore(t)
	shards, err := core.Split(s, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Doomed worker, gated so queries are provably in flight at the kill.
	gate := newGateMachine(&ShardMachine{Shard: shards[0]})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	rl := &recordingListener{Listener: inner, conns: make(chan net.Conn, 1)}
	go Serve(rl, gate)
	doomed, err := DialMachine(rl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer doomed.Close()

	// Healthy worker.
	healthyAddr, stopHealthy := startWorker(t, &ShardMachine{Shard: shards[1]})
	defer stopHealthy()
	healthy, err := DialMachine(healthyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	const inFlight = 16
	errs := make([]error, inFlight)
	var wg sync.WaitGroup
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = doomed.QueryShare(context.Background(), int32(i))
		}(i)
	}
	waitFor(t, "in-flight queries", func() bool { return gate.entered.Load() == inFlight })

	workerConn := <-rl.conns
	workerConn.Close() // kill the worker mid-flight

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight queries hung after worker death")
	}
	for i, err := range errs {
		if err == nil {
			t.Fatalf("query %d succeeded after its worker was killed", i)
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("query %d: want a transport error, got %v", i, err)
		}
	}
	if doomed.Healthy() {
		t.Fatal("dead transport still reports healthy")
	}

	// The other worker is untouched.
	if _, _, err := healthy.QueryShare(context.Background(), 1); err != nil {
		t.Fatalf("healthy worker affected by sibling death: %v", err)
	}

	// A coordinator over the pair surfaces the dead machine as one clean
	// error (extending the TestCoordinatorPropagatesDeadMachine contract).
	c, err := NewCoordinator(doomed, healthy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(1); err == nil {
		t.Fatal("coordinator must propagate the dead machine")
	}
}

// TestMuxContextTimeout: a per-query deadline abandons only that query;
// the connection survives and the late response is silently discarded.
func TestMuxContextTimeout(t *testing.T) {
	s := testStore(t)
	shards, err := core.Split(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	gate := newGateMachine(&ShardMachine{Shard: shards[0]})
	addr, stop := startWorker(t, gate)
	defer stop()
	m, err := DialMachine(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, err := m.QueryShare(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	close(gate.release) // the abandoned query now completes server-side

	// Same connection, fresh query: the stale response must not be
	// delivered to the new request id.
	payload, _, err := m.QueryShare(context.Background(), 2)
	if err != nil {
		t.Fatalf("connection should survive an abandoned query: %v", err)
	}
	got, err := sparse.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	want, err := shards[0].QueryVector(2)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.LInfDistance(got, want); d != 0 {
		t.Fatalf("post-timeout query demuxed wrong response, L∞ = %v", d)
	}
}

// TestCoordinatorTimeout: the coordinator-level default deadline turns a
// stuck worker into a clean deadline error.
func TestCoordinatorTimeout(t *testing.T) {
	s := testStore(t)
	shards, err := core.Split(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	gate := newGateMachine(&ShardMachine{Shard: shards[0]})
	defer close(gate.release)
	addr, stop := startWorker(t, gate)
	defer stop()
	m, err := DialMachine(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 50 * time.Millisecond
	if _, err := c.Query(1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestPool: round-robin over several multiplexed connections, surviving
// the death of one of them.
func TestPool(t *testing.T) {
	s := testStore(t)
	shards, err := core.Split(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startWorker(t, &ShardMachine{Shard: shards[0]})
	defer stop()
	p, err := DialPool(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = p.QueryShare(context.Background(), int32(i%8))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("pooled query %d: %v", i, err)
		}
	}

	// One broken socket must not poison the pool: the slot is either
	// skipped or re-dialed while the worker is alive.
	p.conns[0].Close()
	for i := 0; i < 6; i++ {
		if _, _, err := p.QueryShare(context.Background(), 1); err != nil {
			t.Fatalf("pool should route around a dead connection: %v", err)
		}
	}
	// …and the background heal restores full parallelism.
	waitFor(t, "pool heal", func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		for _, m := range p.conns {
			if !m.Healthy() {
				return false
			}
		}
		return true
	})

	// Worker gone entirely: every socket dead and re-dial refused — the
	// pool must error cleanly, not hang.
	stop()
	for _, m := range p.conns {
		m.Close()
	}
	if _, _, err := p.QueryShare(context.Background(), 1); err == nil {
		t.Fatal("pool with an unreachable worker must error")
	}

	// A restarted worker on the same address heals the pool via re-dial.
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer l.Close()
	go Serve(l, &ShardMachine{Shard: shards[0]})
	if _, _, err := p.QueryShare(context.Background(), 1); err != nil {
		t.Fatalf("pool should re-dial a restarted worker: %v", err)
	}
}

// TestCoordinatorConcurrentQueries: many goroutines share one coordinator
// over multiplexed TCP machines; every answer matches the central store.
func TestCoordinatorConcurrentQueries(t *testing.T) {
	s := testStore(t)
	shards, err := core.Split(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	var machines []Machine
	for _, sh := range shards {
		addr, stop := startWorker(t, &ShardMachine{Shard: sh})
		defer stop()
		m, err := DialMachine(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		machines = append(machines, m)
	}
	c, err := NewCoordinator(machines...)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 16
	const perClient = 8
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				u := int32((g*perClient + j) % 300)
				stats, err := c.Query(u)
				if err != nil {
					errCh <- fmt.Errorf("u=%d: %w", u, err)
					return
				}
				want, err := s.Query(u)
				if err != nil {
					errCh <- err
					return
				}
				if d := sparse.LInfDistance(stats.Result.Unpack(), want); d > 1e-12 {
					errCh <- fmt.Errorf("u=%d: concurrent distributed ≠ central, L∞ = %v", u, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// BenchmarkTCPCoordinator measures query throughput against one TCP
// worker over one multiplexed connection. The parallel variant issues
// queries from many goroutines; on a multi-core runner it must beat the
// serial variant because the worker executes frames on its goroutine
// pool instead of one at a time.
func BenchmarkTCPCoordinator(b *testing.B) {
	s := benchStore(b)
	shards, err := core.Split(s, 1)
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go Serve(l, &ShardMachine{Shard: shards[0]})
	m, err := DialMachine(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	c, err := NewCoordinator(m)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Query(int32(i % 300)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		var next atomic.Int64
		b.SetParallelism(4) // 4×GOMAXPROCS client goroutines
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				u := int32(next.Add(1) % 300)
				if _, err := c.Query(u); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkTCPCoordinatorLatency is the same comparison with 2ms of
// injected worker latency — the regime the multiplexed protocol exists
// for. Serial throughput is capped at 1/latency; the parallel variant
// overlaps in-flight queries on one connection and lands at a small
// fraction of that, regardless of host core count.
func BenchmarkTCPCoordinatorLatency(b *testing.B) {
	s := benchStore(b)
	shards, err := core.Split(s, 1)
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	const delay = 2 * time.Millisecond
	go Serve(l, &delayMachine{inner: &ShardMachine{Shard: shards[0]}, delay: delay})
	m, err := DialMachine(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	c, err := NewCoordinator(m)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Query(int32(i % 300)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		var next atomic.Int64
		b.SetParallelism(32)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				u := int32(next.Add(1) % 300)
				if _, err := c.Query(u); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

func benchStore(b *testing.B) *core.Store {
	b.Helper()
	// Same shape as testStore, rebuilt here because testing.T and
	// testing.B don't share helpers.
	s, err := buildStore()
	if err != nil {
		b.Fatal(err)
	}
	return s
}
