package metrics

import (
	"math"
	"testing"

	"exactppr/internal/sparse"
)

func TestAvgL1AndLInf(t *testing.T) {
	a := sparse.Vector{1: 0.5, 2: 0.3}
	b := sparse.Vector{1: 0.4, 3: 0.1}
	if got := AvgL1(a, b, 10); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("AvgL1 = %v, want 0.05", got)
	}
	if got := LInf(a, b); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("LInf = %v, want 0.3", got)
	}
	if AvgL1(a, a, 10) != 0 || LInf(a, a) != 0 {
		t.Fatal("distance to self must be 0")
	}
	if AvgL1(a, b, 0) != 0 {
		t.Fatal("n=0 guard")
	}
}

func TestPrecisionAtK(t *testing.T) {
	exact := sparse.Vector{1: 0.5, 2: 0.4, 3: 0.3, 4: 0.2}
	perfect := exact.Clone()
	if got := PrecisionAtK(exact, perfect, 3); got != 1 {
		t.Fatalf("perfect precision = %v", got)
	}
	// Approx swaps node 3 out for node 4.
	approx := sparse.Vector{1: 0.5, 2: 0.4, 4: 0.3, 3: 0.1}
	if got := PrecisionAtK(exact, approx, 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v, want 2/3", got)
	}
	if got := PrecisionAtK(exact, approx, 0); got != 1 {
		t.Fatalf("k=0 = %v", got)
	}
	// k larger than support: denominator shrinks to the exact list size.
	if got := PrecisionAtK(exact, exact, 100); got != 1 {
		t.Fatalf("k>support precision = %v", got)
	}
}

func TestRAG(t *testing.T) {
	exact := sparse.Vector{1: 0.5, 2: 0.4, 3: 0.3, 4: 0.2}
	if got := RAG(exact, exact, 2); got != 1 {
		t.Fatalf("perfect RAG = %v", got)
	}
	// Approx top-2 = {1, 4}: captured exact mass 0.7 of best 0.9.
	approx := sparse.Vector{1: 9, 4: 8, 2: 1, 3: 1}
	if got := RAG(exact, approx, 2); math.Abs(got-0.7/0.9) > 1e-12 {
		t.Fatalf("RAG = %v, want %v", got, 0.7/0.9)
	}
	if got := RAG(sparse.Vector{}, approx, 2); got != 1 {
		t.Fatalf("empty exact RAG = %v", got)
	}
}

func TestKendallAtK(t *testing.T) {
	exact := sparse.Vector{1: 0.5, 2: 0.4, 3: 0.3, 4: 0.2}
	if got := KendallAtK(exact, exact, 4); got != 1 {
		t.Fatalf("perfect Kendall = %v", got)
	}
	// Fully reversed order: 0 correct pairs.
	rev := sparse.Vector{1: 0.1, 2: 0.2, 3: 0.3, 4: 0.4}
	if got := KendallAtK(exact, rev, 4); got != 0 {
		t.Fatalf("reversed Kendall = %v, want 0", got)
	}
	// One adjacent swap among 4 items: 5/6 pairs still ordered.
	swap := sparse.Vector{1: 0.5, 2: 0.25, 3: 0.3, 4: 0.2}
	if got := KendallAtK(exact, swap, 4); math.Abs(got-5.0/6) > 1e-12 {
		t.Fatalf("one-swap Kendall = %v, want 5/6", got)
	}
	// Ties in approx count half.
	tied := sparse.Vector{1: 0.5, 2: 0.3, 3: 0.3, 4: 0.2}
	if got := KendallAtK(exact, tied, 4); math.Abs(got-(5.0+0.5)/6) > 1e-12 {
		t.Fatalf("tied Kendall = %v", got)
	}
	if got := KendallAtK(sparse.Vector{1: 1}, nil, 5); got != 1 {
		t.Fatalf("short list Kendall = %v", got)
	}
}

func TestTopKOverlapIDs(t *testing.T) {
	exact := sparse.Vector{1: 0.5, 2: 0.4, 3: 0.3}
	approx := sparse.Vector{2: 0.9, 7: 0.8, 1: 0.7}
	got := TopKOverlapIDs(exact, approx, 3)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("overlap = %v, want [1 2]", got)
	}
}
