package montecarlo

import (
	"testing"

	"exactppr/internal/gen"
	"exactppr/internal/graph"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

func params() ppr.Params { return ppr.Params{Alpha: 0.15, Eps: 1e-8} }

func TestErrors(t *testing.T) {
	if _, err := NewEngine(graph.FromAdjacency(nil)); err == nil {
		t.Fatal("empty graph should fail")
	}
	g := graph.FromAdjacency([][]int32{{1}, {0}})
	e, err := NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(-1, 10, params(), 1); err == nil {
		t.Fatal("bad query should fail")
	}
	if _, err := e.Estimate(0, 0, params(), 1); err == nil {
		t.Fatal("zero walks should fail")
	}
	if _, err := e.Estimate(0, 10, ppr.Params{Alpha: 2, Eps: 1}, 1); err == nil {
		t.Fatal("bad params should fail")
	}
	if _, err := e.EstimateSharded(0, 2, 0, params(), 1); err == nil {
		t.Fatal("zero machines should fail")
	}
	if _, err := e.EstimateSharded(0, 2, 5, params(), 1); err == nil {
		t.Fatal("fewer walks than machines should fail")
	}
}

func TestEstimateIsDistribution(t *testing.T) {
	g := gen.ErdosRenyi(200, 3, 5)
	e, err := NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Estimate(0, 5000, params(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if s := v.Sum(); s > 1+1e-12 {
		t.Fatalf("estimate mass %v > 1", s)
	}
	for id, x := range v {
		if x < 0 {
			t.Fatalf("negative estimate at %d: %v", id, x)
		}
	}
}

func TestConvergesToPowerIteration(t *testing.T) {
	g := mustCfg()
	e, err := NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ppr.PowerIteration(g, 5, params())
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := e.Estimate(5, 500, params(), 3)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := e.Estimate(5, 50000, params(), 3)
	if err != nil {
		t.Fatal(err)
	}
	coarseErr := sparse.L1Distance(coarse, exact)
	fineErr := sparse.L1Distance(fine, exact)
	if fineErr >= coarseErr {
		t.Fatalf("more walks did not help: %v vs %v", fineErr, coarseErr)
	}
	// 1/√R scaling: 100× walks should cut L1 error by several times.
	if fineErr > coarseErr/2 {
		t.Fatalf("error reduction too small: %v vs %v", fineErr, coarseErr)
	}
	if d := sparse.LInfDistance(fine, exact); d > 0.02 {
		t.Fatalf("50k walks still far from exact: L∞ = %v", d)
	}
}

func mustCfg() *graph.Graph {
	g, err := gen.Community(gen.Config{
		Nodes: 150, AvgOutDegree: 4, Communities: 2,
		InterFrac: 0.1, MinOutDegree: 1, Seed: 9,
	})
	if err != nil {
		panic(err)
	}
	return g
}

func TestDeterministicForSeed(t *testing.T) {
	g := gen.ErdosRenyi(80, 3, 2)
	e, _ := NewEngine(g)
	a, err := e.Estimate(1, 1000, params(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := e.Estimate(1, 1000, params(), 42)
	if d := sparse.LInfDistance(a, b); d != 0 {
		t.Fatalf("not deterministic: %v", d)
	}
}

func TestShardedMatchesAggregate(t *testing.T) {
	g := gen.ErdosRenyi(150, 3, 4)
	e, _ := NewEngine(g)
	stats, err := e.EstimateSharded(2, 20000, 5, params(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BytesMerged <= 0 {
		t.Fatal("no merge bytes accounted")
	}
	if s := stats.Result.Sum(); s > 1+1e-9 {
		t.Fatalf("sharded mass %v > 1", s)
	}
	exact, err := ppr.PowerIteration(g, 2, params())
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.LInfDistance(stats.Result, exact); d > 0.05 {
		t.Fatalf("sharded estimate far off: %v", d)
	}
}

func TestDanglingAbsorption(t *testing.T) {
	// 0 → 1 with 1 dangling: walks ending at 1 terminate there with
	// prob α after arriving; mass leaks like the exact semantics.
	g := graph.FromAdjacency([][]int32{{1}, {}})
	e, _ := NewEngine(g)
	v, err := e.Estimate(0, 200000, params(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Exact: r0 = α = 0.15, r1 = α(1−α) ≈ 0.1275.
	if d := v.Get(0) - 0.15; d > 0.01 || d < -0.01 {
		t.Fatalf("r0 ≈ %v, want ≈ 0.15", v.Get(0))
	}
	if d := v.Get(1) - 0.1275; d > 0.01 || d < -0.01 {
		t.Fatalf("r1 ≈ %v, want ≈ 0.1275", v.Get(1))
	}
}

func TestVirtualSinkAbsorption(t *testing.T) {
	// Virtual subgraph: walks that would leave the member set die.
	full := graph.FromAdjacency([][]int32{{1, 2}, {0}, {}})
	vs := graph.VirtualSubgraph(full, []int32{0, 1})
	e, _ := NewEngine(vs.G)
	v, err := e.Estimate(vs.Local(0), 100000, params(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if v.Get(vs.G.VirtualSink()) != 0 {
		t.Fatal("sink must not accumulate endpoint mass")
	}
	exact, err := ppr.PowerIteration(vs.G, vs.Local(0), params())
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.LInfDistance(v, exact); d > 0.01 {
		t.Fatalf("virtual-subgraph estimate off: %v", d)
	}
}
