package core

import (
	"math/rand"
	"testing"

	"exactppr/internal/gen"
	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

// TestQuickExactnessRandomized is the randomized end-to-end exactness
// property: for random community graphs, random hierarchy shapes, and
// random query nodes, HGPA ≡ power iteration and the shard decomposition
// sums exactly. This is the paper's Theorems 1/3/4 hammered with fuzz.
func TestQuickExactnessRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	p := ppr.Params{Alpha: 0.15, Eps: 1e-8}
	for trial := 0; trial < 6; trial++ {
		g, err := gen.Community(gen.Config{
			Nodes:        100 + rng.Intn(200),
			AvgOutDegree: 2 + rng.Float64()*3,
			Communities:  1 + rng.Intn(4),
			InterFrac:    rng.Float64() * 0.2,
			MinOutDegree: 1,
			Seed:         int64(trial) * 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		opts := hierarchy.Options{
			Fanout:    2 + rng.Intn(3),
			MaxLevels: rng.Intn(6), // 0 = unbounded
			Seed:      int64(trial),
		}
		s, err := BuildHGPA(g, opts, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		machines := 1 + rng.Intn(7)
		shards, err := Split(s, machines)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			u := int32(rng.Intn(g.NumNodes()))
			got, err := s.Query(u)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ppr.PowerIteration(g, u, p)
			if err != nil {
				t.Fatal(err)
			}
			if d := sparse.LInfDistance(got, want); d > 1e-4 {
				t.Fatalf("trial %d u=%d (fanout=%d levels=%d): L∞ = %v",
					trial, u, opts.Fanout, opts.MaxLevels, d)
			}
			sum := sparse.New(0)
			for _, sh := range shards {
				v, err := sh.QueryVector(u)
				if err != nil {
					t.Fatal(err)
				}
				sum.AddScaled(v, 1)
			}
			if d := sparse.LInfDistance(sum, got); d > 1e-12 {
				t.Fatalf("trial %d u=%d: shards off by %v", trial, u, d)
			}
		}
	}
}

// TestQuickStoreMassBounds: every stored vector is a sub-probability
// vector (entries ≥ 0, sum ≤ 1), for random builds.
func TestQuickStoreMassBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	p := ppr.Params{Alpha: 0.15, Eps: 1e-7}
	for trial := 0; trial < 4; trial++ {
		g, err := gen.Community(gen.Config{
			Nodes: 150, AvgOutDegree: 3, Communities: 2,
			InterFrac: 0.1, MinOutDegree: 1, Seed: int64(trial + 40),
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := BuildHGPA(g, hierarchy.Options{Seed: int64(rng.Intn(100))}, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		// HubPartial and LeafPPV are rows of a (sub-)stochastic PPV
		// matrix: entries ≥ 0 and total mass ≤ 1. Skeleton[h] is a
		// COLUMN — one entry per source node — so only the per-entry
		// bound applies.
		checkRow := func(kind string, m map[int32]sparse.Packed) {
			for key, v := range m {
				var sum float64
				for _, e := range v.Entries() {
					if e.Score < -1e-12 {
						t.Fatalf("%s[%d]: negative entry at %d", kind, key, e.ID)
					}
					sum += e.Score
				}
				if sum > 1+1e-6 {
					t.Fatalf("%s[%d]: mass %v > 1", kind, key, sum)
				}
			}
		}
		checkRow("HubPartial", s.HubPartial)
		checkRow("LeafPPV", s.LeafPPV)
		for key, v := range s.Skeleton {
			for _, e := range v.Entries() {
				if e.Score < -1e-12 || e.Score > 1+1e-9 {
					t.Fatalf("Skeleton[%d]: entry %v at %d out of [0,1]", key, e.Score, e.ID)
				}
			}
		}
	}
}

// TestQuickPersistFuzz: loading truncated prefixes of a valid store file
// must return an error, never panic or silently succeed.
func TestQuickPersistFuzz(t *testing.T) {
	g := testGraph(t, 72)
	s, err := BuildGPA(g, 3, ppr.Params{Alpha: 0.15, Eps: 1e-5}, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	var full sliceBuf
	if err := Save(&full, s); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 30; trial++ {
		cut := rng.Intn(len(full.b))
		if cut == len(full.b) {
			continue
		}
		if _, err := Load(&sliceReader{b: full.b[:cut]}); err == nil {
			t.Fatalf("truncation at %d/%d loaded successfully", cut, len(full.b))
		}
	}
}

type sliceBuf struct{ b []byte }

func (s *sliceBuf) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

type sliceReader struct {
	b   []byte
	pos int
}

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.pos >= len(s.b) {
		return 0, errShortRead
	}
	n := copy(p, s.b[s.pos:])
	s.pos += n
	return n, nil
}

var errShortRead = shortReadError{}

type shortReadError struct{}

func (shortReadError) Error() string { return "EOF" }
