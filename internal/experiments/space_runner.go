package experiments

import (
	"fmt"

	"exactppr/internal/core"
	"exactppr/internal/hierarchy"
)

// runSpace makes §3.2's space analysis concrete: the pre-computation size
// of the brute-force PPV-JW extension (flat PageRank hubs — partial
// vector supports roam the whole graph) versus GPA (separator hubs
// confine them to parts) versus HGPA (hierarchy shrinks them further).
// This is the paper's core argument for why partitioned hubs make exact
// PPV storage feasible.
func runSpace(cfg Config) ([]Table, error) {
	var tables []Table
	for _, dsName := range []string{"email", "web"} {
		hgpa, err := buildStore(cfg, dsName, hierarchy.Options{})
		if err != nil {
			return nil, err
		}
		gpa, err := buildStore(cfg, dsName, hierarchy.Options{Fanout: cfg.Machines, MaxLevels: 1})
		if err != nil {
			return nil, err
		}
		// PPV-JW with the same hub budget HGPA ended up using.
		jw, err := core.PrecomputeJW(hgpa.ds.G, hgpa.store.H.TotalHubs(), cfg.params(), cfg.Workers)
		if err != nil {
			return nil, err
		}
		hs := hgpa.store.Stats()
		gs := gpa.store.Stats()
		t := Table{
			Title: fmt.Sprintf("Pre-computation space (§3.2/§4.5) — %s analogue, %d hubs",
				hgpa.ds.Name, hgpa.store.H.TotalHubs()),
			Header: []string{"Method", "Space(MB)", "StoredEntries", "vs PPV-JW"},
		}
		jwBytes := jw.SpaceBytes()
		row := func(name string, bytes int64, entries int64) []string {
			return []string{
				name, mb(bytes), fmt.Sprint(entries),
				fmt.Sprintf("%.2fx", float64(bytes)/float64(jwBytes)),
			}
		}
		var jwEntries int64
		for _, v := range jw.Partial {
			jwEntries += int64(v.Len())
		}
		for _, v := range jw.Skeleton {
			jwEntries += int64(v.Len())
		}
		t.Rows = append(t.Rows,
			row("PPV-JW", jwBytes, jwEntries),
			row("GPA", gpa.store.SpaceBytes(), gs.PartialEntries+gs.SkeletonEntries+gs.LeafEntries),
			row("HGPA", hgpa.store.SpaceBytes(), hs.PartialEntries+hs.SkeletonEntries+hs.LeafEntries),
		)
		tables = append(tables, t)
	}
	return tables, nil
}
