package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"slices"

	"exactppr/internal/graph"
	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

// Store persistence. The file carries the graph (as a binary edge list),
// the hierarchy OPTIONS (hierarchy construction is deterministic for a
// seed, so the tree is rebuilt rather than serialized — this also sidesteps
// the parent-pointer cycles a naive encoder would choke on), the PPR
// parameters, and the vector sections.
//
// Two versions exist. Version 2 (written by Save) is designed for
// zero-copy memory-mapped serving; version 1 files remain fully
// loadable and disk-queryable.
//
// Version 2 layout (little-endian throughout):
//
//	magic "EXPPRST2"
//	params:    alpha, eps float64; maxIter, dangling int32
//	hierarchy: fanout, maxLevels, minSize int32; imbalance float64; seed int64
//	graph:     n, m int32; m × (u, v int32)
//	4 sections (hub partials, skeletons, leaf PPVs, hub plans):
//	           count int32; count × (key int32, payloadLen int32,
//	           pad to 8-byte file offset, columnar payload)
//
// Vector payloads use the columnar layout of sparse.EncodeColumnar —
// the 8-byte alignment of every payload is what lets a mapped DiskStore
// alias the id/score arrays in place. The fourth section is the
// TRANSPOSED skeleton index (see plan.go): per query node, the (hub,
// s_u(h)) pairs its fold needs, in fold order, so a disk query never
// reads a skeleton payload.
//
// Version 1 ("EXPPRST1") carries the same header and the first three
// sections with interleaved wire payloads (sparse.Encode) and no
// alignment; Load and OpenDiskStore accept it, synthesizing the plan
// section in memory at open.

var (
	storeMagic   = [8]byte{'E', 'X', 'P', 'P', 'R', 'S', 'T', '1'}
	storeMagicV2 = [8]byte{'E', 'X', 'P', 'P', 'R', 'S', 'T', '2'}
)

// maxVecLen bounds a single payload record (sanity for corrupt files).
const maxVecLen = 1 << 30

// countingWriter tracks the absolute file offset through a buffered
// writer so Save can pad payloads to 8-byte offsets.
type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// checkSavable rejects incrementally updated stores (graph epoch > 0):
// the file format rebuilds the hierarchy deterministically from (graph,
// options), which cannot reproduce an update-maintained tree — its hub
// promotions are a function of the delta history, not of the final
// graph. Rebuild with BuildHGPA/Precompute on the updated graph first.
func checkSavable(s *Store) error {
	if s.H.G.Epoch() != 0 {
		return fmt.Errorf("core: cannot save an incrementally updated store (graph epoch %d): rebuild from the updated graph first", s.H.G.Epoch())
	}
	return nil
}

// writeStoreHeader emits everything up to the vector sections — shared
// verbatim between both format versions.
func writeStoreHeader(w io.Writer, params ppr.Params, opts hierarchy.Options, g *graph.Graph) {
	writeU64 := func(x uint64) { binary.Write(w, binary.LittleEndian, x) }
	writeI32 := func(x int32) { binary.Write(w, binary.LittleEndian, x) }

	writeU64(math.Float64bits(params.Alpha))
	writeU64(math.Float64bits(params.Eps))
	writeI32(int32(params.MaxIter))
	writeI32(int32(params.Dangling))

	writeI32(int32(opts.Fanout))
	writeI32(int32(opts.MaxLevels))
	writeI32(int32(opts.MinSize))
	writeU64(math.Float64bits(opts.Imbalance))
	writeU64(uint64(opts.Seed))

	writeI32(int32(g.NumNodes()))
	writeI32(int32(g.NumEdges()))
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Out(u) {
			writeI32(u)
			writeI32(v)
		}
	}
}

func sortedKeys[V any](m map[int32]V) []int32 {
	keys := make([]int32, 0, len(m))
	for key := range m {
		keys = append(keys, key)
	}
	slices.Sort(keys)
	return keys
}

// Save writes the store to w in format version 2. Keys are written
// sorted and plan rows are rank-ordered, so saving the same store twice
// yields byte-identical files.
func Save(w io.Writer, s *Store) error {
	if err := checkSavable(s); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &countingWriter{w: bw}
	if _, err := cw.Write(storeMagicV2[:]); err != nil {
		return err
	}
	writeStoreHeader(cw, s.Params, s.H.Opts, s.H.G)

	writeI32 := func(x int32) { binary.Write(cw, binary.LittleEndian, x) }
	var zeros [8]byte
	writeRecord := func(key int32, payload []byte) error {
		writeI32(key)
		writeI32(int32(len(payload)))
		if pad := int((8 - cw.n%8) % 8); pad > 0 {
			if _, err := cw.Write(zeros[:pad]); err != nil {
				return err
			}
		}
		_, err := cw.Write(payload)
		return err
	}

	for _, section := range []map[int32]sparse.Packed{s.HubPartial, s.Skeleton, s.LeafPPV} {
		writeI32(int32(len(section)))
		for _, key := range sortedKeys(section) {
			if err := writeRecord(key, sparse.EncodeColumnarPacked(section[key])); err != nil {
				return err
			}
		}
	}
	plans := buildHubPlans(s.H, s.Skeleton)
	writeI32(int32(len(plans)))
	for _, key := range sortedKeys(plans) {
		row := plans[key]
		if err := writeRecord(key, sparse.EncodeColumnar(row.hubs, row.s)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// saveV1 writes the legacy version-1 format (interleaved wire payloads,
// no plan section). Kept for the cross-version compatibility tests; new
// files should always be written by Save.
func saveV1(w io.Writer, s *Store) error {
	if err := checkSavable(s); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(storeMagic[:]); err != nil {
		return err
	}
	writeStoreHeader(bw, s.Params, s.H.Opts, s.H.G)
	writeI32 := func(x int32) { binary.Write(bw, binary.LittleEndian, x) }
	for _, section := range []map[int32]sparse.Packed{s.HubPartial, s.Skeleton, s.LeafPPV} {
		writeI32(int32(len(section)))
		for _, key := range sortedKeys(section) {
			writeI32(key)
			enc := sparse.EncodePacked(section[key])
			writeI32(int32(len(enc)))
			if _, err := bw.Write(enc); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SaveFile writes the store to a file path.
func SaveFile(path string, s *Store) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readStoreHeader parses the magic, parameters, hierarchy options, and
// graph — the shared prefix of both format versions — and reports which
// version follows.
func readStoreHeader(cr *countingReader) (version int, params ppr.Params, opts hierarchy.Options, g *graph.Graph, err error) {
	var magic [8]byte
	if _, err = io.ReadFull(cr, magic[:]); err != nil {
		return 0, params, opts, nil, err
	}
	switch magic {
	case storeMagic:
		version = 1
	case storeMagicV2:
		version = 2
	default:
		return 0, params, opts, nil, fmt.Errorf("core: not a store file (magic %q)", magic)
	}

	readU64 := func() (x uint64, err error) {
		err = binary.Read(cr, binary.LittleEndian, &x)
		return
	}
	readI32 := func() (x int32, err error) {
		err = binary.Read(cr, binary.LittleEndian, &x)
		return
	}

	var bits uint64
	var x int32
	if bits, err = readU64(); err != nil {
		return
	}
	params.Alpha = math.Float64frombits(bits)
	if bits, err = readU64(); err != nil {
		return
	}
	params.Eps = math.Float64frombits(bits)
	if x, err = readI32(); err != nil {
		return
	}
	params.MaxIter = int(x)
	if x, err = readI32(); err != nil {
		return
	}
	params.Dangling = ppr.DanglingPolicy(x)

	if x, err = readI32(); err != nil {
		return
	}
	opts.Fanout = int(x)
	if x, err = readI32(); err != nil {
		return
	}
	opts.MaxLevels = int(x)
	if x, err = readI32(); err != nil {
		return
	}
	opts.MinSize = int(x)
	if bits, err = readU64(); err != nil {
		return
	}
	opts.Imbalance = math.Float64frombits(bits)
	if bits, err = readU64(); err != nil {
		return
	}
	opts.Seed = int64(bits)

	var n, m int32
	if n, err = readI32(); err != nil {
		return
	}
	if m, err = readI32(); err != nil {
		return
	}
	if n < 0 || m < 0 {
		err = fmt.Errorf("core: corrupt store header (n=%d m=%d)", n, m)
		return
	}
	b := graph.NewBuilder(int(n))
	for e := int32(0); e < m; e++ {
		var u, v int32
		if u, err = readI32(); err != nil {
			return
		}
		if v, err = readI32(); err != nil {
			return
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			err = fmt.Errorf("core: corrupt edge (%d,%d)", u, v)
			return
		}
		b.AddEdge(u, v)
	}
	g = b.Build()
	return
}

// readRecordMeta reads one section record's (key, payload length) and —
// for version 2 — consumes the alignment padding, leaving the reader at
// the payload.
func readRecordMeta(cr *countingReader, version int) (key, vlen int32, err error) {
	if err = binary.Read(cr, binary.LittleEndian, &key); err != nil {
		return
	}
	if err = binary.Read(cr, binary.LittleEndian, &vlen); err != nil {
		return
	}
	if vlen < 0 || vlen > maxVecLen {
		err = fmt.Errorf("core: corrupt vector length %d", vlen)
		return
	}
	if version == 2 {
		if pad := (8 - cr.n%8) % 8; pad > 0 {
			if err = cr.skip(pad); err != nil {
				return
			}
		}
	}
	return
}

// decodeSectionPayload turns one vector record's bytes into a Packed
// under the right codec for the file version.
func decodeSectionPayload(version int, buf []byte) (sparse.Packed, error) {
	if version == 1 {
		return sparse.DecodePacked(buf)
	}
	ids, scores, err := sparse.DecodeColumnar(buf)
	if err != nil {
		return sparse.Packed{}, err
	}
	return sparse.PackedView(ids, scores)
}

// Load reads a store written by Save (either format version), rebuilding
// the hierarchy deterministically from the stored options. The version-2
// plan section is validated and discarded: an in-memory store folds
// skeletons directly, but a truncated or corrupt trailer must still be
// reported at load time, not at first serve.
func Load(r io.Reader) (*Store, error) {
	cr := &countingReader{r: bufio.NewReaderSize(r, 1<<20)}
	version, params, opts, g, err := readStoreHeader(cr)
	if err != nil {
		return nil, err
	}
	h, err := hierarchy.Build(g, opts)
	if err != nil {
		return nil, err
	}
	s := &Store{H: h, Params: params}
	sections := []*map[int32]sparse.Packed{&s.HubPartial, &s.Skeleton, &s.LeafPPV}
	for _, section := range sections {
		var count int32
		if err := binary.Read(cr, binary.LittleEndian, &count); err != nil {
			return nil, err
		}
		if count < 0 {
			return nil, fmt.Errorf("core: corrupt section count %d", count)
		}
		mp := make(map[int32]sparse.Packed, count)
		for i := int32(0); i < count; i++ {
			key, vlen, err := readRecordMeta(cr, version)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, vlen)
			if _, err := io.ReadFull(cr, buf); err != nil {
				return nil, err
			}
			vec, err := decodeSectionPayload(version, buf)
			if err != nil {
				return nil, err
			}
			if !vec.InRange(g.NumNodes()) {
				return nil, fmt.Errorf("core: vector for key %d has node ids outside [0,%d) (corrupt store?)", key, g.NumNodes())
			}
			mp[key] = vec
		}
		*section = mp
	}
	if version == 2 {
		var count int32
		if err := binary.Read(cr, binary.LittleEndian, &count); err != nil {
			return nil, err
		}
		if count < 0 {
			return nil, fmt.Errorf("core: corrupt plan section count %d", count)
		}
		for i := int32(0); i < count; i++ {
			key, vlen, err := readRecordMeta(cr, version)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, vlen)
			if _, err := io.ReadFull(cr, buf); err != nil {
				return nil, err
			}
			hubs, _, err := sparse.DecodeColumnar(buf)
			if err != nil {
				return nil, fmt.Errorf("core: hub plan for %d: %w", key, err)
			}
			for _, hub := range hubs {
				if hub < 0 || int(hub) >= g.NumNodes() {
					return nil, fmt.Errorf("core: hub plan for %d references out-of-range hub %d (corrupt store?)", key, hub)
				}
			}
		}
	}
	// Consistency: every hub in the hierarchy must have its vectors.
	for _, hub := range hubsOf(h) {
		if _, ok := s.HubPartial[hub]; !ok {
			return nil, fmt.Errorf("core: store missing partial for hub %d (seed/version drift?)", hub)
		}
		if _, ok := s.Skeleton[hub]; !ok {
			return nil, fmt.Errorf("core: store missing skeleton for hub %d", hub)
		}
	}
	return s, nil
}

// LoadFile reads a store from a file path.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func hubsOf(h *hierarchy.Hierarchy) []int32 {
	var out []int32
	for _, n := range h.Nodes() {
		out = append(out, n.Hubs...)
	}
	return out
}
