package core

import (
	"testing"

	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

func TestQuerySetLinearity(t *testing.T) {
	g := testGraph(t, 50)
	s := buildStore(t, g, hierarchy.Options{Seed: 50})
	pref := Preference{Nodes: []int32{3, 77, 200}}
	got, err := s.QuerySet(pref)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: power iteration with the same preference set.
	want, err := ppr.PowerIterationSet(g, pref.Nodes, tightParams())
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.LInfDistance(got, want); d > 1e-4 {
		t.Fatalf("QuerySet vs power iteration L∞ = %v", d)
	}
}

func TestQuerySetWeights(t *testing.T) {
	g := testGraph(t, 51)
	s := buildStore(t, g, hierarchy.Options{Seed: 51})
	// Weight node 5 three times node 9: result = 0.75·r5 + 0.25·r9.
	got, err := s.QuerySet(Preference{Nodes: []int32{5, 9}, Weights: []float64{3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	r5, _ := s.Query(5)
	r9, _ := s.Query(9)
	want := sparse.New(0)
	want.AddScaled(r5, 0.75)
	want.AddScaled(r9, 0.25)
	if d := sparse.LInfDistance(got, want); d > 1e-12 {
		t.Fatalf("weighted QuerySet L∞ = %v", d)
	}
}

func TestQuerySetErrors(t *testing.T) {
	g := testGraph(t, 52)
	s := buildStore(t, g, hierarchy.Options{Seed: 52})
	cases := []Preference{
		{},
		{Nodes: []int32{1}, Weights: []float64{1, 2}},
		{Nodes: []int32{-1}},
		{Nodes: []int32{int32(g.NumNodes())}},
		{Nodes: []int32{1, 1}},
		{Nodes: []int32{1}, Weights: []float64{0}},
		{Nodes: []int32{1}, Weights: []float64{-2}},
	}
	for i, p := range cases {
		if _, err := s.QuerySet(p); err == nil {
			t.Errorf("case %d: QuerySet(%+v) should fail", i, p)
		}
	}
}

func TestShardQuerySetSumsToCentral(t *testing.T) {
	g := testGraph(t, 53)
	s := buildStore(t, g, hierarchy.Options{Seed: 53})
	pref := Preference{Nodes: []int32{10, 20, 30}, Weights: []float64{1, 2, 3}}
	want, err := s.QuerySet(pref)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := Split(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	sum := sparse.New(0)
	for _, sh := range shards {
		v, err := sh.QuerySetVector(pref)
		if err != nil {
			t.Fatal(err)
		}
		sum.AddScaled(v, 1)
	}
	if d := sparse.LInfDistance(sum, want); d > 1e-12 {
		t.Fatalf("shard QuerySet sum L∞ = %v", d)
	}
}

func TestQueryTopK(t *testing.T) {
	g := testGraph(t, 54)
	s := buildStore(t, g, hierarchy.Options{Seed: 54})
	top, err := s.QueryTopK(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("got %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Score < top[i].Score {
			t.Fatal("TopK not sorted")
		}
	}
	if _, err := s.QueryTopK(-1, 5); err == nil {
		t.Fatal("bad node should fail")
	}
}
