package ppr

import (
	"exactppr/internal/graph"
	"exactppr/internal/sparse"
)

// Scratch holds the dense working arrays of the ppr kernels so a worker
// executing many tasks back to back — the pre-computation pool, the
// incremental-update recompute pool — reuses one set of buffers instead
// of allocating fresh O(|V|) slices per vector. The zero value is ready
// to use; a Scratch must not be shared between concurrent calls.
type Scratch struct {
	f1, f2, f3 []float64
	marks      []bool
	queue      []int32
}

// dense returns the three float buffers re-sliced to n and zeroed.
func (sc *Scratch) dense(n int) (a, b, c []float64) {
	if cap(sc.f1) < n {
		sc.f1 = make([]float64, n)
		sc.f2 = make([]float64, n)
		sc.f3 = make([]float64, n)
	}
	a, b, c = sc.f1[:n], sc.f2[:n], sc.f3[:n]
	clear(a)
	clear(b)
	clear(c)
	return a, b, c
}

func (sc *Scratch) bools(n int) []bool {
	if cap(sc.marks) < n {
		sc.marks = make([]bool, n)
	}
	m := sc.marks[:n]
	clear(m)
	return m
}

func (sc *Scratch) ids() []int32 {
	if sc.queue == nil {
		sc.queue = make([]int32, 0, 64)
	}
	return sc.queue[:0]
}

// PartialVectorPacked is ppr.PartialVectorPacked running on the
// scratch's buffers; the blocked-mass diagnostic is not materialized.
// The returned Packed owns fresh storage — it stays valid after the
// scratch is reused.
func (sc *Scratch) PartialVectorPacked(g *graph.Graph, u int32, isHub []bool, p Params) (sparse.Packed, error) {
	d, _, err := partialVectorDense(g, u, isHub, p, sc)
	if err != nil {
		return sparse.Packed{}, err
	}
	return sparse.PackedFromDense(d, 0), nil
}

// SkeletonForHub is ppr.SkeletonForHub running on the scratch's
// buffers. The returned dense slice ALIASES the scratch and is only
// valid until the next call on sc — callers must drain it first.
func (sc *Scratch) SkeletonForHub(g *graph.Graph, h int32, p Params) ([]float64, error) {
	return skeletonForHub(g, h, p, sc)
}
