package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"exactppr/internal/graph"
	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

// DiskStore answers exact PPV queries straight from a store file written
// by Save/SaveFile, reading vectors on demand instead of materializing
// them in memory. The paper points out that pre-computed vectors "could
// likely be larger than available main memory" and suggests a disk-based
// implementation (§5.2); this is that implementation. Only the graph, the
// hierarchy, and an offset index live in RAM — vector payloads are read
// with ReadAt and kept in a small bounded cache.
//
// DiskStore is safe for concurrent queries.
type DiskStore struct {
	H      *hierarchy.Hierarchy
	Params ppr.Params

	f   *os.File
	idx [3]map[int32]span // hub partials, skeletons, leaf PPVs

	// fmu guards the file's lifecycle: fetch reads hold it shared across
	// ReadAt so Close can never yank the descriptor out from under an
	// in-flight read; Close takes it exclusively, which also makes Close
	// wait for those reads to drain.
	fmu    sync.RWMutex
	closed bool

	mu    sync.Mutex
	cache map[cacheKey]sparse.Packed
	// CacheCap bounds the number of cached vectors (default 1024).
	cacheCap int
}

// ErrStoreClosed reports a query against a DiskStore after Close.
var ErrStoreClosed = fmt.Errorf("core: disk store is closed")

type span struct {
	off int64
	len int32
}

type cacheKey struct {
	section int8
	key     int32
}

const (
	secHubPartial = 0
	secSkeleton   = 1
	secLeafPPV    = 2
)

// OpenDiskStore opens a store file for on-demand querying. The header,
// graph, and hierarchy are loaded; vector payloads are indexed by offset
// and skipped.
func OpenDiskStore(path string) (*DiskStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	ds, err := indexStoreFile(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ds, nil
}

// Close releases the underlying file. It blocks until in-flight reads
// drain; queries issued afterwards fail with ErrStoreClosed instead of
// hitting a closed *os.File. Close is idempotent.
func (d *DiskStore) Close() error {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}

// SetCacheCap bounds the in-memory vector cache (minimum 1).
func (d *DiskStore) SetCacheCap(n int) {
	if n < 1 {
		n = 1
	}
	d.mu.Lock()
	d.cacheCap = n
	for k := range d.cache {
		if len(d.cache) <= n {
			break
		}
		delete(d.cache, k)
	}
	d.mu.Unlock()
}

func indexStoreFile(f *os.File) (*DiskStore, error) {
	// Parse the header exactly as Load does, but track byte positions so
	// the vector payloads can be skipped and indexed.
	cr := &countingReader{r: bufio.NewReaderSize(f, 1<<20)}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, err
	}
	if magic != storeMagic {
		return nil, fmt.Errorf("core: not a store file")
	}
	var params ppr.Params
	var opts hierarchy.Options
	hdr := []any{
		&params.Alpha, &params.Eps,
	}
	for _, p := range hdr {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	var maxIter, dangling int32
	if err := binary.Read(cr, binary.LittleEndian, &maxIter); err != nil {
		return nil, err
	}
	if err := binary.Read(cr, binary.LittleEndian, &dangling); err != nil {
		return nil, err
	}
	params.MaxIter = int(maxIter)
	params.Dangling = ppr.DanglingPolicy(dangling)

	var fanout, maxLevels, minSize int32
	var imbalance float64
	var seed int64
	for _, p := range []any{&fanout, &maxLevels, &minSize, &imbalance, &seed} {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	opts.Fanout = int(fanout)
	opts.MaxLevels = int(maxLevels)
	opts.MinSize = int(minSize)
	opts.Imbalance = imbalance
	opts.Seed = seed

	var n, m int32
	if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(cr, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("core: corrupt header")
	}
	b := graph.NewBuilder(int(n))
	for e := int32(0); e < m; e++ {
		var u, v int32
		if err := binary.Read(cr, binary.LittleEndian, &u); err != nil {
			return nil, err
		}
		if err := binary.Read(cr, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		b.AddEdge(u, v)
	}
	g := b.Build()
	h, err := hierarchy.Build(g, opts)
	if err != nil {
		return nil, err
	}
	ds := &DiskStore{
		H: h, Params: params, f: f,
		cache: make(map[cacheKey]sparse.Packed), cacheCap: 1024,
	}
	for sec := 0; sec < 3; sec++ {
		var count int32
		if err := binary.Read(cr, binary.LittleEndian, &count); err != nil {
			return nil, err
		}
		if count < 0 {
			return nil, fmt.Errorf("core: corrupt section count")
		}
		idx := make(map[int32]span, count)
		for i := int32(0); i < count; i++ {
			var key, vlen int32
			if err := binary.Read(cr, binary.LittleEndian, &key); err != nil {
				return nil, err
			}
			if err := binary.Read(cr, binary.LittleEndian, &vlen); err != nil {
				return nil, err
			}
			if vlen < 0 {
				return nil, fmt.Errorf("core: corrupt vector length")
			}
			idx[key] = span{off: cr.n, len: vlen}
			if err := cr.skip(int64(vlen)); err != nil {
				return nil, err
			}
		}
		ds.idx[sec] = idx
	}
	return ds, nil
}

// countingReader tracks the absolute file offset while reading through a
// buffered reader.
type countingReader struct {
	r *bufio.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) skip(n int64) error {
	k, err := c.r.Discard(int(n))
	c.n += int64(k)
	return err
}

// fetchBufPool recycles the read buffers of fetch across queries: a
// cache miss used to allocate a fresh payload-sized slice, which at
// disk-resident cache rates made the read buffer the top allocation of
// the query path. DecodePacked copies out of the buffer, so returning
// it to the pool before decoding results escape is safe.
var fetchBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// fetch reads (and caches) one vector in packed form — decoding a
// canonical payload into the columnar arrays is a straight copy.
func (d *DiskStore) fetch(section int8, key int32) (sparse.Packed, error) {
	ck := cacheKey{section, key}
	d.mu.Lock()
	if v, ok := d.cache[ck]; ok {
		d.mu.Unlock()
		return v, nil
	}
	d.mu.Unlock()

	sp, ok := d.idx[section][key]
	if !ok {
		return sparse.Packed{}, fmt.Errorf("core: no vector for section %d key %d", section, key)
	}
	bp := fetchBufPool.Get().(*[]byte)
	defer fetchBufPool.Put(bp)
	if cap(*bp) < int(sp.len) {
		*bp = make([]byte, sp.len)
	}
	buf := (*bp)[:sp.len]
	d.fmu.RLock()
	if d.closed {
		d.fmu.RUnlock()
		return sparse.Packed{}, ErrStoreClosed
	}
	_, err := d.f.ReadAt(buf, sp.off)
	d.fmu.RUnlock()
	if err != nil {
		return sparse.Packed{}, err
	}
	v, err := sparse.DecodePacked(buf)
	if err != nil {
		return sparse.Packed{}, err
	}
	if !v.InRange(d.H.G.NumNodes()) {
		return sparse.Packed{}, fmt.Errorf("core: vector for section %d key %d has out-of-range node ids (corrupt store?)", section, key)
	}
	d.mu.Lock()
	if len(d.cache) >= d.cacheCap {
		// Bounded cache with arbitrary eviction: map iteration order is
		// effectively random, which is good enough for a working set that
		// follows query locality.
		for k := range d.cache {
			delete(d.cache, k)
			break
		}
	}
	d.cache[ck] = v
	d.mu.Unlock()
	return v, nil
}

// Query constructs the exact PPV of u reading vectors from disk — the
// same identity as Store.Query.
func (d *DiskStore) Query(u int32) (sparse.Vector, error) {
	if u < 0 || int(u) >= d.H.G.NumNodes() {
		return nil, fmt.Errorf("core: query node %d out of range", u)
	}
	alpha := d.Params.Alpha
	acc := sparse.AcquireAccumulator(d.H.G.NumNodes())
	defer acc.Release()
	for _, node := range d.H.Path(u) {
		for _, h := range node.Hubs {
			skel, err := d.fetch(secSkeleton, h)
			if err != nil {
				return nil, err
			}
			su := skel.Get(u)
			if h == u {
				su -= alpha
			}
			if su == 0 {
				continue
			}
			partial, err := d.fetch(secHubPartial, h)
			if err != nil {
				return nil, err
			}
			acc.AddPacked(partial, su/alpha)
			acc.Add(h, su)
		}
	}
	if d.H.IsHub(u) {
		partial, err := d.fetch(secHubPartial, u)
		if err != nil {
			return nil, err
		}
		acc.AddPacked(partial, 1)
		acc.Add(u, alpha)
		return acc.Vector(), nil
	}
	leaf, err := d.fetch(secLeafPPV, u)
	if err != nil {
		return nil, err
	}
	acc.AddPacked(leaf, 1)
	return acc.Vector(), nil
}
