package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"exactppr/internal/core"
)

// The TCP wire protocol, deliberately minimal (stdlib only, no RPC
// framework): every frame is a 1-byte opcode, a 4-byte little-endian
// length, and the payload.
//
//	opQuery    coordinator → worker   payload = int32 query node
//	opQuerySet coordinator → worker   payload = int32 count, count ×
//	                                  (int32 node, float64 weight)
//	opShare    worker → coordinator   payload = sparse-encoded vector +
//	                                  8-byte compute-time (ns) prefix
//	opError    worker → coordinator   payload = error text
const (
	opQuery    byte = 1
	opShare    byte = 2
	opError    byte = 3
	opQuerySet byte = 4
)

const maxFrame = 1 << 28 // 256 MiB guard against corrupt lengths

func writeFrame(w io.Writer, op byte, payload []byte) error {
	hdr := [5]byte{op}
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (op byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: frame length %d exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Serve runs a worker loop over l: each accepted connection handles a
// stream of query frames against the given machine until EOF. Serve
// returns when the listener is closed.
func Serve(l net.Listener, m Machine) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go serveConn(conn, m)
	}
}

func serveConn(conn net.Conn, m Machine) {
	defer conn.Close()
	for {
		op, payload, err := readFrame(conn)
		if err != nil {
			return // EOF or broken peer: drop the connection
		}
		var share []byte
		var compute time.Duration
		switch {
		case op == opQuery && len(payload) == 4:
			u := int32(binary.LittleEndian.Uint32(payload))
			share, compute, err = m.QueryShare(u)
		case op == opQuerySet:
			pref, perr := decodePreference(payload)
			if perr != nil {
				writeFrame(conn, opError, []byte(perr.Error()))
				continue
			}
			share, compute, err = m.QuerySetShare(pref)
		default:
			writeFrame(conn, opError, []byte("bad request"))
			return
		}
		if err != nil {
			if werr := writeFrame(conn, opError, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		buf := make([]byte, 8+len(share))
		binary.LittleEndian.PutUint64(buf, uint64(compute))
		copy(buf[8:], share)
		if err := writeFrame(conn, opShare, buf); err != nil {
			return
		}
	}
}

// TCPMachine is a Machine backed by a remote worker over one TCP
// connection. Calls are serialized per connection (the coordinator issues
// one query per machine per round anyway).
type TCPMachine struct {
	mu   sync.Mutex
	conn net.Conn
}

// DialMachine connects to a worker at addr.
func DialMachine(addr string) (*TCPMachine, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPMachine{conn: conn}, nil
}

// Close shuts the connection down.
func (t *TCPMachine) Close() error { return t.conn.Close() }

// QueryShare implements Machine over the wire.
func (t *TCPMachine) QueryShare(u int32) ([]byte, time.Duration, error) {
	var req [4]byte
	binary.LittleEndian.PutUint32(req[:], uint32(u))
	return t.roundTrip(opQuery, req[:])
}

// QuerySetShare implements Machine for preference sets over the wire.
func (t *TCPMachine) QuerySetShare(p core.Preference) ([]byte, time.Duration, error) {
	return t.roundTrip(opQuerySet, encodePreference(p))
}

func (t *TCPMachine) roundTrip(op byte, req []byte) ([]byte, time.Duration, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := writeFrame(t.conn, op, req); err != nil {
		return nil, 0, err
	}
	rop, payload, err := readFrame(t.conn)
	if err != nil {
		return nil, 0, err
	}
	switch rop {
	case opShare:
		if len(payload) < 8 {
			return nil, 0, fmt.Errorf("cluster: short share frame")
		}
		compute := time.Duration(binary.LittleEndian.Uint64(payload))
		return payload[8:], compute, nil
	case opError:
		return nil, 0, fmt.Errorf("cluster: worker: %s", payload)
	default:
		return nil, 0, fmt.Errorf("cluster: unexpected opcode %d", rop)
	}
}

// encodePreference serializes a preference set for opQuerySet. Uniform
// weights are carried as explicit 1.0s for a simple fixed layout.
func encodePreference(p core.Preference) []byte {
	buf := make([]byte, 4+12*len(p.Nodes))
	binary.LittleEndian.PutUint32(buf, uint32(len(p.Nodes)))
	off := 4
	for i, u := range p.Nodes {
		binary.LittleEndian.PutUint32(buf[off:], uint32(u))
		w := 1.0
		if p.Weights != nil {
			w = p.Weights[i]
		}
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(w))
		off += 12
	}
	return buf
}

func decodePreference(buf []byte) (core.Preference, error) {
	if len(buf) < 4 {
		return core.Preference{}, fmt.Errorf("cluster: short preference frame")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) != 4+12*n {
		return core.Preference{}, fmt.Errorf("cluster: preference frame length mismatch")
	}
	p := core.Preference{Nodes: make([]int32, n), Weights: make([]float64, n)}
	off := 4
	for i := 0; i < n; i++ {
		p.Nodes[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
		p.Weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
		off += 12
	}
	return p, nil
}
