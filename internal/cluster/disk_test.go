package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"exactppr/internal/core"
)

func testDiskCluster(t *testing.T, n int) (*core.Store, *DiskCluster) {
	t.Helper()
	s := testStore(t)
	path := filepath.Join(t.TempDir(), "s.store")
	if err := core.SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	ds, err := core.OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	c, err := NewDiskLocalCluster(ds, n)
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

// TestDiskClusterMatchesCentralQuery: the one-round protocol over disk
// shards reconstructs the same PPV as the in-memory store (the disk
// shares are bit-identical to memory shares, so the coordinator merge
// is too).
func TestDiskClusterMatchesCentralQuery(t *testing.T) {
	s, c := testDiskCluster(t, 3)
	mem, err := NewLocalCluster(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int32{0, 7, 100, 299} {
		want, err := mem.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Result.Unpack(), want.Result.Unpack()) {
			t.Fatalf("u=%d: disk cluster differs from memory cluster", u)
		}
		if got.BytesReceived != want.BytesReceived {
			t.Fatalf("u=%d: byte accounting differs (%d vs %d)", u, got.BytesReceived, want.BytesReceived)
		}
	}
}

// TestDiskClusterConcurrent: the mmap serving path under concurrent
// fan-out traffic — the deployment shape the zero-copy work targets.
// Run with -race in CI.
func TestDiskClusterConcurrent(t *testing.T) {
	_, c := testDiskCluster(t, 3)
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(u int32) {
			defer wg.Done()
			stats, err := c.Query(u % 300)
			if err != nil {
				errCh <- err
				return
			}
			if stats.Result.Len() == 0 {
				errCh <- fmt.Errorf("u=%d: empty PPV", u%300)
			}
		}(int32(i * 9))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st := c.DiskStats(); st.Reads == 0 || st.CacheHits == 0 {
		t.Fatalf("disk counters not moving: %+v", st)
	}
}

// TestGatewayDiskStats: a gateway over a disk cluster reports the
// store's serving counters in /stats.
func TestGatewayDiskStats(t *testing.T) {
	_, c := testDiskCluster(t, 2)
	srv := httptest.NewServer(NewGateway(c).Handler())
	t.Cleanup(srv.Close)

	var res struct {
		TopK []struct {
			ID    int32   `json:"id"`
			Score float64 `json:"score"`
		} `json:"topk"`
	}
	getJSON(t, srv.URL+"/ppv/5?topk=3", http.StatusOK, &res)
	if len(res.TopK) != 3 {
		t.Fatalf("topk: %v", res.TopK)
	}

	var stats struct {
		Queries int64 `json:"queries"`
		Disk    *struct {
			CacheHits      int64 `json:"cache_hits"`
			CacheMisses    int64 `json:"cache_misses"`
			CoalescedReads int64 `json:"coalesced_reads"`
			Reads          int64 `json:"reads"`
			FormatVersion  int   `json:"format_version"`
		} `json:"disk"`
	}
	getJSON(t, srv.URL+"/stats", http.StatusOK, &stats)
	if stats.Queries != 1 {
		t.Fatalf("queries = %d", stats.Queries)
	}
	if stats.Disk == nil {
		t.Fatal("/stats has no disk section for a disk-backed gateway")
	}
	if stats.Disk.Reads == 0 || stats.Disk.CacheMisses == 0 {
		t.Fatalf("disk counters empty: %+v", *stats.Disk)
	}
	if stats.Disk.FormatVersion != 2 {
		t.Fatalf("format version %d, want 2", stats.Disk.FormatVersion)
	}
}
