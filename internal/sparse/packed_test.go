package sparse

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []Vector{
		nil,
		{},
		{7: 0.25},
		{3: 1, 1: 2, 2: -3, 100: 0.5},
	}
	for _, v := range cases {
		p := Pack(v)
		if p.Len() != v.Len() {
			t.Fatalf("Pack(%v).Len() = %d, want %d", v, p.Len(), v.Len())
		}
		got := p.Unpack()
		want := v
		if want == nil {
			want = Vector{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Unpack(Pack(%v)) = %v", v, got)
		}
	}
}

func TestPackedSortedAndGet(t *testing.T) {
	v := Vector{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		v[int32(rng.Intn(10_000))] = rng.NormFloat64()
	}
	p := Pack(v)
	es := p.Entries()
	if !sort.SliceIsSorted(es, func(a, b int) bool { return es[a].ID < es[b].ID }) {
		t.Fatal("Pack produced unsorted ids")
	}
	for id, x := range v {
		if got := p.Get(id); got != x {
			t.Fatalf("Get(%d) = %v, want %v", id, got, x)
		}
	}
	for _, id := range []int32{-1, 10_001, 1 << 30} {
		if v[id] == 0 && p.Get(id) != 0 {
			t.Fatalf("Get(%d) = %v for absent id", id, p.Get(id))
		}
	}
}

func TestPackEntries(t *testing.T) {
	p, err := PackEntries([]Entry{{5, 1}, {2, 0.5}, {9, 0}, {1, -2}})
	if err != nil {
		t.Fatal(err)
	}
	// zero score at 9 must be dropped, rest sorted by id
	want := []Entry{{1, -2}, {2, 0.5}, {5, 1}}
	if !reflect.DeepEqual(p.Entries(), want) {
		t.Fatalf("PackEntries = %v, want %v", p.Entries(), want)
	}

	if _, err := PackEntries([]Entry{{5, 1}, {5, 2}}); err == nil {
		t.Fatal("PackEntries accepted duplicate ids")
	}
	// duplicates where one copy is zero: zero dropped first, no error
	if _, err := PackEntries([]Entry{{5, 1}, {5, 0}}); err != nil {
		t.Fatalf("duplicate with zero copy should be fine after dropping: %v", err)
	}

	empty, err := PackEntries(nil)
	if err != nil || empty.Len() != 0 {
		t.Fatalf("PackEntries(nil) = %v, %v", empty, err)
	}
}

func TestPackFromDenseIDs(t *testing.T) {
	dense := []float64{0, 1.5, 0, -2, 0, 0.25}
	p := PackFromDenseIDs([]int32{5, 1, 3, 2}, dense) // 2 holds a zero: dropped
	want := []Entry{{1, 1.5}, {3, -2}, {5, 0.25}}
	if !reflect.DeepEqual(p.Entries(), want) {
		t.Fatalf("PackFromDenseIDs = %v, want %v", p.Entries(), want)
	}
	if empty := PackFromDenseIDs(nil, dense); empty.Len() != 0 {
		t.Fatalf("empty ids produced %v", empty.Entries())
	}
}

func TestPackedFromDense(t *testing.T) {
	p := PackedFromDense([]float64{0, 1, -0.5, 1e-9, 2}, 1e-8)
	want := []Entry{{1, 1}, {2, -0.5}, {4, 2}}
	if !reflect.DeepEqual(p.Entries(), want) {
		t.Fatalf("PackedFromDense = %v, want %v", p.Entries(), want)
	}
	if p := PackedFromDense(nil, 0); p.Len() != 0 {
		t.Fatalf("PackedFromDense(nil) non-empty: %v", p.Entries())
	}
}

func TestPackedSumL1Truncated(t *testing.T) {
	p := Pack(Vector{1: 0.5, 2: -0.25, 3: 1e-6})
	if !almostEqual(p.Sum(), 0.5-0.25+1e-6) {
		t.Fatalf("Sum = %v", p.Sum())
	}
	if !almostEqual(p.L1(), 0.75+1e-6) {
		t.Fatalf("L1 = %v", p.L1())
	}
	q, dropped := p.Truncated(1e-4)
	if dropped != 1 || q.Len() != 2 || q.Get(3) != 0 || q.Get(2) != -0.25 {
		t.Fatalf("Truncated = %v, dropped %d", q.Entries(), dropped)
	}
	if p.Len() != 3 {
		t.Fatal("Truncated mutated the receiver")
	}
}

func TestPackedInRange(t *testing.T) {
	if !(Packed{}).InRange(0) {
		t.Fatal("empty vector must be in range of anything")
	}
	p := Pack(Vector{0: 1, 9: 2})
	if !p.InRange(10) || p.InRange(9) {
		t.Fatalf("InRange wrong around the upper bound")
	}
	neg := Pack(Vector{-3: 1, 4: 2})
	if neg.InRange(10) {
		t.Fatal("negative id passed InRange")
	}
}

func TestPackedClone(t *testing.T) {
	p := Pack(Vector{1: 1, 2: 2})
	c := p.Clone()
	c.scores[0] = 99 // mutating the clone must not alias the original
	if p.Get(1) != 1 {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestMergePacked(t *testing.T) {
	a := Pack(Vector{1: 1, 3: 3, 5: 5})
	b := Pack(Vector{2: 2, 3: -3, 6: 6})
	c := Pack(Vector{1: 0.5})
	m := MergePacked([]Packed{a, b, c})
	// entry 3 cancels exactly and must be dropped
	want := Vector{1: 1.5, 2: 2, 5: 5, 6: 6}
	if !reflect.DeepEqual(m.Unpack(), want) {
		t.Fatalf("MergePacked = %v, want %v", m.Unpack(), want)
	}

	if m := MergePacked(nil); m.Len() != 0 {
		t.Fatal("MergePacked(nil) non-empty")
	}
	single := MergePacked([]Packed{a})
	if !reflect.DeepEqual(single.Unpack(), a.Unpack()) {
		t.Fatal("MergePacked of one stream differs")
	}
	if m := MergePacked([]Packed{{}, {}, {}}); m.Len() != 0 {
		t.Fatal("MergePacked of empties non-empty")
	}
}

func TestMergePackedMatchesMapFold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		parts := make([]Packed, 1+rng.Intn(8))
		want := Vector{}
		for i := range parts {
			v := Vector{}
			for j := 0; j < rng.Intn(40); j++ {
				id := int32(rng.Intn(64))
				x := rng.NormFloat64()
				v[id] = x
			}
			parts[i] = Pack(v)
			want.AddScaled(v, 1)
		}
		got := MergePacked(parts).Unpack()
		if len(got) != len(want) {
			t.Fatalf("trial %d: merge has %d entries, map fold %d", trial, len(got), len(want))
		}
		for id, x := range want {
			if !almostEqual(got[id], x) {
				t.Fatalf("trial %d: entry %d = %v, want %v", trial, id, got[id], x)
			}
		}
	}
}

func TestAccumulatorBasics(t *testing.T) {
	a := AcquireAccumulator(100)
	defer a.Release()
	a.Add(5, 1)
	a.Add(5, 0.5)
	a.Add(3, -2)
	a.AddPacked(Pack(Vector{3: 1, 7: 4}), 2)
	a.AddVector(Vector{9: 3}, 0.5)
	if got := a.Get(5); got != 1.5 {
		t.Fatalf("Get(5) = %v", got)
	}
	// Slot 3 cancels exactly (−2 + 2·1) and must be dropped on drain.
	want := Vector{5: 1.5, 7: 8, 9: 1.5}
	if got := a.Vector(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Vector() = %v, want %v", got, want)
	}
	p := a.Packed()
	if !reflect.DeepEqual(p.Unpack(), want) {
		t.Fatalf("Packed() = %v, want %v", p.Unpack(), want)
	}
	es := p.Entries()
	if !sort.SliceIsSorted(es, func(i, j int) bool { return es[i].ID < es[j].ID }) {
		t.Fatal("Packed() drain not sorted")
	}
}

func TestAccumulatorReuseNoLeakage(t *testing.T) {
	// Same accumulator across many simulated queries: values from one
	// query must never bleed into the next, including slots that were
	// touched before and not after.
	a := AcquireAccumulator(50)
	defer a.Release()
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 200; q++ {
		want := Vector{}
		for i := 0; i < rng.Intn(20); i++ {
			id := int32(rng.Intn(50))
			x := rng.NormFloat64()
			a.Add(id, x)
			want.Add(id, x)
		}
		got := a.Vector()
		if len(got) != len(want) {
			t.Fatalf("query %d: %d entries, want %d (stale slots leaked?)", q, len(got), len(want))
		}
		for id, x := range want {
			if !almostEqual(got[id], x) {
				t.Fatalf("query %d: entry %d = %v, want %v", q, id, got[id], x)
			}
		}
		a.Reset(50)
	}
}

func TestAccumulatorEpochWrap(t *testing.T) {
	a := &Accumulator{}
	a.Reset(10)
	a.epoch = ^uint32(0) - 1 // two resets away from wrapping
	a.Add(3, 1)
	a.Reset(10)
	if a.Get(3) != 0 {
		t.Fatal("value survived reset")
	}
	a.Add(4, 2)
	a.Reset(10) // epoch wraps to 0 → must clear stamps, not resurrect slot 4
	if a.Get(4) != 0 || a.Get(3) != 0 {
		t.Fatalf("stale values after epoch wrap: %v %v", a.Get(3), a.Get(4))
	}
	a.Add(5, 3)
	if got := a.Vector(); !reflect.DeepEqual(got, Vector{5: 3}) {
		t.Fatalf("after wrap: %v", got)
	}
}

func TestAccumulatorGrow(t *testing.T) {
	a := AcquireAccumulator(4)
	a.Add(3, 1)
	a.Reset(1000) // grow
	a.Add(999, 2)
	if got := a.Vector(); !reflect.DeepEqual(got, Vector{999: 2}) {
		t.Fatalf("after grow: %v", got)
	}
	a.Release()
}

func TestTopKEquivalence(t *testing.T) {
	// Bounded-heap TopK must agree with the full-sort reference on
	// random data, for map, packed, and accumulator alike.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		v := Vector{}
		for i := 0; i < rng.Intn(200); i++ {
			// Coarse scores force plenty of ties to exercise id order.
			v[int32(rng.Intn(500))] = float64(rng.Intn(5)) + 1
		}
		ref := v.Entries()
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].Score != ref[b].Score {
				return ref[a].Score > ref[b].Score
			}
			return ref[a].ID < ref[b].ID
		})
		for _, k := range []int{0, 1, 3, 10, len(v), len(v) + 5} {
			want := ref
			if k < len(want) {
				want = want[:k]
			}
			if got := v.TopK(k); !topKEqual(got, want) {
				t.Fatalf("Vector.TopK(%d) = %v, want %v", k, got, want)
			}
			if got := Pack(v).TopK(k); !topKEqual(got, want) {
				t.Fatalf("Packed.TopK(%d) = %v, want %v", k, got, want)
			}
			a := AcquireAccumulator(500)
			a.AddVector(v, 1)
			if got := a.TopK(k); !topKEqual(got, want) {
				t.Fatalf("Accumulator.TopK(%d) = %v, want %v", k, got, want)
			}
			a.Release()
		}
	}
}

func topKEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEncodeCanonical(t *testing.T) {
	v := Vector{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		v[int32(rng.Intn(5000))] = rng.NormFloat64()
	}
	first := Encode(v)
	for i := 0; i < 10; i++ {
		if !bytes.Equal(Encode(v), first) {
			t.Fatal("Encode is nondeterministic across repeated encodes")
		}
	}
	if !bytes.Equal(EncodePacked(Pack(v)), first) {
		t.Fatal("Encode and EncodePacked disagree on equal vectors")
	}
	// A clone (different map, same values) must also encode identically.
	if !bytes.Equal(Encode(v.Clone()), first) {
		t.Fatal("equal vectors encode unequally")
	}
	// Explicit zeros (only possible in a hand-built map) are dropped, so
	// vectors that compare equal via Get encode identically too.
	withZero := v.Clone()
	withZero[int32(1<<27)] = 0
	if !bytes.Equal(Encode(withZero), first) {
		t.Fatal("explicit zero changed the encoding")
	}
	if EncodedSize(withZero) != len(first) {
		t.Fatal("EncodedSize counts explicit zeros")
	}
}

func TestPackedCodecRoundTrip(t *testing.T) {
	p := Pack(Vector{1: 1, 5: -0.5, 9: 1e-9})
	buf := EncodePacked(p)
	q, err := DecodePacked(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Entries(), p.Entries()) {
		t.Fatalf("round trip = %v, want %v", q.Entries(), p.Entries())
	}
	// The two decoders agree on the same payload.
	v, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, p.Unpack()) {
		t.Fatalf("Decode = %v, want %v", v, p.Unpack())
	}
}

func TestDecodePackedLegacyUnsorted(t *testing.T) {
	// Payloads written before canonicalization may carry entries in any
	// order; DecodePacked must still produce a sorted result.
	v := Vector{4: 4, 1: 1, 3: 3}
	legacy := encodeInMapOrder(v)
	p, err := DecodePacked(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Unpack(), v) {
		t.Fatalf("legacy decode = %v, want %v", p.Unpack(), v)
	}
}

// encodeInMapOrder reproduces the pre-canonical encoder (map iteration
// order) for legacy-payload tests.
func encodeInMapOrder(v Vector) []byte {
	buf := make([]byte, EncodedSize(v))
	// Count then entries, exactly as Encode, but unsorted. Reuse the
	// packed encoder on a deliberately shuffled "packed" value.
	shuffled := Packed{}
	for i, x := range v {
		shuffled.ids = append(shuffled.ids, i)
		shuffled.scores = append(shuffled.scores, x)
	}
	copy(buf, EncodePacked(shuffled))
	return buf
}

func TestDecodePackedRejectsDuplicates(t *testing.T) {
	dup := Packed{ids: []int32{2, 2}, scores: []float64{1, 1}}
	if _, err := DecodePacked(EncodePacked(dup)); err == nil {
		t.Fatal("DecodePacked accepted duplicate ids")
	}
}
