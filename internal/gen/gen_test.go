package gen

import (
	"testing"

	"exactppr/internal/graph"
)

func TestCommunityValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 0, Communities: 1},
		{Nodes: 10, Communities: 0},
		{Nodes: 10, Communities: 20},
		{Nodes: 10, Communities: 1, InterFrac: 1.0},
		{Nodes: 10, Communities: 1, InterFrac: -0.1},
		{Nodes: 10, Communities: 1, AvgOutDegree: -1},
	}
	for i, cfg := range bad {
		if _, err := Community(cfg); err == nil {
			t.Errorf("case %d: Community(%+v) should fail", i, cfg)
		}
	}
}

func TestCommunityDeterministic(t *testing.T) {
	cfg := Config{Nodes: 500, AvgOutDegree: 4, Communities: 5, InterFrac: 0.1, Seed: 7}
	g1, err := Community(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := Community(cfg)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("not deterministic: %d vs %d edges", g1.NumEdges(), g2.NumEdges())
	}
	for u := int32(0); u < int32(g1.NumNodes()); u++ {
		a, b := g1.Out(u), g2.Out(u)
		if len(a) != len(b) {
			t.Fatalf("node %d degree differs", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d out-lists differ", u)
			}
		}
	}
}

func TestCommunityStructure(t *testing.T) {
	cfg := Config{Nodes: 2000, AvgOutDegree: 6, Communities: 10, InterFrac: 0.05, Seed: 1, MinOutDegree: 1}
	g, err := Community(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Count inter-community edges: should be a small fraction.
	commOf := func(u int32) int { return int(u) * cfg.Communities / cfg.Nodes }
	inter := 0
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Out(u) {
			if commOf(u) != commOf(v) {
				inter++
			}
		}
	}
	frac := float64(inter) / float64(g.NumEdges())
	if frac > 0.15 {
		t.Fatalf("inter-community fraction = %.3f, want ≲ InterFrac", frac)
	}
	// Average degree near target (duplicates shave a little off).
	avg := float64(g.NumEdges()) / float64(g.NumNodes())
	if avg < 2 || avg > 12 {
		t.Fatalf("avg degree = %.2f, want near %v", avg, cfg.AvgOutDegree)
	}
}

func TestMinOutDegree(t *testing.T) {
	g, err := Community(Config{Nodes: 300, AvgOutDegree: 1, Communities: 3, MinOutDegree: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		if g.OutDegree(u) < 2 {
			t.Fatalf("node %d has degree %d < MinOutDegree", u, g.OutDegree(u))
		}
	}
}

func TestDegreeSkewProducesHeavyTail(t *testing.T) {
	g, err := Community(Config{Nodes: 3000, AvgOutDegree: 5, Communities: 1, DegreeSkew: 1.6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		if d := g.OutDegree(u); d > max {
			max = d
		}
	}
	avg := float64(g.NumEdges()) / float64(g.NumNodes())
	if float64(max) < 5*avg {
		t.Fatalf("max degree %d should be ≫ avg %.1f under skew", max, avg)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(1000, 3, 11)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := float64(g.NumEdges()) / float64(g.NumNodes())
	if avg < 2 || avg > 3.2 {
		t.Fatalf("avg degree %.2f, want ≈3", avg)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(2000, 3, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Heavy-tailed in-degree: the max should far exceed the mean.
	g.BuildReverse()
	maxIn := 0
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		if d := len(g.In(u)); d > maxIn {
			maxIn = d
		}
	}
	if maxIn < 30 {
		t.Fatalf("max in-degree = %d, expected a hub", maxIn)
	}
}

func TestDatasetPresets(t *testing.T) {
	for _, name := range DatasetNames() {
		g, err := Dataset(name, 0.2, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		spec := Specs[name]
		avg := float64(g.NumEdges()) / float64(g.NumNodes())
		if avg < spec.AvgOutDegree*0.4 || avg > spec.AvgOutDegree*2.5 {
			t.Errorf("%s: avg degree %.2f, spec %.2f", name, avg, spec.AvgOutDegree)
		}
		// No dangling nodes in presets.
		for u := int32(0); u < int32(g.NumNodes()); u++ {
			if g.OutDegree(u) == 0 {
				t.Fatalf("%s: node %d dangling", name, u)
			}
		}
	}
}

func TestDatasetErrors(t *testing.T) {
	if _, err := Dataset("nope", 1, 1); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	if _, err := Dataset("email", 0, 1); err == nil {
		t.Fatal("zero scale should fail")
	}
}

func TestMeetupLikeSizesGrow(t *testing.T) {
	var prevN, prevE int
	for i := range MeetupSizes {
		g, err := MeetupLike(i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() <= prevN || g.NumEdges() <= prevE {
			t.Fatalf("M%d not larger than M%d: %d/%d vs %d/%d",
				i+1, i, g.NumNodes(), g.NumEdges(), prevN, prevE)
		}
		prevN, prevE = g.NumNodes(), g.NumEdges()
	}
	if _, err := MeetupLike(99, 1); err == nil {
		t.Fatal("out-of-range index should fail")
	}
}

func TestGeneratedGraphsAreSimple(t *testing.T) {
	g, err := Dataset("email", 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		out := g.Out(u)
		for i, v := range out {
			if v == u {
				t.Fatalf("self loop at %d", u)
			}
			if i > 0 && out[i-1] == v {
				t.Fatalf("duplicate edge (%d,%d)", u, v)
			}
		}
	}
	_ = graph.InducedSubgraph(g, []int32{0, 1, 2}) // smoke: interop with graph pkg
}

func TestPresetStatsMatchSpecShape(t *testing.T) {
	// The generated analogues should carry the structural signatures the
	// partitioner relies on: dominant weakly-connected component, heavy
	// out-degree tail, no dangling nodes.
	for _, name := range []string{"email", "web"} {
		g, err := Dataset(name, 0.3, 4)
		if err != nil {
			t.Fatal(err)
		}
		st := graph.ComputeStats(g)
		if st.Dangling != 0 {
			t.Errorf("%s: %d dangling nodes", name, st.Dangling)
		}
		if float64(st.LargestComponent) < 0.5*float64(st.Nodes) {
			t.Errorf("%s: largest component %d of %d", name, st.LargestComponent, st.Nodes)
		}
		if st.MaxOutDegree < 3*st.OutDegreeP50 {
			t.Errorf("%s: no heavy tail (max %d, p50 %d)", name, st.MaxOutDegree, st.OutDegreeP50)
		}
	}
}
