package cluster

import (
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"exactppr/internal/core"
)

// TestOversizedFrameRejected: the frame-length guard protects the worker
// from corrupt or malicious length prefixes.
func TestOversizedFrameRejected(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		var hdr [frameHeaderSize]byte
		hdr[0] = opQuery
		binary.LittleEndian.PutUint32(hdr[9:], uint32(maxFrame+1))
		client.Write(hdr[:])
	}()
	if _, _, _, err := readFrame(server); err == nil {
		t.Fatal("oversized frame must be rejected")
	}
}

// TestWorkerDropsMalformedRequest: a garbage opcode terminates the
// connection (opError then close) without crashing the worker loop.
func TestWorkerDropsMalformedRequest(t *testing.T) {
	s := testStore(t)
	shards, _ := core_Split(t, s)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, &ShardMachine{Shard: shards[0]})

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, 99, 7, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	op, id, _, err := readFrame(conn)
	if err != nil {
		t.Fatalf("expected an error frame, got %v", err)
	}
	if op != opError || id != 7 {
		t.Fatalf("op = %d id = %d, want opError echoing id 7", op, id)
	}
	// The worker then closes; the NEXT worker connection must still work.
	m, err := DialMachine(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, _, err := m.QueryShare(context.Background(), 1); err != nil {
		t.Fatalf("listener should survive a bad client: %v", err)
	}
}

// TestCoordinatorPropagatesDeadMachine: a machine whose connection died
// turns into a clean coordinator error, not a hang.
func TestCoordinatorPropagatesDeadMachine(t *testing.T) {
	s := testStore(t)
	shards, _ := core_Split(t, s)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(l, &ShardMachine{Shard: shards[0]})
	m, err := DialMachine(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	m.Close() // kill the transport under the coordinator
	if _, err := c.Query(1); err == nil {
		t.Fatal("dead machine must surface as an error")
	}
}

func core_Split(t *testing.T, s *core.Store) ([]*core.Shard, error) {
	t.Helper()
	shards, err := core.Split(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	return shards, nil
}
