package cluster

import "time"

// NetworkModel converts protocol rounds and payload bytes into simulated
// wire time. Benchmarks run in-process, so the network contribution to
// query latency is modeled analytically instead of slept away: the
// paper's testbed is a 100 Mbit TP-LINK switch (§6.1), captured by
// HundredMbitSwitch. Experiments report compute time and modeled network
// time separately and summed, which keeps who-wins comparisons honest
// (HGPA pays the model for its single round; the BSP baselines pay it
// for every superstep).
type NetworkModel struct {
	// RoundLatency is charged once per synchronous round trip.
	RoundLatency time.Duration
	// BytesPerSecond is the usable bandwidth.
	BytesPerSecond float64
}

// HundredMbitSwitch approximates the paper's cluster interconnect:
// 100 Mbit/s ≈ 12.5 MB/s usable, ~0.5 ms per synchronous round.
var HundredMbitSwitch = NetworkModel{
	RoundLatency:   500 * time.Microsecond,
	BytesPerSecond: 12.5e6,
}

// Cost returns the modeled wire time for `rounds` synchronous rounds
// carrying `bytes` of payload in total. The zero model costs nothing
// (useful to disable modeling).
func (m NetworkModel) Cost(rounds int, bytes int64) time.Duration {
	if m.BytesPerSecond <= 0 && m.RoundLatency == 0 {
		return 0
	}
	d := time.Duration(rounds) * m.RoundLatency
	if m.BytesPerSecond > 0 {
		d += time.Duration(float64(bytes) / m.BytesPerSecond * float64(time.Second))
	}
	return d
}
