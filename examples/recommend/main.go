// Recommend: "who to follow" on a synthetic social graph — the
// link-prediction/recommendation use case the paper's introduction
// motivates (Twitter's WTF service runs on personalized PageRank).
//
// PPV scores rank every user by random-walk proximity to the query user;
// filtering out users already followed yields follow recommendations.
package main

import (
	"fmt"
	"log"

	"exactppr"
)

func main() {
	// A social graph with community structure: 500 users in 8 circles,
	// mostly following within their circle.
	g, err := exactppr.GenerateCommunityGraph(exactppr.GenConfig{
		Nodes:        500,
		AvgOutDegree: 8,
		Communities:  8,
		InterFrac:    0.08,
		DegreeSkew:   1.7,
		MinOutDegree: 2,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}

	store, err := exactppr.BuildHGPA(g, exactppr.HierarchyOptions{Seed: 7}, exactppr.DefaultParams(), 0)
	if err != nil {
		log.Fatal(err)
	}

	const user = int32(42)
	ppv, err := store.Query(user)
	if err != nil {
		log.Fatal(err)
	}

	// Exclude the user and everyone they already follow.
	follows := map[int32]bool{user: true}
	for _, v := range g.Out(user) {
		follows[v] = true
	}
	fmt.Printf("user %d follows %d accounts; top follow recommendations:\n", user, len(follows)-1)
	printed := 0
	for _, e := range ppv.TopK(50) {
		if follows[e.ID] {
			continue
		}
		fmt.Printf("  %2d. user %-4d (proximity %.5f)\n", printed+1, e.ID, e.Score)
		printed++
		if printed == 10 {
			break
		}
	}

	// Recommendations should be dominated by the user's own circle.
	circle := func(u int32) int32 { return u * 8 / int32(g.NumNodes()) }
	same := 0
	printed = 0
	for _, e := range ppv.TopK(50) {
		if follows[e.ID] {
			continue
		}
		if circle(e.ID) == circle(user) {
			same++
		}
		printed++
		if printed == 10 {
			break
		}
	}
	fmt.Printf("%d of the top 10 recommendations are in user %d's own circle\n", same, user)
}
