package cluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"exactppr/internal/core"
	"exactppr/internal/graph"
)

// ErrMachineClosed reports a call on a TCPMachine whose connection has
// been closed locally (as opposed to a transport failure, which carries
// the underlying error).
var ErrMachineClosed = fmt.Errorf("cluster: machine closed")

// TCPMachine is a Machine backed by a remote worker over one TCP
// connection. The connection is multiplexed: any number of callers may
// have queries in flight concurrently; a single reader goroutine demuxes
// response frames back to the waiting caller by request id. When the
// connection dies, every in-flight call fails with the transport error —
// no call ever hangs on a dead worker.
type TCPMachine struct {
	conn net.Conn

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	pending map[uint64]chan muxReply
	nextID  uint64
	err     error         // terminal transport error, set once
	done    chan struct{} // closed when the reader loop exits
}

type muxReply struct {
	op      byte
	payload []byte
}

// dialTimeout bounds connection attempts (initial dials and pool
// re-dials) so an unreachable worker fails fast instead of hanging for
// the OS connect timeout.
const dialTimeout = 5 * time.Second

// writeTimeout bounds every frame write on both ends of the protocol. A
// peer that stops draining its socket (stalled, frozen, malicious) would
// otherwise block the writer under its mutex forever once the kernel
// buffer fills; hitting the deadline fails the write and tears the
// connection down instead.
const writeTimeout = 30 * time.Second

// DialMachine connects to a worker at addr and starts the demux loop.
func DialMachine(addr string) (*TCPMachine, error) {
	return dialMachineCtx(context.Background(), addr)
}

func dialMachineCtx(ctx context.Context, addr string) (*TCPMachine, error) {
	d := net.Dialer{Timeout: dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCPMachine{
		conn:    conn,
		pending: make(map[uint64]chan muxReply),
		done:    make(chan struct{}),
	}
	go t.readLoop()
	return t, nil
}

// readLoop is the single reader: it demuxes every response frame to the
// caller registered under its request id. Responses for ids nobody is
// waiting on (caller gave up via context) are discarded.
func (t *TCPMachine) readLoop() {
	for {
		op, id, payload, err := readFrame(t.conn)
		if err != nil {
			t.fail(err)
			return
		}
		t.mu.Lock()
		ch := t.pending[id]
		delete(t.pending, id)
		t.mu.Unlock()
		if ch != nil {
			ch <- muxReply{op, payload} // buffered; never blocks the reader
		}
	}
}

// fail marks the machine broken, closes the socket (so the fd is never
// leaked, whichever side noticed first), and releases every waiting
// caller.
func (t *TCPMachine) fail(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
		close(t.done)
		t.conn.Close()
	}
	clear(t.pending)
	t.mu.Unlock()
}

// Close shuts the connection down; in-flight calls fail promptly.
func (t *TCPMachine) Close() error {
	t.fail(ErrMachineClosed)
	return nil
}

// Healthy reports whether the transport is still usable.
func (t *TCPMachine) Healthy() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err == nil
}

// QueryShare implements Machine over the wire.
func (t *TCPMachine) QueryShare(ctx context.Context, u int32) ([]byte, time.Duration, error) {
	var req [4]byte
	binary.LittleEndian.PutUint32(req[:], uint32(u))
	return t.call(ctx, opQuery, req[:])
}

// ApplyUpdates implements Updater over the wire: the delta batch rides
// the same multiplexed connection as queries (opUpdate frame), so a
// long recompute on the worker never blocks pipelined query traffic.
func (t *TCPMachine) ApplyUpdates(ctx context.Context, d graph.Delta) (UpdateStats, error) {
	start := time.Now()
	ack, _, err := t.call(ctx, opUpdate, encodeDelta(d))
	if err != nil {
		return UpdateStats{}, err
	}
	stats, err := decodeUpdateStats(ack)
	if err != nil {
		return UpdateStats{}, err
	}
	stats.Wall = time.Since(start)
	return stats, nil
}

// SupportsUpdates probes the remote worker with an empty delta batch —
// a no-op on an update-enabled worker, a clean "updates not enabled"
// error otherwise. Unlike the interface check (every TCPMachine has the
// method), this reflects the worker's actual -updates configuration.
func (t *TCPMachine) SupportsUpdates() bool {
	ctx, cancel := context.WithTimeout(context.Background(), dialTimeout)
	defer cancel()
	_, err := t.ApplyUpdates(ctx, graph.Delta{})
	return err == nil
}

// QuerySetShare implements Machine for preference sets over the wire.
func (t *TCPMachine) QuerySetShare(ctx context.Context, p core.Preference) ([]byte, time.Duration, error) {
	// Mirror the in-process validation (core.Preference.normalized) so
	// both transports reject the same malformed sets.
	if p.Weights != nil && len(p.Weights) != len(p.Nodes) {
		return nil, 0, fmt.Errorf("cluster: preference has %d nodes but %d weights", len(p.Nodes), len(p.Weights))
	}
	return t.call(ctx, opQuerySet, encodePreference(p))
}

func (t *TCPMachine) call(ctx context.Context, op byte, req []byte) ([]byte, time.Duration, error) {
	ch := make(chan muxReply, 1)
	t.mu.Lock()
	if t.err != nil {
		err := t.err
		t.mu.Unlock()
		return nil, 0, err
	}
	id := t.nextID
	t.nextID++
	t.pending[id] = ch
	t.mu.Unlock()

	// The write deadline is deliberately NOT tightened to ctx's: an
	// aborted write leaves a partial frame that corrupts the stream, so
	// a single tight-deadline query must not tear down the shared
	// connection. A genuinely stalled peer still fails within
	// writeTimeout instead of blocking wmu forever.
	t.wmu.Lock()
	t.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	err := writeFrame(t.conn, op, id, req)
	t.wmu.Unlock()
	if err != nil {
		t.unregister(id)
		// A failed write means the transport is broken (and may have
		// emitted a partial frame): mark the machine unhealthy so pools
		// stop routing to it. Silent partitions with no write traffic
		// are caught by the dialer's default TCP keepalive instead.
		t.fail(err)
		return nil, 0, err
	}

	select {
	case r := <-ch:
		return decodeReply(r)
	case <-ctx.Done():
		// Abandon the request: the reader discards the late response.
		t.unregister(id)
		return nil, 0, ctx.Err()
	case <-t.done:
		// The transport died, but the response may have been delivered
		// just before: prefer it over the error.
		select {
		case r := <-ch:
			return decodeReply(r)
		default:
		}
		t.mu.Lock()
		err := t.err
		t.mu.Unlock()
		return nil, 0, err
	}
}

func (t *TCPMachine) unregister(id uint64) {
	t.mu.Lock()
	delete(t.pending, id)
	t.mu.Unlock()
}

func decodeReply(r muxReply) ([]byte, time.Duration, error) {
	switch r.op {
	case opShare:
		if len(r.payload) < 8 {
			return nil, 0, fmt.Errorf("cluster: short share frame")
		}
		compute := time.Duration(binary.LittleEndian.Uint64(r.payload))
		return r.payload[8:], compute, nil
	case opUpdateAck:
		return r.payload, 0, nil
	case opError:
		return nil, 0, fmt.Errorf("cluster: worker: %s", r.payload)
	default:
		return nil, 0, fmt.Errorf("cluster: unexpected opcode %d", r.op)
	}
}

// Pool is a Machine that spreads calls round-robin over several
// multiplexed connections to the same worker. One connection already
// sustains many in-flight queries; a pool adds socket-level parallelism
// (separate kernel buffers, separate reader goroutines) for coordinators
// driving very high concurrency at one worker. Broken connections are
// re-dialed lazily, so a worker restart heals without restarting the
// coordinator.
type Pool struct {
	addr    string
	next    atomic.Uint64
	healing atomic.Bool // one background re-dial at a time

	mu     sync.Mutex
	conns  []*TCPMachine
	closed bool
}

// DialPool opens n multiplexed connections to the worker at addr.
func DialPool(addr string, n int) (*Pool, error) {
	if n <= 0 {
		n = 1
	}
	p := &Pool{addr: addr, conns: make([]*TCPMachine, 0, n)}
	for i := 0; i < n; i++ {
		m, err := DialMachine(addr)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.conns = append(p.conns, m)
	}
	return p, nil
}

// pick returns the next healthy connection. When a broken slot is hit it
// is re-dialed in place — outside the pool lock, under the caller's
// context plus a dial timeout, so a down worker neither serializes
// concurrent queries behind the mutex nor outlives the query deadline.
func (p *Pool) pick(ctx context.Context) (*TCPMachine, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrMachineClosed
	}
	start := p.next.Add(1)
	slot := -1
	var healthy *TCPMachine
	for i := 0; i < len(p.conns); i++ {
		s := int((start + uint64(i)) % uint64(len(p.conns)))
		if healthy == nil && p.conns[s].Healthy() {
			healthy = p.conns[s]
		} else if slot < 0 && !p.conns[s].Healthy() {
			slot = s
		}
	}
	p.mu.Unlock()
	if healthy != nil {
		if slot >= 0 {
			// Heal the broken slot in the background so a partially
			// degraded pool recovers its full parallelism.
			p.maybeHeal(slot)
		}
		return healthy, nil
	}

	m, err := dialMachineCtx(ctx, p.addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: all %d pool connections to %s are down: %w", len(p.conns), p.addr, err)
	}
	if replaced := p.install(slot, m); replaced != nil {
		return replaced, nil
	}
	return nil, ErrMachineClosed
}

// install swaps a freshly dialed machine into a broken slot, closing the
// dead fd. Returns the machine now serving the slot (the new one, or a
// concurrent heal's) — nil only when the pool was closed meanwhile.
func (p *Pool) install(slot int, m *TCPMachine) *TCPMachine {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		m.Close()
		return nil
	}
	old := p.conns[slot]
	if old.Healthy() {
		m.Close() // a concurrent pick already healed this slot
		return old
	}
	old.Close()
	p.conns[slot] = m
	return m
}

// maybeHeal re-dials one broken slot in the background, at most one
// heal in flight per pool to avoid dial storms.
func (p *Pool) maybeHeal(slot int) {
	if !p.healing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer p.healing.Store(false)
		m, err := DialMachine(p.addr)
		if err != nil {
			return // worker still down; the next pick will retry
		}
		p.install(slot, m)
	}()
}

// QueryShare implements Machine.
func (p *Pool) QueryShare(ctx context.Context, u int32) ([]byte, time.Duration, error) {
	m, err := p.pick(ctx)
	if err != nil {
		return nil, 0, err
	}
	return m.QueryShare(ctx, u)
}

// QuerySetShare implements Machine.
func (p *Pool) QuerySetShare(ctx context.Context, pref core.Preference) ([]byte, time.Duration, error) {
	m, err := p.pick(ctx)
	if err != nil {
		return nil, 0, err
	}
	return m.QuerySetShare(ctx, pref)
}

// ApplyUpdates implements Updater: the batch is sent on one connection —
// the worker process behind every pooled connection is the same, so one
// delivery updates them all.
func (p *Pool) ApplyUpdates(ctx context.Context, d graph.Delta) (UpdateStats, error) {
	m, err := p.pick(ctx)
	if err != nil {
		return UpdateStats{}, err
	}
	return m.ApplyUpdates(ctx, d)
}

// SupportsUpdates probes the worker behind the pool; see
// TCPMachine.SupportsUpdates.
func (p *Pool) SupportsUpdates() bool {
	ctx, cancel := context.WithTimeout(context.Background(), dialTimeout)
	defer cancel()
	m, err := p.pick(ctx)
	if err != nil {
		return false
	}
	return m.SupportsUpdates()
}

// Close closes every connection in the pool and stops re-dialing.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	var first error
	for _, m := range p.conns {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
