package cluster

import (
	"bytes"
	"context"
	"testing"

	"exactppr/internal/core"
	"exactppr/internal/sparse"
)

// TestSharePayloadCanonical: a worker's share payload is byte-identical
// across repeated encodes of the same query (the canonical sorted wire
// encoding), and decodes as a sorted stream the coordinator can merge.
func TestSharePayloadCanonical(t *testing.T) {
	s := testStore(t)
	shards, err := core.Split(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pref := core.Preference{Nodes: []int32{4, 9}, Weights: []float64{1, 3}}
	for _, sh := range shards {
		m := &ShardMachine{Shard: sh}
		for _, u := range []int32{0, 77, 299} {
			first, _, err := m.QueryShare(ctx, u)
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 3; rep++ {
				again, _, err := m.QueryShare(ctx, u)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(first, again) {
					t.Fatalf("shard %d u=%d: share payload differs across encodes", sh.Index, u)
				}
			}
			p, err := sparse.DecodePacked(first)
			if err != nil {
				t.Fatalf("shard %d u=%d: payload not decodable as packed: %v", sh.Index, u, err)
			}
			// Canonical payloads round-trip to the identical bytes.
			if !bytes.Equal(sparse.EncodePacked(p), first) {
				t.Fatalf("shard %d u=%d: payload is not canonical", sh.Index, u)
			}
		}
		a, _, err := m.QuerySetShare(ctx, pref)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := m.QuerySetShare(ctx, pref)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("shard %d: set share payload differs across encodes", sh.Index)
		}
	}
}
