package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"exactppr/internal/core"
	"exactppr/internal/graph"
)

// The TCP wire protocol, deliberately minimal (stdlib only, no RPC
// framework). Every frame is a 1-byte opcode, an 8-byte little-endian
// request id, a 4-byte little-endian length, and the payload. The
// request id makes the protocol multiplexed: a client may pipeline any
// number of requests on one connection and the worker answers each with
// a frame carrying the same id, in whatever order queries finish.
//
//	opQuery     coordinator → worker   payload = int32 query node
//	opQuerySet  coordinator → worker   payload = int32 count, count ×
//	                                   (int32 node, float64 weight)
//	opShare     worker → coordinator   payload = sparse-encoded vector in
//	                                   the canonical (sorted by id) wire
//	                                   encoding + 8-byte compute-time (ns)
//	                                   prefix
//	opError     worker → coordinator   payload = error text
//	opUpdate    coordinator → worker   payload = edge-delta batch:
//	                                   uint32 insert count, count ×
//	                                   (int32 u, int32 v), then the same
//	                                   for deletes
//	opUpdateAck worker → coordinator   payload = 3 × uint64: edges
//	                                   inserted, edges deleted, vectors
//	                                   recomputed
//
// Share payloads are canonical: identical shares are byte-identical
// across repeated encodes, and the coordinator consumes them as sorted
// streams (see sparse.MergePacked) without rebuilding maps.
const (
	opQuery     byte = 1
	opShare     byte = 2
	opError     byte = 3
	opQuerySet  byte = 4
	opUpdate    byte = 5
	opUpdateAck byte = 6
)

const maxFrame = 1 << 28 // 256 MiB guard against corrupt lengths

const frameHeaderSize = 1 + 8 + 4

func writeFrame(w io.Writer, op byte, id uint64, payload []byte) error {
	hdr := [frameHeaderSize]byte{op}
	binary.LittleEndian.PutUint64(hdr[1:], id)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (op byte, id uint64, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	id = binary.LittleEndian.Uint64(hdr[1:])
	n := binary.LittleEndian.Uint32(hdr[9:])
	if n > maxFrame {
		return 0, 0, nil, fmt.Errorf("cluster: frame length %d exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return hdr[0], id, payload, nil
}

// DefaultMaxInFlight bounds the per-connection worker goroutine pool
// when Server.MaxInFlight is zero. The bound keeps a misbehaving client
// from spawning unbounded query goroutines while still allowing deep
// pipelining (well past the 64 in-flight queries the serving layer is
// specified to sustain).
const DefaultMaxInFlight = 256

// Server runs the worker side of the protocol: a stream of multiplexed
// query frames executed on a bounded goroutine pool, responses written
// back as they complete.
type Server struct {
	Machine Machine
	// Updater, when non-nil, enables opUpdate frames: edge-delta batches
	// applied to the worker's live store. A worker without an Updater
	// answers update frames with opError and keeps serving queries.
	Updater Updater
	// MaxInFlight bounds concurrently executing queries per connection
	// (0 = DefaultMaxInFlight). Excess requests queue in the reader.
	MaxInFlight int
}

// Serve accepts connections on l until the listener is closed, handling
// each with the bounded concurrent frame loop.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

// Serve runs a worker loop over l with default settings: each accepted
// connection handles a stream of multiplexed query frames against the
// given machine until EOF. Serve returns when the listener is closed.
func Serve(l net.Listener, m Machine) error {
	return (&Server{Machine: m}).Serve(l)
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	limit := s.MaxInFlight
	if limit <= 0 {
		limit = DefaultMaxInFlight
	}
	sem := make(chan struct{}, limit)
	var (
		wmu sync.Mutex // serializes response frames on conn
		wg  sync.WaitGroup
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer wg.Wait()
	defer cancel()
	for {
		op, id, payload, err := readFrame(conn)
		if err != nil {
			return // EOF or broken peer: drop the connection
		}
		if op != opQuery && op != opQuerySet && op != opUpdate {
			wmu.Lock()
			writeFrame(conn, opError, id, []byte("bad request"))
			wmu.Unlock()
			return
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(op byte, id uint64, payload []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			s.handle(ctx, conn, &wmu, op, id, payload)
		}(op, id, payload)
	}
}

// handle executes one query frame and writes the response. Per-query
// failures (bad node, malformed preference) answer opError and keep the
// connection streaming; only transport errors tear it down, and then the
// reader loop notices on its next read.
func (s *Server) handle(ctx context.Context, conn net.Conn, wmu *sync.Mutex, op byte, id uint64, payload []byte) {
	var (
		respOp  byte = opShare
		resp    []byte
		share   []byte
		compute time.Duration
		err     error
	)
	switch op {
	case opQuery:
		if len(payload) != 4 {
			err = fmt.Errorf("malformed query frame")
			break
		}
		u := int32(binary.LittleEndian.Uint32(payload))
		share, compute, err = s.Machine.QueryShare(ctx, u)
	case opQuerySet:
		var pref core.Preference
		if pref, err = decodePreference(payload); err == nil {
			share, compute, err = s.Machine.QuerySetShare(ctx, pref)
		}
	case opUpdate:
		respOp = opUpdateAck
		resp, err = s.handleUpdate(ctx, payload)
	}
	if respOp == opShare && err == nil {
		resp = make([]byte, 8+len(share))
		binary.LittleEndian.PutUint64(resp, uint64(compute))
		copy(resp[8:], share)
	}
	wmu.Lock()
	defer wmu.Unlock()
	// Bound the write so a client that stops draining responses cannot
	// pin the worker's handler goroutines behind wmu forever.
	conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	if err != nil {
		if werr := writeFrame(conn, opError, id, []byte(err.Error())); werr != nil {
			conn.Close() // a partial frame corrupts the stream for every caller
		}
		return
	}
	if werr := writeFrame(conn, respOp, id, resp); werr != nil {
		conn.Close()
	}
}

// handleUpdate decodes and applies one edge-delta batch, answering the
// ack payload.
func (s *Server) handleUpdate(ctx context.Context, payload []byte) ([]byte, error) {
	if s.Updater == nil {
		return nil, fmt.Errorf("updates not enabled on this worker")
	}
	d, err := decodeDelta(payload)
	if err != nil {
		return nil, err
	}
	stats, err := s.Updater.ApplyUpdates(ctx, d)
	if err != nil {
		return nil, err
	}
	return encodeUpdateStats(stats), nil
}

// encodePreference serializes a preference set for opQuerySet. Uniform
// weights are carried as explicit 1.0s for a simple fixed layout.
func encodePreference(p core.Preference) []byte {
	buf := make([]byte, 4+12*len(p.Nodes))
	binary.LittleEndian.PutUint32(buf, uint32(len(p.Nodes)))
	off := 4
	for i, u := range p.Nodes {
		binary.LittleEndian.PutUint32(buf[off:], uint32(u))
		w := 1.0
		if i < len(p.Weights) {
			w = p.Weights[i]
		}
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(w))
		off += 12
	}
	return buf
}

// encodeDelta serializes an edge-delta batch for opUpdate.
func encodeDelta(d graph.Delta) []byte {
	buf := make([]byte, 8+8*(len(d.Insert)+len(d.Delete)))
	off := 0
	for _, edges := range [][][2]int32{d.Insert, d.Delete} {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(edges)))
		off += 4
		for _, e := range edges {
			binary.LittleEndian.PutUint32(buf[off:], uint32(e[0]))
			binary.LittleEndian.PutUint32(buf[off+4:], uint32(e[1]))
			off += 8
		}
	}
	return buf
}

func decodeDelta(buf []byte) (graph.Delta, error) {
	var d graph.Delta
	off := 0
	for i := 0; i < 2; i++ {
		if len(buf) < off+4 {
			return graph.Delta{}, fmt.Errorf("cluster: short delta frame")
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if n < 0 || len(buf) < off+8*n {
			return graph.Delta{}, fmt.Errorf("cluster: delta frame length mismatch")
		}
		edges := make([][2]int32, n)
		for j := range edges {
			edges[j][0] = int32(binary.LittleEndian.Uint32(buf[off:]))
			edges[j][1] = int32(binary.LittleEndian.Uint32(buf[off+4:]))
			off += 8
		}
		if i == 0 {
			d.Insert = edges
		} else {
			d.Delete = edges
		}
	}
	if off != len(buf) {
		return graph.Delta{}, fmt.Errorf("cluster: trailing bytes in delta frame")
	}
	return d, nil
}

// encodeUpdateStats serializes the opUpdateAck payload.
func encodeUpdateStats(s UpdateStats) []byte {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint64(buf, uint64(s.Inserted))
	binary.LittleEndian.PutUint64(buf[8:], uint64(s.Deleted))
	binary.LittleEndian.PutUint64(buf[16:], uint64(s.Recomputed))
	return buf
}

func decodeUpdateStats(buf []byte) (UpdateStats, error) {
	if len(buf) != 24 {
		return UpdateStats{}, fmt.Errorf("cluster: malformed update ack")
	}
	return UpdateStats{
		Inserted:   int64(binary.LittleEndian.Uint64(buf)),
		Deleted:    int64(binary.LittleEndian.Uint64(buf[8:])),
		Recomputed: int64(binary.LittleEndian.Uint64(buf[16:])),
	}, nil
}

func decodePreference(buf []byte) (core.Preference, error) {
	if len(buf) < 4 {
		return core.Preference{}, fmt.Errorf("cluster: short preference frame")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) != 4+12*n {
		return core.Preference{}, fmt.Errorf("cluster: preference frame length mismatch")
	}
	p := core.Preference{Nodes: make([]int32, n), Weights: make([]float64, n)}
	off := 4
	for i := 0; i < n; i++ {
		p.Nodes[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
		p.Weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
		off += 12
	}
	return p, nil
}
