package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"exactppr/internal/graph"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

// JWStore is the brute-force extension of Jeh–Widom described in §2.3
// (PPV-JW): a FLAT hub set chosen by PageRank (not a separator), partial
// vectors pre-computed for every node, and skeleton vectors for every
// hub. It answers any query exactly, at the O(|V|²)-worst-case space the
// paper's partitioned algorithms exist to avoid — the space baseline of
// §3.2.
type JWStore struct {
	G      *graph.Graph
	Params ppr.Params
	Hubs   []int32 // sorted

	// Partial[u] = P_u for hubs (adjusted) and p_u for non-hubs, global
	// id space. Kept adjusted uniformly: self entry of hub removed.
	// Packed like the Store sections: written once, folded many times.
	Partial map[int32]sparse.Packed
	// Skeleton[h](w) = s_w(h) = r_w(h) for every node w.
	Skeleton map[int32]sparse.Packed

	isHub []bool
}

// PrecomputeJW builds the PPV-JW baseline with the hubCount top-PageRank
// nodes as hubs.
func PrecomputeJW(g *graph.Graph, hubCount int, params ppr.Params, workers int) (*JWStore, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if hubCount < 0 || hubCount > g.NumNodes() {
		return nil, fmt.Errorf("core: hubCount %d out of range", hubCount)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	hubs, err := ppr.TopPageRank(g, hubCount, params)
	if err != nil {
		return nil, err
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i] < hubs[j] })
	s := &JWStore{
		G:        g,
		Params:   params,
		Hubs:     hubs,
		Partial:  make(map[int32]sparse.Packed, g.NumNodes()),
		Skeleton: make(map[int32]sparse.Packed, len(hubs)),
		isHub:    make([]bool, g.NumNodes()),
	}
	for _, h := range hubs {
		s.isHub[h] = true
	}
	g.BuildReverse()

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
		ch       = make(chan int32)
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	worker := func() {
		defer wg.Done()
		for u := range ch {
			partial, _, err := ppr.PartialVector(g, u, s.isHub, s.Params)
			if err != nil {
				fail(err)
				continue
			}
			if s.isHub[u] {
				delete(partial, u) // store P_u = p_u − α·x_u
			}
			var skel sparse.Packed
			hasSkel := false
			if s.isHub[u] {
				dense, err := ppr.SkeletonForHub(g, u, s.Params)
				if err != nil {
					fail(err)
					continue
				}
				skel = sparse.PackedFromDense(dense, 0)
				hasSkel = true
			}
			packed := sparse.Pack(partial)
			mu.Lock()
			s.Partial[u] = packed
			if hasSkel {
				s.Skeleton[u] = skel
			}
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker()
	}
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		ch <- u
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return s, nil
}

// Query constructs the exact PPV of u from the flat decomposition — the
// same identity as Store.Query with a single "level".
func (s *JWStore) Query(u int32) (sparse.Vector, error) {
	if u < 0 || int(u) >= s.G.NumNodes() {
		return nil, fmt.Errorf("core: query node %d out of range", u)
	}
	acc := sparse.AcquireAccumulator(s.G.NumNodes())
	defer acc.Release()
	for _, h := range s.Hubs {
		su := s.Skeleton[h].Get(u)
		if h == u {
			su -= s.Params.Alpha
		}
		if su == 0 {
			continue
		}
		acc.AddPacked(s.Partial[h], su/s.Params.Alpha)
		acc.Add(h, su)
	}
	acc.AddPacked(s.Partial[u], 1)
	if s.isHub[u] {
		acc.Add(u, s.Params.Alpha) // restore p_u = P_u + α·x_u
	}
	return acc.Vector(), nil
}

// SpaceBytes reports the encoded size of all stored vectors.
func (s *JWStore) SpaceBytes() int64 {
	var total int64
	for _, v := range s.Partial {
		total += int64(sparse.EncodedSizePacked(v))
	}
	for _, v := range s.Skeleton {
		total += int64(sparse.EncodedSizePacked(v))
	}
	return total
}
