package hierarchy

import (
	"testing"

	"exactppr/internal/gen"
	"exactppr/internal/graph"
)

func email(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Dataset("email", 0.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(graph.FromAdjacency(nil), Options{}); err == nil {
		t.Fatal("empty graph should fail")
	}
	g := graph.FromAdjacency([][]int32{{1}, {0}})
	vs := graph.VirtualSubgraph(g, []int32{0, 1})
	if _, err := Build(vs.G, Options{}); err == nil {
		t.Fatal("root with virtual sink should fail")
	}
}

func TestBuildTinyGraphIsLeafOnly(t *testing.T) {
	g := graph.FromAdjacency([][]int32{{1}, {0}})
	h, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Root.IsLeaf() {
		t.Fatal("2-node graph should not be split (MinSize)")
	}
	if h.Depth() != 1 || h.TotalHubs() != 0 {
		t.Fatalf("Depth=%d TotalHubs=%d", h.Depth(), h.TotalHubs())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAndValidate(t *testing.T) {
	g := email(t)
	h, err := Build(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Depth() < 3 {
		t.Fatalf("expected a multi-level hierarchy, depth = %d", h.Depth())
	}
	// Hub count is much smaller than |V| (the paper's Appendix D claim).
	if ht := h.TotalHubs(); ht == 0 || ht > g.NumNodes()/2 {
		t.Fatalf("total hubs = %d of %d nodes", ht, g.NumNodes())
	}
}

func TestEveryNodeHasHomeAndPath(t *testing.T) {
	g := email(t)
	h, err := Build(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		path := h.Path(u)
		if len(path) == 0 || path[0] != h.Root {
			t.Fatalf("path of %d does not start at root", u)
		}
		if path[len(path)-1] != h.Home(u) {
			t.Fatalf("path of %d does not end at home", u)
		}
		// Each consecutive pair is parent/child.
		for i := 1; i < len(path); i++ {
			if path[i].Parent != path[i-1] {
				t.Fatalf("path of %d broken at %d", u, i)
			}
		}
		// u must be a member of every node on its path.
		for _, n := range path {
			if n.Sub.Local(u) < 0 {
				t.Fatalf("node %d missing from path node at level %d", u, n.Level)
			}
		}
	}
}

func TestHubRemovalFromDeeperLevels(t *testing.T) {
	g := email(t)
	h, err := Build(g, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range h.Nodes() {
		for _, hub := range n.Hubs {
			for _, c := range n.Children {
				if c.Sub.Contains(hub) {
					t.Fatalf("hub %d (level %d) appears in a child subgraph", hub, n.Level)
				}
			}
		}
	}
}

func TestMaxLevels(t *testing.T) {
	g := email(t)
	for _, ml := range []int{1, 2, 3} {
		h, err := Build(g, Options{MaxLevels: ml, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if d := h.Depth(); d > ml+1 {
			t.Fatalf("MaxLevels=%d but depth=%d", ml, d)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("MaxLevels=%d: %v", ml, err)
		}
	}
}

func TestFanout(t *testing.T) {
	g := email(t)
	for _, f := range []int{2, 4, 8} {
		h, err := Build(g, Options{Fanout: f, MaxLevels: 2, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("fanout %d: %v", f, err)
		}
		if kids := len(h.Root.Children); kids > f {
			t.Fatalf("fanout %d: root has %d children", f, kids)
		}
	}
}

func TestHubsPerLevel(t *testing.T) {
	g := email(t)
	h, err := Build(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	counts := h.HubsPerLevel()
	total := 0
	hubCount := 0
	for _, c := range counts {
		total += c
	}
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		if h.IsHub(u) {
			hubCount++
			if h.HubLevel(u) >= len(counts) {
				t.Fatalf("hub %d at level %d beyond counts %v", u, h.HubLevel(u), counts)
			}
		}
	}
	if total != hubCount || total != h.TotalHubs() {
		t.Fatalf("HubsPerLevel sum %d, hubs %d, TotalHubs %d", total, hubCount, h.TotalHubs())
	}
}

func TestLeavesHaveNoInternalEdgesOrAreSmall(t *testing.T) {
	g := email(t)
	h, err := Build(g, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range h.Leaves() {
		induced := graph.InducedSubgraph(g, leaf.Members)
		if induced.G.NumEdges() > 0 && len(leaf.Members) > h.Opts.MinSize && len(leaf.Hubs) == 0 {
			t.Fatalf("leaf %d (size %d) still has %d internal edges",
				leaf.ID, len(leaf.Members), induced.G.NumEdges())
		}
	}
}

func TestDeterministic(t *testing.T) {
	g := email(t)
	h1, err := Build(g, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := Build(g, Options{Seed: 12})
	if len(h1.Nodes()) != len(h2.Nodes()) {
		t.Fatalf("node counts differ: %d vs %d", len(h1.Nodes()), len(h2.Nodes()))
	}
	for i, n := range h1.Nodes() {
		m := h2.Nodes()[i]
		if len(n.Members) != len(m.Members) || len(n.Hubs) != len(m.Hubs) {
			t.Fatalf("node %d differs across builds", i)
		}
	}
}

func TestMemberCountsConserved(t *testing.T) {
	// Across each level: members of all nodes at that level + hubs of all
	// shallower levels = |V|.
	g := email(t)
	h, err := Build(g, Options{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	// Level 0 is everything.
	if len(h.Root.Members) != g.NumNodes() {
		t.Fatal("root must contain every node")
	}
	perLevel := make(map[int]int)
	hubsAbove := 0
	for _, n := range h.Nodes() {
		perLevel[n.Level] += len(n.Members)
	}
	counts := h.HubsPerLevel()
	for lvl := 1; lvl < h.Depth(); lvl++ {
		if lvl-1 < len(counts) {
			hubsAbove += counts[lvl-1]
		}
		// Nodes that became leaves above this level stop contributing;
		// account only subtrees that reached this depth. Instead verify
		// the weaker but exact invariant: for every internal node,
		// Σ children members + hubs = members (done in Validate).
		_ = perLevel
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}
