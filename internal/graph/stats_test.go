package graph

import (
	"strings"
	"testing"
)

func TestComputeStatsDiamond(t *testing.T) {
	g := diamond() // 0→1, 0→2, 1→3, 2→3
	st := ComputeStats(g)
	if st.Nodes != 4 || st.Edges != 4 {
		t.Fatalf("%+v", st)
	}
	if st.AvgOutDegree != 1 {
		t.Fatalf("avg = %v", st.AvgOutDegree)
	}
	if st.MaxOutDegree != 2 || st.MaxInDegree != 2 {
		t.Fatalf("max degrees: %+v", st)
	}
	if st.Dangling != 1 {
		t.Fatalf("dangling = %d", st.Dangling)
	}
	if st.Reciprocity != 0 {
		t.Fatalf("reciprocity = %v", st.Reciprocity)
	}
	if st.Components != 1 || st.LargestComponent != 4 {
		t.Fatalf("components: %+v", st)
	}
}

func TestComputeStatsReciprocity(t *testing.T) {
	g := FromAdjacency([][]int32{{1}, {0, 2}, {}})
	st := ComputeStats(g)
	// Edges: 0→1, 1→0 (both reciprocated), 1→2 (not): 2/3.
	if st.Reciprocity < 0.66 || st.Reciprocity > 0.67 {
		t.Fatalf("reciprocity = %v", st.Reciprocity)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := ComputeStats(FromAdjacency(nil))
	if st.Nodes != 0 || st.Edges != 0 {
		t.Fatalf("%+v", st)
	}
}

func TestComputeStatsComponents(t *testing.T) {
	g := FromAdjacency([][]int32{{1}, {}, {3}, {}, {}})
	st := ComputeStats(g)
	if st.Components != 3 || st.LargestComponent != 2 {
		t.Fatalf("%+v", st)
	}
}

func TestStatsFprint(t *testing.T) {
	var sb strings.Builder
	ComputeStats(diamond()).Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"nodes", "edges", "reciprocity", "components"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := diamond()
	h := DegreeHistogram(g)
	// Degrees: 2,1,1,0.
	if h[2] != 1 || h[1] != 2 || h[0] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestPercentilesOrdered(t *testing.T) {
	g := diamond()
	st := ComputeStats(g)
	if st.OutDegreeP50 > st.OutDegreeP90 || st.OutDegreeP90 > st.OutDegreeP99 {
		t.Fatalf("percentiles not monotone: %+v", st)
	}
}
