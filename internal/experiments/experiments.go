// Package experiments contains one runner per table and figure of the
// paper's evaluation (§6 and the appendices). Runners print plain-text
// tables shaped like the paper's plots — same axes, same series — so the
// qualitative claims (who wins, by what factor, where trends bend) can be
// compared row by row against the published numbers recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"exactppr/internal/cluster"
	"exactppr/internal/core"
	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
	"exactppr/internal/workload"
)

// Config tunes the harness. Zero values select sensible defaults.
type Config struct {
	// Scale multiplies the preset dataset sizes (default 0.5; DESIGN.md
	// explains the laptop-scale substitution).
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Machines is the default cluster size (paper default 6).
	Machines int
	// Queries is the number of random query nodes averaged per
	// measurement (paper: 1000; harness default: 20 to keep full runs
	// minutes, not hours).
	Queries int
	// Alpha and Eps are the PPR parameters (defaults 0.15 and 1e-4).
	Alpha, Eps float64
	// Kernel selects the pre-computation engine (ppr.KernelAuto default;
	// results are kernel-independent, offline cost is not).
	Kernel ppr.Kernel
	// Workers bounds local precompute parallelism (0 = GOMAXPROCS).
	Workers int
	// Net models the interconnect (zero = the paper's 100 Mbit switch).
	Net cluster.NetworkModel
	// Out receives the printed tables (default os.Stdout).
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.5
	}
	if c.Machines <= 0 {
		c.Machines = 6
	}
	if c.Queries <= 0 {
		c.Queries = 20
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.15
	}
	if c.Eps <= 0 {
		c.Eps = 1e-4
	}
	if c.Net == (cluster.NetworkModel{}) {
		c.Net = cluster.HundredMbitSwitch
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	return c
}

func (c Config) params() ppr.Params {
	return ppr.Params{Alpha: c.Alpha, Eps: c.Eps, Kernel: c.Kernel}
}

// Table is one printed result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// Runner computes the tables for one experiment.
type Runner func(cfg Config) ([]Table, error)

var registry = map[string]struct {
	about string
	run   Runner
}{
	"table2":  {"hub nodes per level, Email analogue (Table 2)", runHubTable("email")},
	"table3":  {"hub nodes per level, Web analogue (Table 3)", runHubTable("web")},
	"table4":  {"hub nodes per level, Youtube analogue (Table 4)", runHubTable("youtube")},
	"table5":  {"hub nodes per level, PLD analogue (Table 5)", runHubTable("pld")},
	"table6":  {"Meetup-like graph sizes M1..M5 (Table 6)", runTable6},
	"fig9":    {"GPA vs HGPA on Web: runtime/space/offline/network (Figure 9)", runFig9},
	"fig10":   {"HGPA runtime vs number of machines (Figure 10)", runFig10},
	"fig11":   {"HGPA max per-machine space vs machines (Figure 11)", runFig11},
	"fig12":   {"HGPA pre-computation time vs machines (Figure 12)", runFig12},
	"fig13":   {"HGPA communication cost vs machines (Figure 13)", runFig13},
	"fig14":   {"runtime vs partitioning levels (Figure 14)", runFig14},
	"fig15":   {"space vs partitioning levels (Figure 15)", runFig15},
	"fig16":   {"offline time vs partitioning levels (Figure 16)", runFig16},
	"fig17":   {"multi-way partitioning sweep on Web (Figure 17)", runFig17},
	"fig18":   {"tolerance sweep on Web: runtime/space/offline/comm (Figure 18)", runFig18},
	"fig19":   {"L1/L∞ vs power iteration across tolerances (Figure 19)", runFig19},
	"fig20":   {"scalability on Meetup M1..M5 (Figure 20)", runFig20},
	"fig21":   {"runtime: HGPA vs Pregel+ vs Blogel (Figure 21)", runFig21},
	"fig22":   {"communication: HGPA vs Pregel+ vs Blogel (Figure 22)", runFig22},
	"fig23":   {"centralized: power iteration vs HGPA (Figure 23)", runFig23},
	"fig24":   {"runtime: FastPPV vs HGPA vs HGPA_ad (Figure 24)", runFig24},
	"fig25":   {"accuracy: FastPPV vs HGPA(_ad), L norms (Figure 25)", runFig25},
	"fig26":   {"top-100 Precision/RAG/Kendall (Figure 26)", runFig26},
	"fig27":   {"Pregel+/Blogel scalability on Meetup (Figure 27, App. A)", runFig27},
	"fig28":   {"large-graph HGPA vs processors (Figure 28, App. B)", runFig28},
	"balance": {"shard load balance report (supplementary)", runBalance},
	"mc":      {"Monte Carlo [5] vs exact HGPA (supplementary)", runMonteCarlo},
	"space":   {"pre-computation space: PPV-JW vs GPA vs HGPA (§3.2, supplementary)", runSpace},
}

// List returns the known experiment ids in order.
func List() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// About returns the one-line description of an experiment id.
func About(id string) string { return registry[id].about }

// Run executes one experiment and returns its tables.
func Run(id string, cfg Config) ([]Table, error) {
	entry, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(List(), ", "))
	}
	return entry.run(cfg.withDefaults())
}

// RunAndPrint executes one experiment and prints its tables to cfg.Out.
func RunAndPrint(id string, cfg Config) error {
	cfg = cfg.withDefaults()
	start := time.Now()
	tables, err := Run(id, cfg)
	if err != nil {
		return err
	}
	for i := range tables {
		tables[i].Fprint(cfg.Out)
	}
	fmt.Fprintf(cfg.Out, "[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	return nil
}

// ---- shared helpers ----

// storeKey caches HGPA stores across runners within a process: the
// pre-computation dominates harness time and many figures share builds.
type storeKey struct {
	dataset          string
	scale            float64
	seed             int64
	alpha, eps       float64
	kernel           ppr.Kernel // stores are kernel-independent, reported offline cost is not
	fanout, maxLevel int
}

var (
	storeCacheMu sync.Mutex
	storeCache   = map[storeKey]*builtStore{}
)

type builtStore struct {
	ds    *workload.Dataset
	store *core.Store
	info  *core.PrecomputeInfo
}

func buildStore(cfg Config, dataset string, opts hierarchy.Options) (*builtStore, error) {
	key := storeKey{dataset, cfg.Scale, cfg.Seed, cfg.Alpha, cfg.Eps, cfg.Kernel, opts.Fanout, opts.MaxLevels}
	storeCacheMu.Lock()
	if b, ok := storeCache[key]; ok {
		storeCacheMu.Unlock()
		return b, nil
	}
	storeCacheMu.Unlock()

	ds, err := workload.Load(dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	opts.Seed = cfg.Seed
	h, err := hierarchy.Build(ds.G, opts)
	if err != nil {
		return nil, err
	}
	store, info, err := core.PrecomputeWithInfo(h, cfg.params(), cfg.Workers)
	if err != nil {
		return nil, err
	}
	b := &builtStore{ds: ds, store: store, info: info}
	storeCacheMu.Lock()
	storeCache[key] = b
	storeCacheMu.Unlock()
	return b, nil
}

// ResetCache clears the cross-runner store cache (tests use it).
func ResetCache() {
	storeCacheMu.Lock()
	storeCache = map[storeKey]*builtStore{}
	storeCacheMu.Unlock()
}

// queryMeasurement aggregates distributed query costs over the workload.
type queryMeasurement struct {
	AvgRuntime time.Duration // modeled: max machine compute + 1 net round
	AvgCompute time.Duration // slowest machine's compute only
	AvgBytes   float64
	MaxSpace   int64 // max per-machine stored bytes
	// AvgMaxWork is the per-query maximum over machines of the number of
	// sparse entries folded — the deterministic load metric behind the
	// paper's "halve machines, halve runtime" claim, free of host
	// scheduling noise.
	AvgMaxWork float64
}

// measureCluster runs the query workload against an n-machine split of
// the store, sequentially per machine for unbiased per-machine timing,
// and models the single network round with cfg.Net.
func measureCluster(cfg Config, b *builtStore, machines int) (*queryMeasurement, error) {
	coord, err := cluster.NewLocalCluster(b.store, machines)
	if err != nil {
		return nil, err
	}
	shards, err := core.Split(b.store, machines)
	if err != nil {
		return nil, err
	}
	m := &queryMeasurement{}
	for _, sh := range shards {
		if s := sh.SpaceBytes(); s > m.MaxSpace {
			m.MaxSpace = s
		}
	}
	queries := workload.Queries(b.ds.G, cfg.Queries, cfg.Seed+99)
	var totalRuntime, totalCompute time.Duration
	var totalBytes, totalMaxWork int64
	for _, q := range queries {
		stats, err := coord.QuerySequential(q)
		if err != nil {
			return nil, err
		}
		totalCompute += stats.MaxMachineTime()
		totalRuntime += stats.MaxMachineTime() + cfg.Net.Cost(1, stats.BytesReceived)
		totalBytes += stats.BytesReceived
		var maxWork int64
		for _, sh := range shards {
			w, err := sh.QueryWork(q)
			if err != nil {
				return nil, err
			}
			if w > maxWork {
				maxWork = w
			}
		}
		totalMaxWork += maxWork
	}
	m.AvgRuntime = totalRuntime / time.Duration(len(queries))
	m.AvgCompute = totalCompute / time.Duration(len(queries))
	m.AvgBytes = float64(totalBytes) / float64(len(queries))
	m.AvgMaxWork = float64(totalMaxWork) / float64(len(queries))
	return m, nil
}

func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000) }
func kb(b float64) string       { return fmt.Sprintf("%.1f", b/1024) }
func mb(b int64) string         { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }

// offlinePerMachine estimates per-machine pre-computation time on an
// n-machine cluster from the summed task time (tasks are independent and
// hub-balanced; see core.PrecomputeInfo).
func offlinePerMachine(info *core.PrecomputeInfo, machines int) time.Duration {
	return info.TotalTaskTime / time.Duration(machines)
}
