// Package cluster implements the paper's coordinator-based share-nothing
// platform (§3.1, Figure 8): n machines each hold one shard of the
// pre-computation; a query is broadcast, every machine answers with ONE
// sparse vector, and the coordinator sums them. That single round trip
// per machine is the paper's headline communication property, and this
// package accounts the bytes of every response so the communication-cost
// experiments (Figures 13, 22, 28) measure real encoded payloads.
//
// The serving layer is fully concurrent: the one-round protocol is
// embarrassingly parallel across queries, so the TCP transport
// multiplexes many in-flight queries over one connection (request-id
// demux, see mux.go), workers execute frames on a bounded goroutine pool
// (tcp.go), and the Coordinator is safe for concurrent Query/QuerySet
// calls with per-query context cancellation. An HTTP/JSON gateway
// (gateway.go) exposes the whole thing to ordinary web clients.
//
// Two transports are provided: in-process machines (goroutines over
// shards — used by benchmarks, zero network noise) and TCP machines
// (length-prefixed multiplexed frames over real sockets — used by the
// distributed example and integration tests). Both speak through the
// Machine interface, so the Coordinator is transport-agnostic.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"exactppr/internal/core"
	"exactppr/internal/graph"
	"exactppr/internal/sparse"
)

// Machine answers PPV queries with this machine's additive share.
// Implementations must be safe for concurrent calls; a call must honor
// context cancellation at least on the transport level (an in-process
// machine may finish small computations instead of polling the context).
type Machine interface {
	// QueryShare returns the machine's share of the PPV of u, encoded in
	// the sparse wire format, plus the machine-local compute time.
	QueryShare(ctx context.Context, u int32) (payload []byte, compute time.Duration, err error)
	// QuerySetShare is the preference-set variant (PPV linearity, §2):
	// the machine's share of the weighted-set PPV, still one vector.
	QuerySetShare(ctx context.Context, p core.Preference) (payload []byte, compute time.Duration, err error)
}

// Updater applies edge-delta batches to a machine's live store.
// Machines are free not to implement it (a read-only worker); the
// coordinator refuses to start an update unless every machine does.
type Updater interface {
	// ApplyUpdates applies one batch atomically w.r.t. this machine's
	// queries: every query share is computed against either the
	// pre-batch or the post-batch snapshot, never a mix.
	ApplyUpdates(ctx context.Context, d graph.Delta) (UpdateStats, error)
}

// UpdateStats reports one applied edge-delta batch.
type UpdateStats struct {
	// Inserted/Deleted are the edge operations that changed the graph.
	Inserted, Deleted int64
	// Recomputed is the number of store vectors recomputed — the
	// dirty-partition work a full rebuild would have multiplied.
	Recomputed int64
	// Wall is the end-to-end batch time observed by the caller.
	Wall time.Duration
}

// ShardMachine is an in-process Machine over a core.Shard.
type ShardMachine struct {
	Shard *core.Shard
}

// QueryShare implements Machine. The share is encoded even in-process so
// byte accounting matches what a network transport would carry. The
// shard's fold drains in packed (sorted) form, so encoding is a straight
// sequential copy — no map iteration on the worker's hot path.
func (m *ShardMachine) QueryShare(ctx context.Context, u int32) ([]byte, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	v, err := m.Shard.QueryPacked(u)
	if err != nil {
		return nil, 0, err
	}
	payload := sparse.EncodePacked(v)
	return payload, time.Since(start), nil
}

// QuerySetShare implements Machine for preference sets.
func (m *ShardMachine) QuerySetShare(ctx context.Context, p core.Preference) ([]byte, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	v, err := m.Shard.QuerySetPacked(p)
	if err != nil {
		return nil, 0, err
	}
	payload := sparse.EncodePacked(v)
	return payload, time.Since(start), nil
}

// QueryStats reports one distributed query.
type QueryStats struct {
	// Result is the exact PPV in packed columnar form — the coordinator
	// produces it by merging the machines' sorted share streams, so no
	// map is ever built on the serving path. Call Result.Unpack() for a
	// mutable map Vector.
	Result sparse.Packed
	// BytesReceived is the total payload the coordinator received — the
	// paper's communication-cost metric.
	BytesReceived int64
	// MachineTime holds each machine's compute time; the paper reports
	// the maximum as the query runtime (§6.2.2).
	MachineTime []time.Duration
	// Wall is the coordinator's end-to-end time (fan-out + sum).
	Wall time.Duration
}

// MaxMachineTime returns the slowest machine's compute time.
func (qs *QueryStats) MaxMachineTime() time.Duration {
	var m time.Duration
	for _, d := range qs.MachineTime {
		if d > m {
			m = d
		}
	}
	return m
}

// Coordinator fans a query out to all machines once and sums the shares.
// It holds no per-query state, so any number of goroutines may call
// Query/QuerySet concurrently; throughput then scales with worker-side
// parallelism because the TCP transport multiplexes in-flight queries.
type Coordinator struct {
	machines []Machine
	// Timeout, when non-zero, bounds every query that arrives without
	// its own deadline. Zero means no coordinator-imposed deadline.
	Timeout time.Duration
}

// NewCoordinator returns a coordinator over the given machines.
func NewCoordinator(machines ...Machine) (*Coordinator, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("cluster: no machines")
	}
	return &Coordinator{machines: machines}, nil
}

// NumMachines returns the cluster size.
func (c *Coordinator) NumMachines() int { return len(c.machines) }

// SupportsUpdates reports whether every machine accepts edge-delta
// batches — the condition ApplyUpdates enforces. The gateway uses it to
// answer 501 for read-only clusters instead of tearing one mid-fan-out.
// Machines exposing their own probe (TCP transports send a no-op delta
// so the answer reflects the remote worker's -updates configuration,
// not just the client stub's method set) are asked; for in-process
// machines the interface check is exact.
func (c *Coordinator) SupportsUpdates() bool {
	for _, m := range c.machines {
		if probe, ok := m.(interface{ SupportsUpdates() bool }); ok {
			if !probe.SupportsUpdates() {
				return false
			}
			continue
		}
		if _, ok := m.(Updater); !ok {
			return false
		}
	}
	return true
}

// Query runs one exact PPV query: one request to each machine, one vector
// back from each, summed locally. Machines are called concurrently.
func (c *Coordinator) Query(u int32) (*QueryStats, error) {
	return c.QueryCtx(context.Background(), u)
}

// QueryCtx is Query with per-query cancellation: when ctx is done, the
// fan-out is abandoned (in-flight worker calls are cancelled) and the
// context error is returned.
func (c *Coordinator) QueryCtx(ctx context.Context, u int32) (*QueryStats, error) {
	return c.fanOut(ctx, func(ctx context.Context, m Machine) ([]byte, time.Duration, error) {
		return m.QueryShare(ctx, u)
	})
}

// QuerySet runs the one-round protocol for a preference node set: each
// machine folds its weighted-set share, the coordinator sums. Exactness
// follows from PPV linearity plus the shard decomposition.
func (c *Coordinator) QuerySet(p core.Preference) (*QueryStats, error) {
	return c.QuerySetCtx(context.Background(), p)
}

// QuerySetCtx is QuerySet with per-query cancellation.
func (c *Coordinator) QuerySetCtx(ctx context.Context, p core.Preference) (*QueryStats, error) {
	return c.fanOut(ctx, func(ctx context.Context, m Machine) ([]byte, time.Duration, error) {
		return m.QuerySetShare(ctx, p)
	})
}

// fanOut implements the one-round protocol: call every machine once,
// concurrently, and sum the decoded shares. The first failure cancels
// the remaining calls and is reported with its machine index, so a
// worker dying mid-flight surfaces as one clean error instead of a hang.
func (c *Coordinator) fanOut(ctx context.Context, call func(context.Context, Machine) ([]byte, time.Duration, error)) (*QueryStats, error) {
	start := time.Now()
	if c.Timeout > 0 {
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.Timeout)
			defer cancel()
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type reply struct {
		payload []byte
		compute time.Duration
		err     error
	}
	replies := make([]reply, len(c.machines))
	var wg sync.WaitGroup
	wg.Add(len(c.machines))
	for i, m := range c.machines {
		go func(i int, m Machine) {
			defer wg.Done()
			payload, compute, err := call(ctx, m)
			replies[i] = reply{payload, compute, err}
			if err != nil {
				cancel() // release the other machines early
			}
		}(i, m)
	}
	wg.Wait()

	stats := &QueryStats{
		MachineTime: make([]time.Duration, len(c.machines)),
	}
	// Report the most informative error: a machine failure beats the
	// context cancellation it triggered on its siblings.
	var firstErr error
	for i, rp := range replies {
		if rp.err != nil {
			err := fmt.Errorf("cluster: machine %d: %w", i, rp.err)
			if firstErr == nil || isCancel(firstErr) && !isCancel(err) {
				firstErr = err
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// "Sum the shares": every payload decodes straight into columnar
	// form, and the k sorted streams merge in one pass — no maps, no
	// per-entry hashing, however many machines answered.
	parts := make([]sparse.Packed, len(c.machines))
	for i, rp := range replies {
		v, err := sparse.DecodePacked(rp.payload)
		if err != nil {
			return nil, fmt.Errorf("cluster: machine %d payload: %w", i, err)
		}
		stats.BytesReceived += int64(len(rp.payload))
		stats.MachineTime[i] = rp.compute
		parts[i] = v
	}
	stats.Result = sparse.MergePacked(parts)
	stats.Wall = time.Since(start)
	return stats, nil
}

// ApplyUpdates fans an edge-delta batch out to every machine, which
// applies it to its own copy of the store (workers each hold the full
// pre-computation and serve one shard slice of it). All machines must
// implement Updater or the call is refused before anything is sent.
//
// Consistency: each machine swaps in its post-batch snapshot
// atomically, but the swaps are not coordinated across machines — a
// query overlapping ApplyUpdates may sum pre-batch shares from one
// machine with post-batch shares from another. Callers needing
// cross-machine batch atomicity must quiesce queries around the call;
// updates applied while no queries overlap are always exact. A partial
// failure is reported as an error and may leave machines on different
// batches — retry the batch (deltas are effective-filtered, so replays
// are idempotent) or rebuild.
func (c *Coordinator) ApplyUpdates(ctx context.Context, d graph.Delta) (UpdateStats, error) {
	start := time.Now()
	updaters := make([]Updater, len(c.machines))
	for i, m := range c.machines {
		u, ok := m.(Updater)
		if !ok {
			return UpdateStats{}, fmt.Errorf("cluster: machine %d does not support updates", i)
		}
		updaters[i] = u
	}
	type reply struct {
		stats UpdateStats
		err   error
	}
	replies := make([]reply, len(updaters))
	var wg sync.WaitGroup
	wg.Add(len(updaters))
	for i, u := range updaters {
		go func(i int, u Updater) {
			defer wg.Done()
			stats, err := u.ApplyUpdates(ctx, d)
			replies[i] = reply{stats, err}
		}(i, u)
	}
	wg.Wait()
	var out UpdateStats
	for i, rp := range replies {
		if rp.err != nil {
			return UpdateStats{}, fmt.Errorf("cluster: machine %d update: %w (cluster may be torn — retry the batch)", i, rp.err)
		}
		if i == 0 {
			out = rp.stats
		} else if rp.stats.Recomputed != out.Recomputed {
			return UpdateStats{}, fmt.Errorf("cluster: machines disagree on recompute (%d vs %d) — replicas have diverged",
				out.Recomputed, rp.stats.Recomputed)
		}
	}
	out.Wall = time.Since(start)
	return out, nil
}

func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// QuerySequential runs the same one-round protocol but calls machines one
// after another. The result and byte accounting are identical to Query;
// per-machine compute times are unbiased because machines never compete
// for host cores. Experiments use MaxMachineTime() of a sequential run as
// the distributed query runtime (the paper reports "the maximum runtime
// across all machines", §6.2.2), which keeps the numbers meaningful even
// when the simulation host has fewer cores than simulated machines.
func (c *Coordinator) QuerySequential(u int32) (*QueryStats, error) {
	start := time.Now()
	ctx := context.Background()
	stats := &QueryStats{
		MachineTime: make([]time.Duration, len(c.machines)),
	}
	parts := make([]sparse.Packed, len(c.machines))
	for i, m := range c.machines {
		payload, compute, err := m.QueryShare(ctx, u)
		if err != nil {
			return nil, fmt.Errorf("cluster: machine %d: %w", i, err)
		}
		v, err := sparse.DecodePacked(payload)
		if err != nil {
			return nil, fmt.Errorf("cluster: machine %d payload: %w", i, err)
		}
		stats.BytesReceived += int64(len(payload))
		stats.MachineTime[i] = compute
		parts[i] = v
	}
	stats.Result = sparse.MergePacked(parts)
	stats.Wall = time.Since(start)
	return stats, nil
}

// NewLocalCluster shards a store across n in-process machines and returns
// the coordinator — the standard benchmark setup.
func NewLocalCluster(s *core.Store, n int) (*Coordinator, error) {
	shards, err := core.Split(s, n)
	if err != nil {
		return nil, err
	}
	machines := make([]Machine, n)
	for i, sh := range shards {
		machines[i] = &ShardMachine{Shard: sh}
	}
	return NewCoordinator(machines...)
}
