package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"exactppr/internal/core"
	"exactppr/internal/graph"
	"exactppr/internal/sparse"
)

// Querier is the backend a Gateway serves from. *Coordinator implements
// it; anything answering exact PPV queries with per-query cancellation
// works (e.g. a single-store adapter in tests).
type Querier interface {
	QueryCtx(ctx context.Context, u int32) (*QueryStats, error)
	QuerySetCtx(ctx context.Context, p core.Preference) (*QueryStats, error)
}

// Gateway exposes a Querier over HTTP/JSON:
//
//	GET  /ppv/{node}?topk=K   one PPV query, top-K entries
//	POST /ppv                 batch: many sources fanned out concurrently,
//	                          or one weighted preference-set query
//	POST /edges               edge-delta batch applied to the live store
//	                          (requires an Updater backend, else 501)
//	GET  /healthz             liveness + uptime
//	GET  /stats               serving counters (queries, errors, bytes, …)
//
// The zero value is not usable; construct with NewGateway. All handlers
// are safe for concurrent use — concurrency is the point: every request
// rides the multiplexed cluster transport without queueing behind others.
type Gateway struct {
	backend Querier

	// Timeout bounds each backend query (default 30s).
	Timeout time.Duration
	// MaxBatch caps the number of sources in one POST /ppv (default 1024).
	MaxBatch int
	// BatchConcurrency bounds the fan-out of one batch request
	// (default 2×GOMAXPROCS).
	BatchConcurrency int
	// DefaultTopK is used when a request has no topk parameter (default 10).
	DefaultTopK int

	start    time.Time
	queries  atomic.Int64 // single-source queries answered OK
	batches  atomic.Int64 // batch requests answered
	updates  atomic.Int64 // edge-delta batches applied OK
	errors   atomic.Int64 // queries that failed
	inFlight atomic.Int64
	bytes    atomic.Int64 // cluster payload bytes behind HTTP answers
	wallNs   atomic.Int64 // summed backend wall time of OK queries
}

// Gateway defaults, applied by NewGateway and as fallbacks for zeroed
// fields so the limits can never be configured away entirely.
const (
	defaultGatewayTimeout = 30 * time.Second
	defaultGatewayBatch   = 1024
	defaultGatewayTopK    = 10
)

// NewGateway returns a Gateway over b with default limits.
func NewGateway(b Querier) *Gateway {
	return &Gateway{
		backend:          b,
		Timeout:          defaultGatewayTimeout,
		MaxBatch:         defaultGatewayBatch,
		BatchConcurrency: 2 * runtime.GOMAXPROCS(0),
		DefaultTopK:      defaultGatewayTopK,
		start:            time.Now(),
	}
}

func (g *Gateway) timeout() time.Duration {
	if g.Timeout > 0 {
		return g.Timeout
	}
	return defaultGatewayTimeout
}

func (g *Gateway) maxBatch() int {
	if g.MaxBatch > 0 {
		return g.MaxBatch
	}
	return defaultGatewayBatch
}

func (g *Gateway) defaultTopK() int {
	if g.DefaultTopK > 0 {
		return g.DefaultTopK
	}
	return defaultGatewayTopK
}

func (g *Gateway) batchWorkers() int {
	if g.BatchConcurrency > 0 {
		return g.BatchConcurrency
	}
	return 2 * runtime.GOMAXPROCS(0)
}

// Handler returns the gateway's routing table.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ppv/{node}", g.handleSingle)
	mux.HandleFunc("POST /ppv", g.handleBatch)
	mux.HandleFunc("POST /edges", g.handleEdges)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /stats", g.handleStats)
	return mux
}

// entryJSON is one (node, score) element of a top-k answer.
type entryJSON struct {
	ID    int32   `json:"id"`
	Score float64 `json:"score"`
}

// resultJSON is one answered PPV query.
type resultJSON struct {
	Node   *int32      `json:"node,omitempty"` // nil for preference-set answers
	TopK   []entryJSON `json:"topk,omitempty"`
	WallNs int64       `json:"wall_ns,omitempty"`
	Bytes  int64       `json:"bytes,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// batchRequest is the POST /ppv body. Plain nodes fan out as independent
// single-source queries; set=true folds nodes (+optional weights) into
// one preference-set query via PPV linearity.
type batchRequest struct {
	Nodes   []int32   `json:"nodes"`
	Weights []float64 `json:"weights,omitempty"`
	TopK    int       `json:"topk,omitempty"`
	Set     bool      `json:"set,omitempty"`
}

func (g *Gateway) queryCtx(parent context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, g.timeout())
}

func (g *Gateway) topK(r *http.Request) (int, error) {
	k := g.defaultTopK()
	if s := r.URL.Query().Get("topk"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			return 0, fmt.Errorf("bad topk %q", s)
		}
		k = v
	}
	return k, nil
}

// runSingle answers one source query under its own Timeout-derived
// deadline, so every query in a batch gets the full per-query budget.
// The raw error is returned alongside the JSON so handlers can pick a
// status code; batch callers embed the message in place instead.
func (g *Gateway) runSingle(parent context.Context, u int32, k int) (resultJSON, error) {
	ctx, cancel := g.queryCtx(parent)
	defer cancel()
	g.inFlight.Add(1)
	defer g.inFlight.Add(-1)
	stats, err := g.backend.QueryCtx(ctx, u)
	if err != nil {
		g.errors.Add(1)
		return resultJSON{Node: &u, Error: err.Error()}, err
	}
	g.queries.Add(1)
	g.bytes.Add(stats.BytesReceived)
	g.wallNs.Add(int64(stats.Wall))
	return resultJSON{Node: &u, TopK: topEntries(stats.Result, k), WallNs: int64(stats.Wall), Bytes: stats.BytesReceived}, nil
}

// runSet is runSingle for one weighted preference-set query.
func (g *Gateway) runSet(parent context.Context, p core.Preference, k int) (resultJSON, error) {
	ctx, cancel := g.queryCtx(parent)
	defer cancel()
	g.inFlight.Add(1)
	defer g.inFlight.Add(-1)
	stats, err := g.backend.QuerySetCtx(ctx, p)
	if err != nil {
		g.errors.Add(1)
		return resultJSON{Error: err.Error()}, err
	}
	g.queries.Add(1)
	g.bytes.Add(stats.BytesReceived)
	g.wallNs.Add(int64(stats.Wall))
	return resultJSON{TopK: topEntries(stats.Result, k), WallNs: int64(stats.Wall), Bytes: stats.BytesReceived}, nil
}

// statusClientClosedRequest is nginx's conventional status for "the
// client went away before we could answer" — there is no stdlib
// constant. It is what a cancelled request context maps to.
const statusClientClosedRequest = 499

// queryErrorStatus maps a failed backend query to an HTTP status: a
// deadline is the gateway timing out (504), a cancellation is the
// client hanging up (499), an out-of-range node is the client asking
// for something that does not exist (404 — matched on the error text
// because worker errors cross the wire as strings), anything else is a
// broken or unhappy cluster behind the gateway (502).
func queryErrorStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case strings.Contains(err.Error(), "out of range"):
		return http.StatusNotFound
	default:
		return http.StatusBadGateway
	}
}

// topEntries selects the k best entries straight off the packed result
// (bounded heap, no map materialization) — the per-request cost every
// ?topk=K query pays.
func topEntries(v sparse.Packed, k int) []entryJSON {
	entries := v.TopK(k)
	out := make([]entryJSON, len(entries))
	for i, e := range entries {
		out[i] = entryJSON{ID: e.ID, Score: e.Score}
	}
	return out
}

func (g *Gateway) handleSingle(w http.ResponseWriter, r *http.Request) {
	node, err := strconv.ParseInt(r.PathValue("node"), 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad node %q", r.PathValue("node")))
		return
	}
	k, err := g.topK(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, err := g.runSingle(r.Context(), int32(node), k)
	if err != nil {
		writeJSON(w, queryErrorStatus(err), res)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	maxBatch := g.maxBatch()
	// Cap the body BEFORE decoding so an oversized batch is rejected on
	// size, not materialized in memory first. 48 bytes covers one node
	// plus a full-precision float64 weight in worst-case JSON; 4 KiB
	// covers the envelope.
	body := http.MaxBytesReader(w, r.Body, int64(maxBatch)*48+4096)
	var req batchRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes — split the batch", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Nodes) == 0 {
		httpError(w, http.StatusBadRequest, "empty nodes")
		return
	}
	if len(req.Nodes) > maxBatch {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Nodes), maxBatch))
		return
	}
	if req.Weights != nil && !req.Set {
		// Refuse rather than silently answer unweighted per-node queries.
		httpError(w, http.StatusBadRequest, "weights require \"set\":true")
		return
	}
	if req.Weights != nil && len(req.Weights) != len(req.Nodes) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("%d nodes but %d weights", len(req.Nodes), len(req.Weights)))
		return
	}
	k := req.TopK
	if k < 1 {
		k = g.defaultTopK()
	}
	g.batches.Add(1)

	if req.Set {
		res, err := g.runSet(r.Context(), core.Preference{Nodes: req.Nodes, Weights: req.Weights}, k)
		if err != nil {
			writeJSON(w, queryErrorStatus(err), res)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}

	// Fan the sources out concurrently; a bounded worker group keeps one
	// huge batch from monopolizing the cluster. Per-source failures are
	// reported in place — each failed result carries its error string —
	// so one bad node does not sink its batch-mates, and the top-level
	// failed/partial fields let clients notice without scanning every
	// result.
	results := make([]resultJSON, len(req.Nodes))
	var failed atomic.Int64
	sem := make(chan struct{}, g.batchWorkers())
	var wg sync.WaitGroup
	for i, u := range req.Nodes {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, u int32) {
			defer wg.Done()
			defer func() { <-sem }()
			var err error
			results[i], err = g.runSingle(r.Context(), u, k)
			if err != nil {
				failed.Add(1)
			}
		}(i, u)
	}
	wg.Wait()
	// A batch cut short because the REQUEST died (client hung up, or a
	// server-level deadline) is not a success: its zeroed/failed results
	// would be indistinguishable from empty PPVs under a 200. Map the
	// request-context error exactly like a single query's.
	status := http.StatusOK
	if ctxErr := r.Context().Err(); ctxErr != nil {
		status = queryErrorStatus(ctxErr)
	}
	writeJSON(w, status, batchResponse{
		Results: results,
		Failed:  int(failed.Load()),
		Partial: failed.Load() > 0,
	})
}

// batchResponse is the POST /ppv answer for fanned-out batches. Partial
// is true when at least one (but not necessarily every) result failed;
// failed results carry their error in place.
type batchResponse struct {
	Results []resultJSON `json:"results"`
	Failed  int          `json:"failed,omitempty"`
	Partial bool         `json:"partial,omitempty"`
}

// updateRequest is the POST /edges body: edge pairs to insert/delete as
// one atomic batch.
type updateRequest struct {
	Insert [][2]int32 `json:"insert,omitempty"`
	Delete [][2]int32 `json:"delete,omitempty"`
}

// maxUpdateBytes bounds the POST /edges body (~170k edge operations) —
// larger graph loads belong in the offline build pipeline, not a
// serving-path update batch.
const maxUpdateBytes = 4 << 20

func (g *Gateway) handleEdges(w http.ResponseWriter, r *http.Request) {
	backend, ok := g.backend.(Updater)
	if !ok {
		httpError(w, http.StatusNotImplemented, "backend does not support updates")
		return
	}
	if probe, ok := g.backend.(interface{ SupportsUpdates() bool }); ok && !probe.SupportsUpdates() {
		httpError(w, http.StatusNotImplemented, "cluster has read-only machines — restart workers with -updates")
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxUpdateBytes)
	var req updateRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes — split the batch", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	d := graph.Delta{Insert: req.Insert, Delete: req.Delete}
	if d.Len() == 0 {
		httpError(w, http.StatusBadRequest, "empty delta")
		return
	}
	stats, err := backend.ApplyUpdates(r.Context(), d)
	if err != nil {
		if strings.Contains(err.Error(), "out of range") {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		g.errors.Add(1)
		httpError(w, queryErrorStatus(err), err.Error())
		return
	}
	g.updates.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"inserted":   stats.Inserted,
		"deleted":    stats.Deleted,
		"recomputed": stats.Recomputed,
		"wall_ns":    stats.Wall.Nanoseconds(),
	})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	machines := 0
	if c, ok := g.backend.(interface{ NumMachines() int }); ok {
		machines = c.NumMachines()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(g.start).Seconds(),
		"machines": machines,
	})
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	ok := g.queries.Load()
	var avg int64
	if ok > 0 {
		avg = g.wallNs.Load() / ok
	}
	stats := map[string]any{
		"queries":        ok,
		"batches":        g.batches.Load(),
		"updates":        g.updates.Load(),
		"errors":         g.errors.Load(),
		"in_flight":      g.inFlight.Load(),
		"bytes_received": g.bytes.Load(),
		"avg_wall_ns":    avg,
		"uptime_s":       time.Since(g.start).Seconds(),
	}
	// Disk-resident backends surface their serving counters so cache or
	// mmap regressions are observable in production, not just in benches.
	if p, ok := g.backend.(interface{ DiskStats() core.DiskStats }); ok {
		ds := p.DiskStats()
		stats["disk"] = map[string]any{
			"cache_hits":      ds.CacheHits,
			"cache_misses":    ds.CacheMisses,
			"coalesced_reads": ds.CoalescedReads,
			"reads":           ds.Reads,
			"evictions":       ds.Evictions,
			"cached":          ds.Cached,
			"mmap":            ds.Mmap,
			"format_version":  ds.FormatVersion,
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
