package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"exactppr/internal/core"
	"exactppr/internal/graph"
	"exactppr/internal/sparse"
)

// LiveShard is a Machine over one shard of an updatable store. Queries
// read the current shard snapshot through one atomic load; ApplyUpdates
// advances the underlying LiveStore (dirty-partition recompute) and
// swaps the shard pointer, so every query is answered entirely against
// one batch boundary. It is the worker-side Updater for `pprserve
// -updates`.
type LiveShard struct {
	live         *core.LiveStore
	index, total int

	mu    sync.Mutex // serializes ApplyUpdates + shard refresh
	shard atomic.Pointer[core.Shard]
}

// NewLiveShard returns the machine serving shard index of total over
// the given live store.
func NewLiveShard(live *core.LiveStore, index, total int) (*LiveShard, error) {
	ls := &LiveShard{live: live, index: index, total: total}
	if err := ls.refresh(live.Store()); err != nil {
		return nil, err
	}
	return ls, nil
}

// Shard returns the currently served shard snapshot.
func (m *LiveShard) Shard() *core.Shard { return m.shard.Load() }

// refresh re-splits s and installs this machine's slice. Split is
// deterministic in the hierarchy, so every worker refreshing from the
// same batch sequence owns the same slice of the same store.
func (m *LiveShard) refresh(s *core.Store) error {
	shards, err := core.Split(s, m.total)
	if err != nil {
		return err
	}
	m.shard.Store(shards[m.index])
	return nil
}

// QueryShare implements Machine.
func (m *LiveShard) QueryShare(ctx context.Context, u int32) ([]byte, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	v, err := m.shard.Load().QueryPacked(u)
	if err != nil {
		return nil, 0, err
	}
	return sparse.EncodePacked(v), time.Since(start), nil
}

// QuerySetShare implements Machine.
func (m *LiveShard) QuerySetShare(ctx context.Context, p core.Preference) ([]byte, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	v, err := m.shard.Load().QuerySetPacked(p)
	if err != nil {
		return nil, 0, err
	}
	return sparse.EncodePacked(v), time.Since(start), nil
}

// ApplyUpdates implements Updater. The batch recompute runs to
// completion once started; ctx only gates the start.
func (m *LiveShard) ApplyUpdates(ctx context.Context, d graph.Delta) (UpdateStats, error) {
	if err := ctx.Err(); err != nil {
		return UpdateStats{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	info, err := m.live.ApplyUpdates(d, 0)
	if err != nil {
		return UpdateStats{}, err
	}
	if info.Inserted+info.Deleted > 0 { // no-op batches (capability probes) skip the re-split
		if err := m.refresh(m.live.Store()); err != nil {
			return UpdateStats{}, err
		}
	}
	return UpdateStats{
		Inserted:   int64(info.Inserted),
		Deleted:    int64(info.Deleted),
		Recomputed: int64(info.Recomputed),
		Wall:       time.Since(start),
	}, nil
}

// LiveLocalCluster is NewLocalCluster over an updatable store: n
// in-process machines share ONE LiveStore, and ApplyUpdates applies
// each batch exactly once before refreshing every machine's shard. It
// backs the single-host `pprserve -store … -http … -updates` gateway.
//
// Unlike a multi-host cluster, queries here are snapshot-atomic across
// machines: a query holds a read lock over its whole fan-out, and the
// batch's shard swap takes the write lock, so no query ever sums
// pre-batch and post-batch shares. The dirty-partition recompute runs
// BEFORE the write lock is taken — queries are only excluded for the
// duration of n pointer swaps.
type LiveLocalCluster struct {
	*Coordinator
	live     *core.LiveStore
	mu       sync.Mutex   // serializes ApplyUpdates callers
	rw       sync.RWMutex // queries share it; the shard swap excludes them
	machines []*LiveShard
}

// NewLiveLocalCluster shards s across n updatable in-process machines.
func NewLiveLocalCluster(s *core.Store, n int) (*LiveLocalCluster, error) {
	live := core.NewLiveStore(s)
	c := &LiveLocalCluster{live: live}
	machines := make([]Machine, n)
	for i := 0; i < n; i++ {
		m, err := NewLiveShard(live, i, n)
		if err != nil {
			return nil, err
		}
		c.machines = append(c.machines, m)
		machines[i] = m
	}
	coord, err := NewCoordinator(machines...)
	if err != nil {
		return nil, err
	}
	c.Coordinator = coord
	return c, nil
}

// Store returns the current snapshot (for stats and direct reads).
func (c *LiveLocalCluster) Store() *core.Store { return c.live.Store() }

// QueryCtx shadows the embedded Coordinator's to hold the snapshot read
// lock across the whole fan-out (see the type comment).
func (c *LiveLocalCluster) QueryCtx(ctx context.Context, u int32) (*QueryStats, error) {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.Coordinator.QueryCtx(ctx, u)
}

// QuerySetCtx shadows the embedded Coordinator's; see QueryCtx.
func (c *LiveLocalCluster) QuerySetCtx(ctx context.Context, p core.Preference) (*QueryStats, error) {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.Coordinator.QuerySetCtx(ctx, p)
}

// ApplyUpdates applies the batch once to the shared store and swaps
// every machine's shard. It deliberately shadows the embedded
// Coordinator's fan-out: fanning a shared-store delta to n machines
// would apply it n times.
func (c *LiveLocalCluster) ApplyUpdates(ctx context.Context, d graph.Delta) (UpdateStats, error) {
	if err := ctx.Err(); err != nil {
		return UpdateStats{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	// The expensive part — dirty-partition recompute — runs while
	// queries keep flowing against the old snapshot.
	info, err := c.live.ApplyUpdates(d, 0)
	if err != nil {
		return UpdateStats{}, err
	}
	if info.Inserted+info.Deleted > 0 {
		shards, err := core.Split(c.live.Store(), len(c.machines))
		if err != nil {
			return UpdateStats{}, err
		}
		// Swap under the write lock: in-flight queries drain on the old
		// shards, then every machine flips to the new batch at once.
		c.rw.Lock()
		for i, m := range c.machines {
			m.shard.Store(shards[i])
		}
		c.rw.Unlock()
	}
	return UpdateStats{
		Inserted:   int64(info.Inserted),
		Deleted:    int64(info.Deleted),
		Recomputed: int64(info.Recomputed),
		Wall:       time.Since(start),
	}, nil
}
