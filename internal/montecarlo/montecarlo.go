// Package montecarlo implements the random-walk PPV estimator of Bahmani,
// Chakrabarti & Xin (KDD 2011) — the paper's reference [5] for distributed
// APPROXIMATE personalized PageRank and the natural foil for the exact
// algorithms: it also needs just one merge round when walks are sharded
// across machines, but its accuracy grows only as 1/√walks and carries no
// error bound, which is precisely the gap the paper's exact methods close.
//
// The estimator simulates independent α-terminated random walks from the
// query node; the PPV estimate at v is the fraction of walks that END at
// v (the standard "fingerprint" interpretation of the random-surfer
// model, matching the inverse P-distance semantics of Eq. 2 — walks
// absorb at dangling nodes and virtual sinks exactly like the rest of
// this module).
package montecarlo

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"exactppr/internal/graph"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

// Engine runs Monte Carlo PPV estimates over one graph.
type Engine struct {
	g *graph.Graph
}

// NewEngine returns an estimator for g.
func NewEngine(g *graph.Graph) (*Engine, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("montecarlo: empty graph")
	}
	return &Engine{g: g}, nil
}

// Estimate runs `walks` α-terminated random walks from q and returns the
// endpoint distribution. Deterministic for a seed.
func (e *Engine) Estimate(q int32, walks int, p ppr.Params, seed int64) (sparse.Vector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= e.g.NumNodes() || e.g.IsVirtual(q) {
		return nil, fmt.Errorf("montecarlo: query %d invalid", q)
	}
	if walks < 1 {
		return nil, fmt.Errorf("montecarlo: walks = %d, want ≥ 1", walks)
	}
	counts := make(map[int32]int, 256)
	rng := rand.New(rand.NewSource(seed))
	e.runWalks(q, walks, p, rng, counts)
	v := sparse.New(len(counts))
	for node, c := range counts {
		v.Set(node, float64(c)/float64(walks))
	}
	return v, nil
}

// runWalks simulates walks and accumulates endpoint counts; returns how
// many walks ended at a node (the rest were absorbed by dangling nodes or
// virtual sinks — their mass vanishes, as in Eq. 2).
func (e *Engine) runWalks(q int32, walks int, p ppr.Params, rng *rand.Rand, counts map[int32]int) int {
	terminated := 0
	for w := 0; w < walks; w++ {
		cur := q
		for {
			if rng.Float64() < p.Alpha {
				counts[cur]++
				terminated++
				break
			}
			ow := e.g.OutWeight(cur)
			if ow == 0 {
				break // dangling: the walk dies without an endpoint
			}
			// Pick an out-edge uniformly over the ORIGINAL out-degree;
			// indexes beyond the stored edges correspond to absorbed
			// (virtual-sink) probability mass.
			pick := rng.Intn(ow)
			out := e.g.Out(cur)
			if pick >= len(out) {
				break // absorbed by the sink share
			}
			next := out[pick]
			if e.g.IsVirtual(next) {
				break
			}
			cur = next
		}
	}
	return terminated
}

// ShardedStats reports a sharded (distributed-style) estimate.
type ShardedStats struct {
	Result sparse.Vector
	// BytesMerged is the total encoded size of the per-machine count
	// vectors the coordinator would receive — one round, like GPA/HGPA,
	// but approximate.
	BytesMerged int64
}

// EstimateSharded splits the walk budget across `machines` independent
// workers (each with its own RNG stream), merges their endpoint counts,
// and accounts the merge bytes. The merged result is identical in
// distribution to a single-machine run with the same total walk count.
func (e *Engine) EstimateSharded(q int32, walks, machines int, p ppr.Params, seed int64) (*ShardedStats, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if machines < 1 {
		return nil, fmt.Errorf("montecarlo: machines = %d", machines)
	}
	if q < 0 || int(q) >= e.g.NumNodes() || e.g.IsVirtual(q) {
		return nil, fmt.Errorf("montecarlo: query %d invalid", q)
	}
	if walks < machines {
		return nil, fmt.Errorf("montecarlo: %d walks over %d machines", walks, machines)
	}
	per := walks / machines
	extra := walks % machines

	type shardResult struct {
		counts map[int32]int
		n      int
	}
	results := make([]shardResult, machines)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	wg.Add(machines)
	for m := 0; m < machines; m++ {
		go func(m int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			n := per
			if m < extra {
				n++
			}
			counts := make(map[int32]int, 256)
			rng := rand.New(rand.NewSource(seed + int64(m)*1_000_003))
			e.runWalks(q, n, p, rng, counts)
			results[m] = shardResult{counts, n}
		}(m)
	}
	wg.Wait()

	stats := &ShardedStats{Result: sparse.New(256)}
	for _, r := range results {
		shareVec := sparse.New(len(r.counts))
		for node, c := range r.counts {
			stats.Result.Add(node, float64(c)/float64(walks))
			shareVec.Set(node, float64(c))
		}
		stats.BytesMerged += int64(sparse.EncodedSize(shareVec))
	}
	return stats, nil
}
