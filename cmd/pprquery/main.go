// Command pprquery answers PPV queries against a pre-computed store.
//
//	pprquery -store web.store -node 42 -topk 10
//	pprquery -store web.store -node 42 -machines 6      # simulate a cluster
//	pprquery -store web.store -node 42 -verify          # check vs power iteration
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"exactppr/internal/cluster"
	"exactppr/internal/core"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

func main() {
	var (
		storePath = flag.String("store", "ppr.store", "store file from pprprecomp")
		node      = flag.Int("node", 0, "query node id")
		topk      = flag.Int("topk", 10, "entries to print")
		machines  = flag.Int("machines", 0, "simulate an n-machine cluster (0 = centralized)")
		verify    = flag.Bool("verify", false, "compare against power iteration")
		disk      = flag.Bool("disk", false, "serve vectors from disk instead of loading the store into memory")
		mmapMode  = flag.String("mmap", "on", "with -disk: memory-map the store file (on) or force the ReadAt fallback (off)")
		cacheCap  = flag.Int("cachecap", 0, "with -disk: vectors held in the serving cache (0 = default 1024)")
	)
	flag.Parse()

	q := int32(*node)
	if *disk {
		opts, err := core.ParseDiskOptions(*mmapMode, *cacheCap)
		if err != nil {
			fatal(err)
		}
		ds, err := core.OpenDiskStoreWith(*storePath, opts)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		start := time.Now()
		ppv, err := ds.Query(q)
		if err != nil {
			fatal(err)
		}
		st := ds.Stats()
		mode := "readat-fallback"
		if st.Mmap {
			mode = "mmap"
		}
		fmt.Printf("disk-resident query (%s, store v%d): %v — %d reads, %d cache hits\n",
			mode, st.FormatVersion, time.Since(start).Round(time.Microsecond), st.Reads, st.CacheHits)
		printTop(ppv, q, *topk)
		return
	}

	store, err := core.LoadFile(*storePath)
	if err != nil {
		fatal(err)
	}
	var ppv sparse.Vector
	start := time.Now()
	if *machines > 0 {
		coord, err := cluster.NewLocalCluster(store, *machines)
		if err != nil {
			fatal(err)
		}
		stats, err := coord.Query(q)
		if err != nil {
			fatal(err)
		}
		ppv = stats.Result.Unpack()
		fmt.Printf("distributed over %d machines: %v wall, %.1f KB received, slowest machine %v\n",
			*machines, stats.Wall.Round(time.Microsecond),
			float64(stats.BytesReceived)/1024, stats.MaxMachineTime().Round(time.Microsecond))
	} else {
		ppv, err = store.Query(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("centralized query: %v\n", time.Since(start).Round(time.Microsecond))
	}

	printTop(ppv, q, *topk)

	if *verify {
		oracle, err := ppr.PowerIteration(store.H.G, q, store.Params)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("vs power iteration: avg-L1 %.3e, L∞ %.3e\n",
			sparse.L1Distance(ppv, oracle)/float64(store.H.G.NumNodes()),
			sparse.LInfDistance(ppv, oracle))
	}
}

func printTop(ppv sparse.Vector, q int32, topk int) {
	fmt.Printf("PPV of node %d (%d non-zero entries, mass %.4f):\n", q, ppv.Len(), ppv.Sum())
	for i, e := range ppv.TopK(topk) {
		fmt.Printf("%3d. node %-8d %.6f\n", i+1, e.ID, e.Score)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pprquery:", err)
	os.Exit(1)
}
