package core

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"exactppr/internal/hierarchy"
	"exactppr/internal/sparse"
)

func diskStoreFixture(t *testing.T) (*Store, *DiskStore) {
	t.Helper()
	g := testGraph(t, 60)
	s, err := BuildHGPA(g, hierarchy.Options{Seed: 60}, tightParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.store")
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return s, ds
}

func TestDiskStoreMatchesMemory(t *testing.T) {
	s, ds := diskStoreFixture(t)
	queries := sampleQueries(s)
	for _, u := range queries {
		want, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ds.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(got, want); d != 0 {
			t.Fatalf("u=%d: disk store differs by %v", u, d)
		}
	}
}

func TestDiskStoreTinyCache(t *testing.T) {
	s, ds := diskStoreFixture(t)
	ds.SetCacheCap(2) // force constant eviction
	for _, u := range []int32{0, 50, 100, 150, 0, 50} {
		want, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ds.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(got, want); d != 0 {
			t.Fatalf("u=%d with tiny cache: %v", u, d)
		}
	}
	ds.SetCacheCap(0) // clamps to 1
}

func TestDiskStoreConcurrent(t *testing.T) {
	s, ds := diskStoreFixture(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(u int32) {
			defer wg.Done()
			got, err := ds.Query(u)
			if err != nil {
				errs <- err
				return
			}
			want, err := s.Query(u)
			if err != nil {
				errs <- err
				return
			}
			if sparse.LInfDistance(got, want) != 0 {
				errs <- &mismatchError{u}
			}
		}(int32(i * 20))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct{ u int32 }

func (e *mismatchError) Error() string { return "concurrent disk query mismatch" }

func TestDiskStoreErrors(t *testing.T) {
	_, ds := diskStoreFixture(t)
	if _, err := ds.Query(-1); err == nil {
		t.Fatal("bad query should fail")
	}
	if _, err := OpenDiskStore(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestDiskStoreRejectsGarbageFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.store")
	if err := writeFileHelper(path, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskStore(path); err == nil {
		t.Fatal("garbage file should fail")
	}
}

func writeFileHelper(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// TestDiskStoreCloseTyped: queries after Close fail with ErrStoreClosed
// (not a raw *os.File error), and Close is idempotent.
func TestDiskStoreCloseTyped(t *testing.T) {
	_, ds := diskStoreFixture(t)
	ds.SetCacheCap(1) // make sure queries must hit the file
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	_, err := ds.Query(0)
	if !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("post-close Query error = %v, want ErrStoreClosed", err)
	}
}

// TestDiskStoreCloseRace: Close landing in the middle of a storm of
// concurrent queries must never surface an os-level "file already
// closed" error — in-flight reads drain, later ones get ErrStoreClosed.
// Run under -race in CI.
func TestDiskStoreCloseRace(t *testing.T) {
	s, ds := diskStoreFixture(t)
	ds.SetCacheCap(1) // force every fetch through ReadAt
	n := int32(s.H.G.NumNodes())
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int32) {
			defer wg.Done()
			<-start
			for i := int32(0); i < 200; i++ {
				_, err := ds.Query((seed*31 + i) % n)
				if err != nil && !errors.Is(err, ErrStoreClosed) {
					errCh <- err
					return
				}
			}
		}(int32(w))
	}
	close(start)
	ds.Close()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("query during Close: %v", err)
	default:
	}
}
