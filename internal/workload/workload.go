// Package workload provides the dataset registry and query workload
// generation for the experiment harness: named graphs (the §6.1 dataset
// analogues or user-supplied edge lists) plus the paper's random query
// sampling ("we randomly choose 1000 nodes as query nodes").
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"exactppr/internal/gen"
	"exactppr/internal/graph"
)

// Dataset is a named graph ready for experiments.
type Dataset struct {
	Name  string
	G     *graph.Graph
	Paper gen.DatasetSpec // zero for non-preset datasets
}

// Load resolves a dataset by name. Accepted forms:
//
//   - a preset name (email, web, youtube, pld, pld_full) — generated at
//     the given scale;
//   - "meetup:M1" .. "meetup:M5" — the Table 6 analogues;
//   - "file:PATH" — a SNAP edge-list file.
func Load(name string, scale float64, seed int64) (*Dataset, error) {
	switch {
	case strings.HasPrefix(name, "file:"):
		path := strings.TrimPrefix(name, "file:")
		g, err := graph.LoadEdgeListFile(path)
		if err != nil {
			return nil, err
		}
		return &Dataset{Name: path, G: g}, nil
	case strings.HasPrefix(name, "meetup:"):
		id := strings.TrimPrefix(name, "meetup:")
		for i, s := range gen.MeetupSizes {
			if s.ID == id {
				g, err := gen.MeetupLike(i, seed)
				if err != nil {
					return nil, err
				}
				return &Dataset{Name: "Meetup-" + id, G: g}, nil
			}
		}
		return nil, fmt.Errorf("workload: unknown meetup graph %q (M1..M5)", id)
	default:
		g, err := gen.Dataset(name, scale, seed)
		if err != nil {
			return nil, err
		}
		return &Dataset{Name: gen.Specs[name].Name, G: g, Paper: gen.Specs[name]}, nil
	}
}

// Queries samples n distinct query nodes uniformly at random,
// deterministically for a seed. If n ≥ |V| every node is returned.
func Queries(g *graph.Graph, n int, seed int64) []int32 {
	total := g.NumNodes()
	if n >= total {
		out := make([]int32, total)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(total)
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = int32(perm[i])
	}
	return out
}
