package sparse

import (
	"math/rand"
	"sort"
	"testing"
)

// The fold benchmarks model a query: ~40 pre-computed vectors of ~300
// entries each (hub partials along a path) summed into one result. The
// map variants are kept as the baseline the packed representation is
// measured against — the perf trajectory in CI tracks both.

const (
	foldVectors = 40
	foldEntries = 300
	foldUnivers = 100_000
)

func foldFixture() ([]Vector, []Packed) {
	rng := rand.New(rand.NewSource(42))
	vs := make([]Vector, foldVectors)
	ps := make([]Packed, foldVectors)
	for i := range vs {
		v := make(Vector, foldEntries)
		for len(v) < foldEntries {
			v[int32(rng.Intn(foldUnivers))] = rng.Float64()
		}
		vs[i] = v
		ps[i] = Pack(v)
	}
	return vs, ps
}

// BenchmarkFoldMap is the pre-refactor hot path: AddScaled map-into-map.
func BenchmarkFoldMap(b *testing.B) {
	vs, _ := foldFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := New(256)
		for _, v := range vs {
			r.AddScaled(v, 0.5)
		}
		if r.Len() == 0 {
			b.Fatal("empty fold")
		}
	}
}

// BenchmarkFoldAccumulator is the packed hot path: AddPacked into a
// pooled dense accumulator, drained once.
func BenchmarkFoldAccumulator(b *testing.B) {
	_, ps := foldFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := AcquireAccumulator(foldUnivers)
		for _, p := range ps {
			acc.AddPacked(p, 0.5)
		}
		r := acc.Vector()
		acc.Release()
		if len(r) == 0 {
			b.Fatal("empty fold")
		}
	}
}

// BenchmarkFoldAccumulatorPacked drains columnar instead of into a map —
// the worker-share path that feeds the wire encoder directly.
func BenchmarkFoldAccumulatorPacked(b *testing.B) {
	_, ps := foldFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := AcquireAccumulator(foldUnivers)
		for _, p := range ps {
			acc.AddPacked(p, 0.5)
		}
		r := acc.Packed()
		acc.Release()
		if r.Len() == 0 {
			b.Fatal("empty fold")
		}
	}
}

// BenchmarkMergeMap vs BenchmarkMergePacked: the coordinator's
// "sum the k shares" step (k = 8 machines).
func mergeFixture() ([]Vector, []Packed) {
	rng := rand.New(rand.NewSource(7))
	vs := make([]Vector, 8)
	ps := make([]Packed, 8)
	for i := range vs {
		v := make(Vector, 2000)
		for len(v) < 2000 {
			v[int32(rng.Intn(foldUnivers))] = rng.Float64()
		}
		vs[i] = v
		ps[i] = Pack(v)
	}
	return vs, ps
}

func BenchmarkMergeMap(b *testing.B) {
	vs, _ := mergeFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := New(256)
		for _, v := range vs {
			r.AddScaled(v, 1)
		}
	}
}

func BenchmarkMergePacked(b *testing.B) {
	_, ps := mergeFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := MergePacked(ps); m.Len() == 0 {
			b.Fatal("empty merge")
		}
	}
}

// BenchmarkTopK contrasts the bounded heap with the full-sort reference
// on a 50k-entry result at the gateway's default k.
func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	v := make(Vector, 50_000)
	for len(v) < 50_000 {
		v[int32(rng.Intn(1<<26))] = rng.Float64()
	}
	p := Pack(v)
	const k = 10
	b.Run("heap-map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(v.TopK(k)) != k {
				b.Fatal("short topk")
			}
		}
	})
	b.Run("heap-packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(p.TopK(k)) != k {
				b.Fatal("short topk")
			}
		}
	})
	b.Run("fullsort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			es := p.Entries()
			sort.Slice(es, func(a, c int) bool {
				if es[a].Score != es[c].Score {
					return es[a].Score > es[c].Score
				}
				return es[a].ID < es[c].ID
			})
			if len(es[:k]) != k {
				b.Fatal("short topk")
			}
		}
	})
}

// BenchmarkEncode contrasts canonical map encoding (sort every call)
// with the packed straight copy.
func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	v := make(Vector, 5000)
	for len(v) < 5000 {
		v[int32(rng.Intn(1<<26))] = rng.Float64()
	}
	p := Pack(v)
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(Encode(v)) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(EncodePacked(p)) == 0 {
				b.Fatal("empty")
			}
		}
	})
}
