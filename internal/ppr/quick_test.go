package ppr

import (
	"math/rand"
	"testing"

	"exactppr/internal/graph"
	"exactppr/internal/sparse"
)

// randomGraph builds a small arbitrary digraph from an RNG.
func randomGraph(rng *rand.Rand) *graph.Graph {
	n := 2 + rng.Intn(30)
	b := graph.NewBuilder(n)
	for e := 0; e < rng.Intn(4*n); e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

// Property: PPVs are sub-probability vectors with r(q) ≥ α−ε for every
// graph, including graphs with dangling nodes.
func TestQuickPPVIsSubProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := Params{Alpha: 0.15, Eps: 1e-8}
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng)
		q := int32(rng.Intn(g.NumNodes()))
		r, err := PowerIteration(g, q, p)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for id, x := range r {
			if x < -1e-12 {
				t.Fatalf("trial %d: negative entry at %d: %v", trial, id, x)
			}
			sum += x
		}
		if sum > 1+1e-6 {
			t.Fatalf("trial %d: mass %v > 1", trial, sum)
		}
		if r.Get(q) < p.Alpha-1e-6 {
			t.Fatalf("trial %d: r(q) = %v < α", trial, r.Get(q))
		}
	}
}

// Property: blocking can only remove tour weight — the partial vector is
// entrywise at most the full PPV, for arbitrary graphs and hub sets.
func TestQuickPartialDominatedByPPV(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	p := Params{Alpha: 0.15, Eps: 1e-9}
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng)
		n := g.NumNodes()
		isHub := make([]bool, n)
		for v := 0; v < n; v++ {
			isHub[v] = rng.Float64() < 0.2
		}
		u := int32(rng.Intn(n))
		partial, _, err := PartialVector(g, u, isHub, p)
		if err != nil {
			t.Fatal(err)
		}
		full, err := PowerIteration(g, u, p)
		if err != nil {
			t.Fatal(err)
		}
		for id, x := range partial {
			if x > full.Get(id)+1e-6 {
				t.Fatalf("trial %d: partial(%d)=%v > PPV %v", trial, id, x, full.Get(id))
			}
		}
	}
}

// Property: the partial vector plus the blocked hub mass conserves the
// walk probability that the full PPV accounts for: p.Sum()/α + blocked
// mass scaled appropriately never exceeds 1.
func TestQuickPartialMassConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := Params{Alpha: 0.2, Eps: 1e-9}
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng)
		n := g.NumNodes()
		isHub := make([]bool, n)
		for v := 0; v < n; v++ {
			isHub[v] = rng.Float64() < 0.25
		}
		u := int32(rng.Intn(n))
		partial, blocked, err := PartialVector(g, u, isHub, p)
		if err != nil {
			t.Fatal(err)
		}
		// partial.Sum() counts ended walks ×α... total walk mass that
		// either ended (sum/α·α = sum) or froze (blocked) or absorbed
		// cannot exceed 1.
		if total := partial.Sum() + blocked.Sum(); total > 1+1e-6 {
			t.Fatalf("trial %d: ended %v + blocked %v > 1", trial, partial.Sum(), blocked.Sum())
		}
	}
}

// Property: skeleton values are valid PPV entries — s_u(h) ∈ [0, 1] and
// s_h(h) ≥ α.
func TestQuickSkeletonRange(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	p := Params{Alpha: 0.15, Eps: 1e-9}
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng)
		h := int32(rng.Intn(g.NumNodes()))
		sk, err := SkeletonForHub(g, h, p)
		if err != nil {
			t.Fatal(err)
		}
		for u, x := range sk {
			if x < -1e-12 || x > 1+1e-9 {
				t.Fatalf("trial %d: s_%d(%d) = %v out of range", trial, u, h, x)
			}
		}
		if sk[h] < p.Alpha-1e-6 {
			t.Fatalf("trial %d: s_h(h) = %v < α", trial, sk[h])
		}
	}
}

// Property: PageRank sums to ≤1 (absorb) or ≈1 (restart) and TopPageRank
// returns a sorted prefix.
func TestQuickPageRank(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng)
		for _, dangling := range []DanglingPolicy{DanglingAbsorb, DanglingRestart} {
			p := Params{Alpha: 0.15, Eps: 1e-9, Dangling: dangling}
			pr, err := PageRank(g, p)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, x := range pr {
				if x < -1e-12 {
					t.Fatal("negative PageRank")
				}
				sum += x
			}
			if sum > 1+1e-6 {
				t.Fatalf("PageRank mass %v > 1", sum)
			}
			if dangling == DanglingRestart && sum < 1-1e-4 {
				t.Fatalf("restart policy must conserve mass, got %v", sum)
			}
			top, err := TopPageRank(g, 5, p)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(top); i++ {
				if pr[top[i-1]] < pr[top[i]] {
					t.Fatal("TopPageRank not sorted by score")
				}
			}
		}
	}
}

// Property: decomposition linearity — r_P for a uniform pair equals the
// average of the two single-node PPVs (arbitrary graphs).
func TestQuickSetLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	p := Params{Alpha: 0.15, Eps: 1e-9}
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng)
		if g.NumNodes() < 2 {
			continue
		}
		a := int32(rng.Intn(g.NumNodes()))
		b := int32(rng.Intn(g.NumNodes()))
		if a == b {
			continue
		}
		set, err := PowerIterationSet(g, []int32{a, b}, p)
		if err != nil {
			t.Fatal(err)
		}
		ra, _ := PowerIteration(g, a, p)
		rb, _ := PowerIteration(g, b, p)
		avg := sparse.New(0)
		avg.AddScaled(ra, 0.5)
		avg.AddScaled(rb, 0.5)
		if d := sparse.LInfDistance(set, avg); d > 1e-6 {
			t.Fatalf("trial %d: linearity violated by %v", trial, d)
		}
	}
}
