// Package core implements the paper's contribution: exact distributed
// Personalized PageRank via graph partitioning. It provides
//
//   - Store: the HGPA pre-computation (§5) over a hierarchy — adjusted hub
//     partial vectors P_h, hubs skeleton vectors s_·(h), and leaf-level
//     local PPVs — plus the exact query-time construction (§4.3–4.4,
//     Theorems 1 and 3). GPA (§3) is the special case of a single-level
//     hierarchy.
//   - Shard: the per-machine slice of a Store under the paper's
//     hub-distributed load balancing (§4.4); shard outputs sum to the
//     exact PPV, one vector per machine per query.
//   - JWStore: the PPV-JW brute-force baseline (§2.3) with
//     PageRank-selected hub nodes.
//
// # Construction identity actually implemented
//
// Partial vectors follow Definition 1 (no hub visits after the start; see
// internal/ppr.PartialVector). Under that definition the adjusted partial
// P_h = p_h − α·x_h vanishes on every hub entry, and the exact PPV is
//
//	r_u = final(u) + Σ_{G ∈ Path(u)} Σ_{h ∈ H(G)} [ S_u(h)/α · P_h  +  S_u(h)·x_h ]
//
// where S_u(h) = s_u[G](h) − α·f_u(h), final(u) is the leaf-level local
// PPV for a non-hub u or p_u itself when u is a hub, and the S_u(h)·x_h
// term supplies the PPV values AT hub nodes straight from the skeleton
// (the "last hub visit" renewal argument; verified against power
// iteration in the package tests). The second term is machine-local in
// the distributed setting — whoever owns hub h owns both P_h and the
// skeleton vector of h — so the one-round protocol of §4.4 is preserved.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

// Store holds the complete HGPA pre-computation for a hierarchy.
type Store struct {
	H      *hierarchy.Hierarchy
	Params ppr.Params

	// HubPartial[h] is the ADJUSTED partial vector P_h = p_h − α·x_h of
	// hub h, computed within h's home subgraph w.r.t. that subgraph's hub
	// set, in global id space. Stored packed (sorted columnar): the
	// vectors are write-once at pre-computation and then only folded,
	// so the flat representation keeps the query path cache-friendly
	// and allocation-free.
	HubPartial map[int32]sparse.Packed
	// Skeleton[h](w) = s_w(h): the local PPV value at hub h for every
	// source w in h's home subgraph, in global id space.
	Skeleton map[int32]sparse.Packed
	// LeafPPV[u] is the local PPV of non-hub node u w.r.t. its leaf-level
	// virtual subgraph, in global id space.
	LeafPPV map[int32]sparse.Packed
}

// PrecomputeInfo reports the cost of a pre-computation run. Because the
// tasks are independent and load-balanced, TotalTaskTime/n estimates the
// per-machine offline time on an n-machine cluster (the quantity of
// Figures 12 and 16) regardless of how many workers ran locally.
type PrecomputeInfo struct {
	// Wall is the local end-to-end time with `workers` parallel workers.
	Wall time.Duration
	// TotalTaskTime is the summed compute time of all tasks.
	TotalTaskTime time.Duration
	// Tasks is the number of per-node/per-hub tasks executed.
	Tasks int
	// Kernel is the engine the run used (Params.Kernel).
	Kernel ppr.Kernel
	// Vectors is the number of vectors the kernels produced.
	Vectors int
	// Pushes is the total number of residual pops across all kernel
	// invocations — the work-proportional cost unit; divide by Vectors
	// for the pushes/vector figure of the bench artifacts.
	Pushes int64
	// DenseFallbacks counts vectors drained by the dense sweep (all of
	// them under KernelDense, frontier spills under KernelAuto).
	DenseFallbacks int64
}

// Precompute runs the distributed pre-computation of §5 over `workers`
// parallel workers (0 = GOMAXPROCS). Every task touches only one
// subgraph, mirroring the paper's claim that pre-computation needs no
// inter-machine communication.
func Precompute(h *hierarchy.Hierarchy, params ppr.Params, workers int) (*Store, error) {
	s, _, err := PrecomputeWithInfo(h, params, workers)
	return s, err
}

// PrecomputeWithInfo is Precompute plus timing information.
func PrecomputeWithInfo(h *hierarchy.Hierarchy, params ppr.Params, workers int) (*Store, *PrecomputeInfo, error) {
	start := time.Now()
	if err := params.Validate(); err != nil {
		return nil, nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var tasks []precomputeTask
	for _, n := range h.Nodes() {
		tasks = append(tasks, nodeTasks(h, n)...)
		n.Sub.G.BuildReverse() // safe to pre-build; used by skeletons
	}
	nHubs, nLeaves := 0, 0
	for _, t := range tasks {
		if t.hub {
			nHubs++
		} else {
			nLeaves++
		}
	}
	s := &Store{
		H:          h,
		Params:     params,
		HubPartial: make(map[int32]sparse.Packed, nHubs),
		Skeleton:   make(map[int32]sparse.Packed, nHubs),
		LeafPPV:    make(map[int32]sparse.Packed, nLeaves),
	}
	ri, err := s.runTasks(tasks, workers)
	if err != nil {
		return nil, nil, err
	}
	info := &PrecomputeInfo{
		Wall:           time.Since(start),
		TotalTaskTime:  ri.taskTime,
		Tasks:          len(tasks),
		Kernel:         params.Kernel,
		Vectors:        int(ri.kstats.Vectors),
		Pushes:         ri.kstats.Pushes,
		DenseFallbacks: ri.kstats.DenseFallbacks,
	}
	return s, info, nil
}

// precomputeTask is one vector-producing unit of work: a hub's
// partial+skeleton pair, or one leaf PPV. Hub tasks of the same tree
// node share one read-only isHub mask, built once per node instead of
// once per hub (the mask is O(|subgraph|) and the root node alone can
// carry dozens of hubs).
type precomputeTask struct {
	node  *hierarchy.Node
	u     int32 // global id
	hub   bool
	isHub []bool // hub mask in the node's local id space; nil for leaf tasks
}

// Vectors returns how many store vectors the task produces.
func (t precomputeTask) Vectors() int {
	if t.hub {
		return 2 // adjusted partial + skeleton
	}
	return 1
}

// nodeTasks lists the tasks local to one tree node: its hubs, and — for
// leaves — the PPVs of its non-hub members. This is the unit the
// incremental updater re-runs per dirty node.
func nodeTasks(h *hierarchy.Hierarchy, n *hierarchy.Node) []precomputeTask {
	var tasks []precomputeTask
	var isHub []bool
	if len(n.Hubs) > 0 {
		isHub = make([]bool, n.Sub.G.NumNodes())
		for _, x := range n.Hubs {
			isHub[n.Sub.Local(x)] = true
		}
	}
	for _, hub := range n.Hubs {
		tasks = append(tasks, precomputeTask{n, hub, true, isHub})
	}
	if n.IsLeaf() {
		for _, m := range n.Members {
			if !h.IsHub(m) {
				tasks = append(tasks, precomputeTask{n, m, false, nil})
			}
		}
	}
	return tasks
}

// stagedVec is one computed vector awaiting its section-map write.
type stagedVec struct {
	key int32
	vec sparse.Packed
}

// workerStage is one worker's private output buffer. Workers never
// touch the store's maps: results are staged here and merged by the
// coordinating goroutine after the pool drains, so the pool runs with
// no shared lock at all (a store-wide mutex used to serialize every
// vector write, which flattened worker scaling once the push kernels
// made individual tasks short).
type workerStage struct {
	hubPartial, skeleton, leaf []stagedVec
	sc                         ppr.Scratch
	nanos                      int64
	err                        error
}

// runInfo aggregates what a task pool run cost.
type runInfo struct {
	taskTime time.Duration
	kstats   ppr.KernelStats
}

// runTasks executes independent pre-computation tasks on a bounded
// worker pool, each worker reusing one ppr.Scratch across its tasks and
// staging results privately; the section maps are written once, here,
// after the pool drains. On error the maps are left untouched.
func (s *Store) runTasks(tasks []precomputeTask, workers int) (runInfo, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = max(len(tasks), 1)
	}
	stages := make([]workerStage, workers)
	ch := make(chan precomputeTask)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := range stages {
		go func(st *workerStage) {
			defer wg.Done()
			for t := range ch {
				t0 := time.Now()
				if t.hub {
					partial, skel, err := s.computeHub(t, &st.sc)
					if err == nil {
						st.hubPartial = append(st.hubPartial, stagedVec{t.u, partial})
						st.skeleton = append(st.skeleton, stagedVec{t.u, skel})
					} else if st.err == nil {
						st.err = err
					}
				} else {
					leaf, err := s.computeLeaf(t, &st.sc)
					if err == nil {
						st.leaf = append(st.leaf, stagedVec{t.u, leaf})
					} else if st.err == nil {
						st.err = err
					}
				}
				st.nanos += int64(time.Since(t0))
			}
		}(&stages[i])
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
	var ri runInfo
	var firstErr error
	for i := range stages {
		st := &stages[i]
		ri.taskTime += time.Duration(st.nanos)
		ri.kstats.Add(st.sc.Stats)
		if firstErr == nil && st.err != nil {
			firstErr = st.err
		}
	}
	if firstErr != nil {
		return ri, firstErr
	}
	for i := range stages {
		for _, v := range stages[i].hubPartial {
			s.HubPartial[v.key] = v.vec
		}
		for _, v := range stages[i].skeleton {
			s.Skeleton[v.key] = v.vec
		}
		for _, v := range stages[i].leaf {
			s.LeafPPV[v.key] = v.vec
		}
	}
	return ri, nil
}

// computeHub produces hub t.u's adjusted partial P_h = p_h − α·x_h and
// its skeleton vector, both in global id space. The kernel entries
// alias the scratch, so each vector is drained into packed form before
// the scratch's next use.
func (s *Store) computeHub(t precomputeTask, sc *ppr.Scratch) (adjusted, skeleton sparse.Packed, err error) {
	n, g := t.node, t.node.Sub.G
	lh := n.Sub.Local(t.u)
	ents, err := sc.PartialEntries(g, lh, t.isHub, s.Params)
	if err != nil {
		return sparse.Packed{}, sparse.Packed{}, fmt.Errorf("core: partial of hub %d: %w", t.u, err)
	}
	// Remap local→global in place (the entry buffer is scratch-owned and
	// drained by PackEntries before the scratch's next kernel call).
	j := 0
	for _, e := range ents {
		if e.ID == lh {
			continue // the α·x_h adjustment removes the zero-length tour
		}
		ents[j] = sparse.Entry{ID: n.Sub.Parent(e.ID), Score: e.Score}
		j++
	}
	adjusted, err = sparse.PackEntries(ents[:j])
	if err != nil {
		return sparse.Packed{}, sparse.Packed{}, fmt.Errorf("core: partial of hub %d: %w", t.u, err)
	}
	ents, err = sc.SkeletonEntries(g, lh, s.Params)
	if err != nil {
		return sparse.Packed{}, sparse.Packed{}, fmt.Errorf("core: skeleton of hub %d: %w", t.u, err)
	}
	for i, e := range ents {
		ents[i] = sparse.Entry{ID: n.Sub.Parent(e.ID), Score: e.Score}
	}
	skeleton, err = sparse.PackEntries(ents)
	if err != nil {
		return sparse.Packed{}, sparse.Packed{}, fmt.Errorf("core: skeleton of hub %d: %w", t.u, err)
	}
	return adjusted, skeleton, nil
}

// computeLeaf produces the leaf-level local PPV of non-hub node t.u in
// global id space.
func (s *Store) computeLeaf(t precomputeTask, sc *ppr.Scratch) (sparse.Packed, error) {
	n, g := t.node, t.node.Sub.G
	ents, err := sc.PartialEntries(g, n.Sub.Local(t.u), nil, s.Params)
	if err != nil {
		return sparse.Packed{}, fmt.Errorf("core: leaf PPV of %d: %w", t.u, err)
	}
	for i, e := range ents {
		ents[i] = sparse.Entry{ID: n.Sub.Parent(e.ID), Score: e.Score}
	}
	globalP, err := sparse.PackEntries(ents)
	if err != nil {
		return sparse.Packed{}, fmt.Errorf("core: leaf PPV of %d: %w", t.u, err)
	}
	return globalP, nil
}

// Query constructs the exact PPV of u centrally (HGPA on one machine,
// §6.2.9). See the package comment for the identity used. The fold runs
// through a pooled dense accumulator — no per-entry hashing, no
// intermediate maps — and drains once into the map Vector the public
// API promises.
func (s *Store) Query(u int32) (sparse.Vector, error) {
	acc := sparse.AcquireAccumulator(s.H.G.NumNodes())
	defer acc.Release()
	if err := s.queryInto(acc, u, 1); err != nil {
		return nil, err
	}
	return acc.Vector(), nil
}

// QueryPacked is Query draining into the columnar representation —
// the form the serving layer encodes straight onto the wire.
func (s *Store) QueryPacked(u int32) (sparse.Packed, error) {
	acc := sparse.AcquireAccumulator(s.H.G.NumNodes())
	defer acc.Release()
	if err := s.queryInto(acc, u, 1); err != nil {
		return sparse.Packed{}, err
	}
	return acc.Packed(), nil
}

// queryInto folds w times the exact PPV of u into acc — the shared core
// of Query, QueryPacked, QueryTopK, and the weighted QuerySet fold.
func (s *Store) queryInto(acc *sparse.Accumulator, u int32, w float64) error {
	if u < 0 || int(u) >= s.H.G.NumNodes() {
		return fmt.Errorf("core: query node %d out of range", u)
	}
	for _, node := range s.H.Path(u) {
		for _, h := range node.Hubs {
			s.addHubContribution(acc, u, h, w)
		}
	}
	s.addFinalTerm(acc, u, w)
	return nil
}

// addHubContribution folds w times hub h's term into acc for query node
// u: (S_u(h)/α)·P_h plus the direct skeleton entry S_u(h) at h.
func (s *Store) addHubContribution(acc *sparse.Accumulator, u, h int32, w float64) {
	su := s.Skeleton[h].Get(u)
	if h == u {
		su -= s.Params.Alpha // S_u(h) = s_u(h) − α·f_u(h)
	}
	if su == 0 {
		return
	}
	acc.AddPacked(s.HubPartial[h], w*su/s.Params.Alpha)
	acc.Add(h, w*su)
}

// addFinalTerm adds the recursion's base case: the leaf-level local PPV
// for a non-hub query, or the hub's own partial vector p_u = P_u + α·x_u.
func (s *Store) addFinalTerm(acc *sparse.Accumulator, u int32, w float64) {
	if s.H.IsHub(u) {
		acc.AddPacked(s.HubPartial[u], w)
		acc.Add(u, w*s.Params.Alpha)
		return
	}
	acc.AddPacked(s.LeafPPV[u], w)
}

// Truncate removes every stored entry with absolute value below min,
// producing the paper's adapted method HGPA_ad (§6.2.9, min = 1e-4).
// It returns the number of entries dropped.
func (s *Store) Truncate(min float64) int {
	dropped := 0
	for _, m := range []map[int32]sparse.Packed{s.HubPartial, s.Skeleton, s.LeafPPV} {
		for key, v := range m {
			t, d := v.Truncated(min)
			if d > 0 {
				m[key] = t
				dropped += d
			}
		}
	}
	return dropped
}

// Clone copies the store's section maps (useful before Truncate); the
// immutable packed vectors themselves are shared, so this is cheap even
// for large pre-computations.
func (s *Store) Clone() *Store {
	c := &Store{
		H:          s.H,
		Params:     s.Params,
		HubPartial: make(map[int32]sparse.Packed, len(s.HubPartial)),
		Skeleton:   make(map[int32]sparse.Packed, len(s.Skeleton)),
		LeafPPV:    make(map[int32]sparse.Packed, len(s.LeafPPV)),
	}
	// The packed vectors are immutable (Truncate swaps in new values, it
	// never edits arrays in place), so the clone shares them: only the
	// maps are fresh.
	for k, v := range s.HubPartial {
		c.HubPartial[k] = v
	}
	for k, v := range s.Skeleton {
		c.Skeleton[k] = v
	}
	for k, v := range s.LeafPPV {
		c.LeafPPV[k] = v
	}
	return c
}

// SpaceBytes reports the encoded size of all stored vectors — the space
// metric of §6.2.2/§6.2.4.
func (s *Store) SpaceBytes() int64 {
	var total int64
	for _, m := range []map[int32]sparse.Packed{s.HubPartial, s.Skeleton, s.LeafPPV} {
		for _, v := range m {
			total += int64(sparse.EncodedSizePacked(v))
		}
	}
	return total
}

// Stats summarizes the store for experiment reports.
type Stats struct {
	Hubs, Leaves             int
	PartialEntries           int64
	SkeletonEntries          int64
	LeafEntries              int64
	Bytes                    int64
	Levels, LeafSubgraphs    int
	TotalNodes, GraphNodes   int
	GraphEdges, TotalTreeHub int
}

// Stats returns summary statistics.
func (s *Store) Stats() Stats {
	st := Stats{
		Hubs:          len(s.HubPartial),
		Leaves:        len(s.LeafPPV),
		Bytes:         s.SpaceBytes(),
		Levels:        s.H.Depth(),
		LeafSubgraphs: len(s.H.Leaves()),
		TotalNodes:    len(s.H.Nodes()),
		GraphNodes:    s.H.G.NumNodes(),
		GraphEdges:    s.H.G.NumEdges(),
		TotalTreeHub:  s.H.TotalHubs(),
	}
	for _, v := range s.HubPartial {
		st.PartialEntries += int64(v.Len())
	}
	for _, v := range s.Skeleton {
		st.SkeletonEntries += int64(v.Len())
	}
	for _, v := range s.LeafPPV {
		st.LeafEntries += int64(v.Len())
	}
	return st
}
