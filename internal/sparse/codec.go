package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The wire format for a vector is:
//
//	uint32 count
//	count × (int32 id, float64 score)  little-endian
//
// 4 + 12·len(v) bytes total. This is the unit in which the cluster layer
// accounts communication cost, mirroring the paper's KB-on-the-wire metric.

// EncodedSize returns the number of bytes Encode will produce for v.
func EncodedSize(v Vector) int { return 4 + 12*len(v) }

// Encode serializes v into a fresh byte slice.
func Encode(v Vector) []byte {
	buf := make([]byte, EncodedSize(v))
	binary.LittleEndian.PutUint32(buf, uint32(len(v)))
	off := 4
	for i, x := range v {
		binary.LittleEndian.PutUint32(buf[off:], uint32(i))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(x))
		off += 12
	}
	return buf
}

// Decode parses a vector previously produced by Encode.
func Decode(buf []byte) (Vector, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("sparse: short buffer: %d bytes", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) != 4+12*n {
		return nil, fmt.Errorf("sparse: buffer length %d does not match count %d", len(buf), n)
	}
	v := make(Vector, n)
	off := 4
	for k := 0; k < n; k++ {
		id := int32(binary.LittleEndian.Uint32(buf[off:]))
		x := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
		if x != 0 {
			v[id] = x
		}
		off += 12
	}
	return v, nil
}
