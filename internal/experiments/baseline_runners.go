package experiments

import (
	"fmt"
	"time"

	"exactppr/internal/bsp"
	"exactppr/internal/fastppv"
	"exactppr/internal/hierarchy"
	"exactppr/internal/metrics"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
	"exactppr/internal/workload"
)

// bspMeasurement averages a BSP engine over the query workload.
type bspMeasurement struct {
	AvgRuntime time.Duration // compute + modeled network over supersteps
	AvgBytes   float64
	AvgSteps   float64
}

func measureBSP(cfg Config, b *builtStore, mode bsp.Mode, workers, queries int) (*bspMeasurement, error) {
	e, err := bsp.NewEngine(b.ds.G, mode, workers)
	if err != nil {
		return nil, err
	}
	qs := workload.Queries(b.ds.G, queries, cfg.Seed+99)
	m := &bspMeasurement{}
	var runtime time.Duration
	var bytes int64
	var steps int
	for _, q := range qs {
		stats, err := e.RunPPV(q, cfg.params())
		if err != nil {
			return nil, err
		}
		runtime += stats.ComputeWall + cfg.Net.Cost(stats.Supersteps, stats.NetworkBytes)
		bytes += stats.NetworkBytes
		steps += stats.Supersteps
	}
	n := len(qs)
	m.AvgRuntime = runtime / time.Duration(n)
	m.AvgBytes = float64(bytes) / float64(n)
	m.AvgSteps = float64(steps) / float64(n)
	return m, nil
}

// baselineSweep produces Figures 21/22: HGPA vs Pregel+ vs Blogel across
// machine counts on Web and Youtube analogues.
func baselineSweep(cfg Config, title string,
	pickHGPA func(*queryMeasurement) string,
	pickBSP func(*bspMeasurement) string) ([]Table, error) {
	// BSP runs are slow; use a reduced query sample.
	bspQueries := min(cfg.Queries, 5)
	var tables []Table
	for _, dsName := range []string{"web", "youtube"} {
		b, err := buildStore(cfg, dsName, hierarchy.Options{})
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("%s — %s analogue", title, b.ds.Name),
			Header: []string{"Machines", "HGPA", "Pregel+", "Blogel"},
		}
		for _, n := range machineSweep {
			hm, err := measureCluster(cfg, b, n)
			if err != nil {
				return nil, err
			}
			pm, err := measureBSP(cfg, b, bsp.VertexCentric, n, bspQueries)
			if err != nil {
				return nil, err
			}
			bm, err := measureBSP(cfg, b, bsp.BlockCentric, n, bspQueries)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), pickHGPA(hm), pickBSP(pm), pickBSP(bm),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runFig21(cfg Config) ([]Table, error) {
	return baselineSweep(cfg, "Runtime(ms): HGPA vs Pregel+ vs Blogel (Figure 21)",
		func(m *queryMeasurement) string { return ms(m.AvgRuntime) },
		func(m *bspMeasurement) string { return ms(m.AvgRuntime) })
}

func runFig22(cfg Config) ([]Table, error) {
	return baselineSweep(cfg, "Communication(KB): HGPA vs Pregel+ vs Blogel (Figure 22)",
		func(m *queryMeasurement) string { return kb(m.AvgBytes) },
		func(m *bspMeasurement) string { return kb(m.AvgBytes) })
}

// fastPPVHubCounts scales the paper's Fast-100/Fast-1000 hub parameters
// to the analogue graph sizes (the paper's counts are ~0.04%/0.4% of
// |V|; we keep the 10× ratio between the two settings).
func fastPPVHubCounts(n int) (small, large int) {
	small = max(n/200, 4)
	large = min(small*10, n/4)
	return small, large
}

type fastppvSetup struct {
	b        *builtStore
	ixSmall  *fastppv.Index
	ixLarge  *fastppv.Index
	ad       *builtStoreAd
	smallCnt int
	largeCnt int
}

type builtStoreAd struct {
	store interface {
		Query(int32) (sparse.Vector, error)
	}
}

func setupFastPPV(cfg Config, dsName string) (*fastppvSetup, error) {
	b, err := buildStore(cfg, dsName, hierarchy.Options{})
	if err != nil {
		return nil, err
	}
	smallCnt, largeCnt := fastPPVHubCounts(b.ds.G.NumNodes())
	ixSmall, err := fastppv.BuildIndex(b.ds.G, smallCnt, cfg.params(), cfg.Workers)
	if err != nil {
		return nil, err
	}
	ixLarge, err := fastppv.BuildIndex(b.ds.G, largeCnt, cfg.params(), cfg.Workers)
	if err != nil {
		return nil, err
	}
	ad := b.store.Clone()
	ad.Truncate(1e-4) // the paper's HGPA_ad threshold (§6.2.9)
	return &fastppvSetup{
		b: b, ixSmall: ixSmall, ixLarge: ixLarge,
		ad:       &builtStoreAd{store: ad},
		smallCnt: smallCnt, largeCnt: largeCnt,
	}, nil
}

// fastBudget is the scheduler budget that makes FastPPV genuinely
// approximate, mirroring the paper's bounded-iteration runs.
const fastBudget = 8

func runFig24(cfg Config) ([]Table, error) {
	var tables []Table
	for _, dsName := range []string{"email", "web"} {
		setup, err := setupFastPPV(cfg, dsName)
		if err != nil {
			return nil, err
		}
		queries := workload.Queries(setup.b.ds.G, min(cfg.Queries, 10), cfg.Seed+3)
		timeOf := func(f func(q int32) error) (time.Duration, error) {
			t0 := time.Now()
			for _, q := range queries {
				if err := f(q); err != nil {
					return 0, err
				}
			}
			return time.Since(t0) / time.Duration(len(queries)), nil
		}
		tFastS, err := timeOf(func(q int32) error { _, err := setup.ixSmall.Query(q, fastBudget); return err })
		if err != nil {
			return nil, err
		}
		tFastL, err := timeOf(func(q int32) error { _, err := setup.ixLarge.Query(q, fastBudget); return err })
		if err != nil {
			return nil, err
		}
		tHGPA, err := timeOf(func(q int32) error { _, err := setup.b.store.Query(q); return err })
		if err != nil {
			return nil, err
		}
		tAd, err := timeOf(func(q int32) error { _, err := setup.ad.store.Query(q); return err })
		if err != nil {
			return nil, err
		}
		tables = append(tables, Table{
			Title:  fmt.Sprintf("Runtime(ms), centralized (Figure 24) — %s analogue", dsName),
			Header: []string{"Algorithm", "Runtime(ms)"},
			Rows: [][]string{
				{fmt.Sprintf("Fast-%d", setup.smallCnt), ms(tFastS)},
				{fmt.Sprintf("Fast-%d", setup.largeCnt), ms(tFastL)},
				{"HGPA", ms(tHGPA)},
				{"HGPA_ad", ms(tAd)},
			},
		})
	}
	return tables, nil
}

// accuracyRows computes the Figure 25/26 measures for the four
// algorithms against power iteration.
func accuracyRows(cfg Config, setup *fastppvSetup, k int) ([][]string, [][]string, error) {
	g := setup.b.ds.G
	queries := workload.Queries(g, min(cfg.Queries, 8), cfg.Seed+11)
	type algo struct {
		name string
		run  func(q int32) (sparse.Vector, error)
	}
	algos := []algo{
		{fmt.Sprintf("Fast-%d", setup.smallCnt), func(q int32) (sparse.Vector, error) {
			st, err := setup.ixSmall.Query(q, fastBudget)
			if err != nil {
				return nil, err
			}
			return st.Result, nil
		}},
		{fmt.Sprintf("Fast-%d", setup.largeCnt), func(q int32) (sparse.Vector, error) {
			st, err := setup.ixLarge.Query(q, fastBudget)
			if err != nil {
				return nil, err
			}
			return st.Result, nil
		}},
		{"HGPA", setup.b.store.Query},
		{"HGPA_ad", setup.ad.store.Query},
	}
	var normRows, topkRows [][]string
	for _, a := range algos {
		var sumL1, maxInf, sumPrec, sumRAG, sumKen float64
		for _, q := range queries {
			got, err := a.run(q)
			if err != nil {
				return nil, nil, err
			}
			want, err := ppr.PowerIteration(g, q, cfg.params())
			if err != nil {
				return nil, nil, err
			}
			sumL1 += metrics.AvgL1(got, want, g.NumNodes())
			if li := metrics.LInf(got, want); li > maxInf {
				maxInf = li
			}
			sumPrec += metrics.PrecisionAtK(want, got, k)
			sumRAG += metrics.RAG(want, got, k)
			sumKen += metrics.KendallAtK(want, got, k)
		}
		n := float64(len(queries))
		normRows = append(normRows, []string{
			a.name, fmt.Sprintf("%.3e", sumL1/n), fmt.Sprintf("%.3e", maxInf),
		})
		topkRows = append(topkRows, []string{
			a.name,
			fmt.Sprintf("%.4f", sumPrec/n),
			fmt.Sprintf("%.4f", sumRAG/n),
			fmt.Sprintf("%.4f", sumKen/n),
		})
	}
	return normRows, topkRows, nil
}

func runFig25(cfg Config) ([]Table, error) {
	var tables []Table
	for _, dsName := range []string{"email", "web"} {
		setup, err := setupFastPPV(cfg, dsName)
		if err != nil {
			return nil, err
		}
		norms, _, err := accuracyRows(cfg, setup, 25)
		if err != nil {
			return nil, err
		}
		tables = append(tables, Table{
			Title:  fmt.Sprintf("ℓ-norm accuracy vs power iteration (Figure 25) — %s analogue", dsName),
			Header: []string{"Algorithm", "AvgL1", "LInf"},
			Rows:   norms,
		})
	}
	return tables, nil
}

func runFig26(cfg Config) ([]Table, error) {
	var tables []Table
	for _, dsName := range []string{"email", "web"} {
		setup, err := setupFastPPV(cfg, dsName)
		if err != nil {
			return nil, err
		}
		_, topk, err := accuracyRows(cfg, setup, 25)
		if err != nil {
			return nil, err
		}
		tables = append(tables, Table{
			Title:  fmt.Sprintf("Top-25 accuracy (Figure 26; paper uses top-100 at 200× scale) — %s analogue", dsName),
			Header: []string{"Algorithm", "Precision", "RAG", "Kendall"},
			Rows:   topk,
		})
	}
	return tables, nil
}

// runFig27 is the Appendix A scalability of the BSP baselines on the
// Meetup-like graphs, with HGPA for reference.
func runFig27(cfg Config) ([]Table, error) {
	runtime := Table{
		Title:  "Runtime(ms) on Meetup-like graphs, 10 machines (Figure 27a)",
		Header: []string{"Graph", "HGPA", "Pregel+", "Blogel"},
	}
	comm := Table{
		Title:  "Communication(KB) on Meetup-like graphs, 10 machines (Figure 27b)",
		Header: []string{"Graph", "HGPA", "Pregel+", "Blogel"},
	}
	for _, id := range []string{"M1", "M2", "M3", "M4", "M5"} {
		b, err := buildStore(cfg, "meetup:"+id, hierarchy.Options{})
		if err != nil {
			return nil, err
		}
		hm, err := measureCluster(cfg, b, 10)
		if err != nil {
			return nil, err
		}
		pm, err := measureBSP(cfg, b, bsp.VertexCentric, 10, 3)
		if err != nil {
			return nil, err
		}
		bm, err := measureBSP(cfg, b, bsp.BlockCentric, 10, 3)
		if err != nil {
			return nil, err
		}
		runtime.Rows = append(runtime.Rows, []string{
			id, ms(hm.AvgRuntime), ms(pm.AvgRuntime), ms(bm.AvgRuntime),
		})
		comm.Rows = append(comm.Rows, []string{
			id, kb(hm.AvgBytes), kb(pm.AvgBytes), kb(bm.AvgBytes),
		})
	}
	return []Table{runtime, comm}, nil
}
