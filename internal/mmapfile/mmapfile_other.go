//go:build !unix

package mmapfile

import (
	"errors"
	"os"
)

func mapFile(f *os.File, size int) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func unmapFile(b []byte) error { return nil }
