package ppr

import (
	"math"
	"sort"

	"exactppr/internal/graph"
)

// PageRank computes the global (non-personalized) PageRank of g: the
// stationary solution of r = (1−α)·Aᵀr + α·(1/n)·1, with the same
// dangling policy semantics as PowerIteration. Used by the PPV-JW
// baseline to pick its high-PageRank hub nodes (§3.2).
func PageRank(g *graph.Graph, p Params) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	cur := make([]float64, n)
	next := make([]float64, n)
	base := p.Alpha / float64(n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	for iter := 0; iter < p.maxIter(); iter++ {
		for i := range next {
			next[i] = base
		}
		var danglingMass float64
		for u := int32(0); u < int32(n); u++ {
			mass := cur[u]
			if mass == 0 || g.IsVirtual(u) {
				continue
			}
			ow := g.OutWeight(u)
			if ow == 0 {
				danglingMass += mass
				continue
			}
			share := mass * (1 - p.Alpha) / float64(ow)
			for _, v := range g.Out(u) {
				if g.IsVirtual(v) {
					continue
				}
				next[v] += share
			}
		}
		if p.Dangling == DanglingRestart && danglingMass > 0 {
			// Spread dangling mass uniformly (the usual PageRank patch).
			spread := danglingMass * (1 - p.Alpha) / float64(n)
			for i := range next {
				next[i] += spread
			}
		}
		converged := true
		for i := range next {
			if math.Abs(next[i]-cur[i]) > p.Eps {
				converged = false
				break
			}
		}
		cur, next = next, cur
		if converged {
			break
		}
	}
	if g.HasVirtualSink() {
		cur[g.VirtualSink()] = 0
	}
	return cur, nil
}

// TopPageRank returns the k nodes with the highest PageRank, ties broken
// by smaller id — the hub selection rule of the original Jeh–Widom method
// that the paper contrasts with separator-based hubs (§3.2).
func TopPageRank(g *graph.Graph, k int, p Params) ([]int32, error) {
	pr, err := PageRank(g, p)
	if err != nil {
		return nil, err
	}
	ids := make([]int32, g.NumNodes())
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		if pr[ids[a]] != pr[ids[b]] {
			return pr[ids[a]] > pr[ids[b]]
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k], nil
}
