// Distributed: the paper's architecture end to end over real TCP — three
// workers each serving one shard of the pre-computation, a coordinator
// that broadcasts a query and sums the three response vectors. One round
// of communication per machine per query, exactly as §4.4 promises.
//
// Everything runs in one process for convenience; the workers speak the
// same wire protocol cmd/pprserve uses across hosts.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"exactppr"
	"exactppr/internal/cluster"
)

func main() {
	g, err := exactppr.GenerateDataset("email", 0.3, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	store, err := exactppr.BuildHGPA(g, exactppr.HierarchyOptions{Seed: 3}, exactppr.DefaultParams(), 0)
	if err != nil {
		log.Fatal(err)
	}

	const machines = 3
	shards, err := exactppr.Split(store, machines)
	if err != nil {
		log.Fatal(err)
	}

	// Start one TCP worker per shard on a loopback port.
	var workers []exactppr.Machine
	for i, sh := range shards {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go cluster.Serve(l, &cluster.ShardMachine{Shard: sh})
		m, err := exactppr.DialMachine(l.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		workers = append(workers, m)
		fmt.Printf("worker %d: %s (%d hubs, %d leaf vectors, %.2f MB)\n",
			i, l.Addr(), sh.HubCount(), sh.LeafCount(), float64(sh.SpaceBytes())/(1<<20))
	}

	coord, err := exactppr.NewCoordinator(workers...)
	if err != nil {
		log.Fatal(err)
	}

	for _, q := range []int32{0, 100, 500} {
		stats, err := coord.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		top := stats.Result.TopK(3)
		fmt.Printf("query %-4d → %v wall, %5.1f KB over the wire, top-3:", q,
			stats.Wall.Round(time.Microsecond), float64(stats.BytesReceived)/1024)
		for _, e := range top {
			fmt.Printf("  %d:%.4f", e.ID, e.Score)
		}
		fmt.Println()

		// The distributed answer is exact: verify against power iteration.
		oracle, err := exactppr.PowerIteration(g, q, exactppr.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		if oracle.TopK(1)[0].ID != top[0].ID {
			log.Fatalf("distributed result disagrees with power iteration at node %d", q)
		}
	}
	fmt.Println("all distributed results verified against power iteration")
}
