package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Columnar is the store-file payload layout of a sparse vector, designed
// so a memory-mapped file can serve vectors ZERO-COPY: the id and score
// columns are contiguous little-endian arrays that — when the payload
// starts at an 8-byte-aligned file offset — can be reinterpreted as
// []int32 and []float64 slices over the mapped bytes, no decode, no
// allocation. (The wire codec in codec.go interleaves (id, score) pairs
// and therefore always needs a decode pass; it remains the network
// format.)
//
// Layout, for a vector of n entries at an 8-byte-aligned base:
//
//	uint32  n
//	uint32  reserved (zero)
//	int32   ids[n]            — base+8 is 4-byte aligned
//	[4 pad bytes when n is odd]
//	float64 scores[n]         — 8-byte aligned by construction
//
// EncodedSizeColumnar(n) bytes total. Unlike Packed payloads the column
// pair is not required to be sorted — the store's hub-plan rows reuse
// this layout with ids in fold order.

// hostLittleEndian reports whether this machine's byte order matches the
// file format. On the (rare) big-endian host every view degrades to the
// copying decoder.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// EncodedSizeColumnar returns the payload size for n entries.
func EncodedSizeColumnar(n int) int {
	return 8 + 4*n + 4*(n&1) + 8*n
}

// EncodeColumnar serializes parallel id/score columns (any order; the
// caller owns the sorted-or-not invariant).
func EncodeColumnar(ids []int32, scores []float64) []byte {
	if len(ids) != len(scores) {
		panic(fmt.Sprintf("sparse: %d ids vs %d scores", len(ids), len(scores)))
	}
	n := len(ids)
	buf := make([]byte, EncodedSizeColumnar(n))
	binary.LittleEndian.PutUint32(buf, uint32(n))
	off := 8
	for _, id := range ids {
		binary.LittleEndian.PutUint32(buf[off:], uint32(id))
		off += 4
	}
	off += 4 * (n & 1)
	for _, x := range scores {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(x))
		off += 8
	}
	return buf
}

// EncodeColumnarPacked serializes a canonical packed vector in columnar
// form — a straight copy of its two arrays.
func EncodeColumnarPacked(p Packed) []byte { return EncodeColumnar(p.ids, p.scores) }

// columnarBounds validates the framing and returns (n, scoresOffset).
func columnarBounds(buf []byte) (int, int, error) {
	if len(buf) < 8 {
		return 0, 0, fmt.Errorf("sparse: short columnar buffer: %d bytes", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) != EncodedSizeColumnar(n) {
		return 0, 0, fmt.Errorf("sparse: columnar buffer length %d does not match count %d", len(buf), n)
	}
	return n, 8 + 4*n + 4*(n&1), nil
}

// DecodeColumnar parses a columnar payload into freshly allocated
// columns — the portable path used when the file is read with ReadAt
// instead of mapped, or when a mapping is misaligned.
func DecodeColumnar(buf []byte) (ids []int32, scores []float64, err error) {
	n, so, err := columnarBounds(buf)
	if err != nil {
		return nil, nil, err
	}
	ids = make([]int32, n)
	scores = make([]float64, n)
	for k := range ids {
		ids[k] = int32(binary.LittleEndian.Uint32(buf[8+4*k:]))
	}
	for k := range scores {
		scores[k] = math.Float64frombits(binary.LittleEndian.Uint64(buf[so+8*k:]))
	}
	return ids, scores, nil
}

// ViewColumnar returns the id and score columns of a columnar payload as
// slices ALIASING buf — zero copies, zero allocations beyond the slice
// headers. The caller must keep buf alive and unmodified for as long as
// the returned slices are referenced (for a memory-mapped store file:
// until munmap). When the aliasing reinterpretation is unavailable — a
// big-endian host, or buf not 8-byte aligned — it silently falls back to
// DecodeColumnar, so the result is always safe to use; only its sharing
// differs.
func ViewColumnar(buf []byte) (ids []int32, scores []float64, err error) {
	n, so, err := columnarBounds(buf)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, nil, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&buf[0]))%8 == 0 {
		ids = unsafe.Slice((*int32)(unsafe.Pointer(&buf[8])), n)
		scores = unsafe.Slice((*float64)(unsafe.Pointer(&buf[so])), n)
		return ids, scores, nil
	}
	return DecodeColumnar(buf)
}

// PackedView wraps externally owned columns as a Packed WITHOUT copying
// — the zero-copy bridge from a memory-mapped store file to the fold
// kernels. It validates the Packed invariant (ids strictly ascending),
// which is the one property binary-search lookups and the O(1) InRange
// check rely on; zero scores are permitted (they fold as no-ops).
//
// Aliasing rules: the returned Packed shares the given arrays. The
// caller must (1) never mutate them afterwards — Packed is promised
// immutable — and (2) not let the Packed outlive the memory backing
// them. DiskStore enforces (2) by holding its lifecycle lock across
// every fold that touches a view and dropping all cached views before
// unmapping.
func PackedView(ids []int32, scores []float64) (Packed, error) {
	if len(ids) != len(scores) {
		return Packed{}, fmt.Errorf("sparse: view has %d ids but %d scores", len(ids), len(scores))
	}
	for k := 1; k < len(ids); k++ {
		if ids[k] <= ids[k-1] {
			return Packed{}, fmt.Errorf("sparse: view ids not strictly ascending at index %d (%d after %d)", k, ids[k], ids[k-1])
		}
	}
	return Packed{ids, scores}, nil
}
