// Quickstart: build a small graph, pre-compute the HGPA store, and answer
// an exact PPV query — the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"

	"exactppr"
)

func main() {
	// A toy collaboration graph: two tight communities bridged by node 4.
	b := exactppr.NewGraphBuilder(9)
	edges := [][2]int32{
		{0, 1}, {1, 2}, {2, 0}, {1, 3}, {3, 0}, // community A
		{3, 4}, {4, 5}, // the bridge
		{5, 6}, {6, 7}, {7, 5}, {6, 8}, {8, 7}, // community B
		{2, 4}, {4, 3}, // back-edges
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()

	// Pre-compute once (α = 0.15, ε = 1e-4 — the paper's defaults).
	store, err := exactppr.BuildHGPA(g, exactppr.HierarchyOptions{Seed: 1}, exactppr.DefaultParams(), 0)
	if err != nil {
		log.Fatal(err)
	}

	// Query any node, exactly.
	const query = 0
	ppv, err := store.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Personalized PageRank of node %d:\n", query)
	for _, e := range ppv.TopK(5) {
		fmt.Printf("  node %d: %.4f\n", e.ID, e.Score)
	}

	// Cross-check against power iteration — same numbers, slower path.
	oracle, err := exactppr.PowerIteration(g, query, exactppr.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power-iteration check: top node %d (exact construction agrees: %v)\n",
		oracle.TopK(1)[0].ID, oracle.TopK(1)[0].ID == ppv.TopK(1)[0].ID)
}
