package core

import (
	"fmt"

	"exactppr/internal/sparse"
)

// DiskShard is the slice of a DiskStore assigned to one machine under
// the paper's hub-distributed scheme (§4.4) — the disk-resident
// counterpart of Shard, so a serving fleet can run the zero-copy mmap
// path behind the same coordinator/gateway stack. SplitDisk assigns hubs
// and leaves exactly as Split does for the equivalent in-memory store,
// so shard shares from the two backends are interchangeable and sum to
// the same exact PPV, bit for bit.
//
// All shards of one DiskStore share its file, mapping, and cache;
// closing the store invalidates every shard.
type DiskShard struct {
	Index, Total int
	ds           *DiskStore
	hubs         map[int32]bool // hubs owned by this shard
	leaves       map[int32]bool // leaf vectors owned by this shard
}

// SplitDisk divides the disk store across n machines with the same
// deterministic assignment as Split: each tree node's hub list is dealt
// round-robin with a global cursor, and non-hub node u's leaf vector
// goes to machine u mod n.
func SplitDisk(ds *DiskStore, n int) ([]*DiskShard, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: cannot split into %d shards", n)
	}
	shards := make([]*DiskShard, n)
	for i := range shards {
		shards[i] = &DiskShard{
			Index:  i,
			Total:  n,
			ds:     ds,
			hubs:   make(map[int32]bool),
			leaves: make(map[int32]bool),
		}
	}
	cursor := 0
	for _, node := range ds.H.Nodes() {
		for _, h := range node.Hubs {
			shards[cursor%n].hubs[h] = true
			cursor++
		}
	}
	for u := range ds.idx[secLeafPPV] {
		shards[int(u)%n].leaves[u] = true
	}
	return shards, nil
}

// QueryPacked computes this machine's additive share of the PPV of u in
// columnar form — what the wire protocol encodes directly.
func (sh *DiskShard) QueryPacked(u int32) (sparse.Packed, error) {
	d := sh.ds
	if err := d.acquire(); err != nil {
		return sparse.Packed{}, err
	}
	defer d.release()
	acc := sparse.AcquireAccumulator(d.H.G.NumNodes())
	defer acc.Release()
	if err := d.queryInto(acc, u, 1, sh); err != nil {
		return sparse.Packed{}, err
	}
	return acc.Packed(), nil
}

// QuerySetPacked is the shard-side preference-set fold.
func (sh *DiskShard) QuerySetPacked(p Preference) (sparse.Packed, error) {
	d := sh.ds
	if err := d.acquire(); err != nil {
		return sparse.Packed{}, err
	}
	defer d.release()
	w, err := p.normalized(d.H.G.NumNodes())
	if err != nil {
		return sparse.Packed{}, err
	}
	acc := sparse.AcquireAccumulator(d.H.G.NumNodes())
	defer acc.Release()
	for i, u := range p.Nodes {
		if err := d.queryInto(acc, u, w[i], sh); err != nil {
			return sparse.Packed{}, err
		}
	}
	return acc.Packed(), nil
}

// HubCount returns the number of hubs assigned to the shard.
func (sh *DiskShard) HubCount() int { return len(sh.hubs) }

// LeafCount returns the number of leaf vectors assigned to the shard.
func (sh *DiskShard) LeafCount() int { return len(sh.leaves) }

// SpaceBytes reports the on-disk payload bytes of the vectors THIS shard
// serves — the per-machine space metric of §6.2.3.
func (sh *DiskShard) SpaceBytes() int64 {
	var total int64
	for h := range sh.hubs {
		if sp, ok := sh.ds.idx[secHubPartial][h]; ok {
			total += int64(sp.len)
		}
		if sp, ok := sh.ds.idx[secSkeleton][h]; ok {
			total += int64(sp.len)
		}
	}
	for u := range sh.leaves {
		if sp, ok := sh.ds.idx[secLeafPPV][u]; ok {
			total += int64(sp.len)
		}
	}
	return total
}
