package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadEdgeList reads a graph in the SNAP edge-list format: one "u<ws>v"
// pair per line, '#' or '%' lines are comments, ids are arbitrary
// non-negative integers that get compacted to 0..N-1 (order of first
// appearance). This is the format of the paper's Email/Web/Youtube
// datasets, so the real inputs drop in unchanged when available.
func LoadEdgeList(r io.Reader) (*Graph, error) {
	type edge struct{ u, v int64 }
	var edges []edge
	ids := make(map[int64]int32)
	intern := func(x int64) int32 {
		if id, ok := ids[x]; ok {
			return id
		}
		id := int32(len(ids))
		ids[x] = id
		return id
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want two ids, got %q", lineno, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineno, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineno, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative id", lineno)
		}
		edges = append(edges, edge{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, e := range edges {
		intern(e.u)
		intern(e.v)
	}
	b := NewBuilder(len(ids))
	for _, e := range edges {
		b.AddEdge(ids[e.u], ids[e.v])
	}
	return b.Build(), nil
}

// LoadEdgeListFile is LoadEdgeList over a file path.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := LoadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// WriteEdgeList writes the graph in SNAP edge-list format with a small
// header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# Nodes: %d Edges: %d\n", g.NumNodes(), g.NumEdges())
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Out(u) {
			fmt.Fprintf(bw, "%d\t%d\n", u, v)
		}
	}
	return bw.Flush()
}

// WriteEdgeListFile is WriteEdgeList to a file path.
func WriteEdgeListFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
