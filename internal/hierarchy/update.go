package hierarchy

import (
	"slices"
	"sort"

	"exactppr/internal/graph"
)

// Dirty-set semantics. Every pre-computed object of the HGPA store is
// local to ONE tree node's virtual subgraph: hub partials and skeletons
// to the subgraph where the hub was selected, leaf PPVs to the leaf
// subgraph. A node's virtual subgraph (Definition 3) consists of the
// out-edges of its members plus their ORIGINAL out-degrees, so an edge
// (t, v) changes exactly the subgraphs whose member set contains the
// tail t — and membership is nested, so those are precisely the nodes
// on Path(t), root through Home(t). Heads are free: an edge arriving
// from outside a subgraph neither appears in it nor changes any
// member's out-degree. The dirty set of a delta batch is therefore the
// union of the tails' root-to-home chains, plus whatever hub promotion
// touches (below).
//
// Exactness additionally requires each node's hub set to separate its
// children (Theorems 1–3). A deleted edge can never break separation; an
// inserted edge (t, v) can break it only at the deepest tree node
// containing both endpoints, and only when neither endpoint is that
// node's hub and they sit in different children. The repair is hub
// PROMOTION: the tail t joins that node's hub set and leaves every
// deeper subgraph. Promotion keeps the partition tree intact (no
// re-partitioning), dirties only nodes already on Path(t), and is
// always sound — removing a vertex from a subgraph cannot connect its
// children, and enlarging a separator keeps it a separator. The price
// is that hub sets drift above what a fresh partitioning would choose;
// a periodic full rebuild re-optimizes, exactly like any LSM-style
// structure compacts.
type Update struct {
	// H is the new hierarchy. It shares the graph, every clean node's
	// slices, and every clean node's virtual subgraph with the receiver
	// of ApplyDelta, which remains fully usable as a snapshot.
	H *Hierarchy
	// Dirty lists the tree nodes (of H, sorted by ID) whose virtual
	// subgraph changed: their hub partials, skeletons, and — for leaves —
	// member PPVs must be recomputed. RefreshSubgraphs re-extracts their
	// Sub fields once the root graph has advanced.
	Dirty []*Node
	// Promoted lists nodes that joined a hub set to restore the
	// separator property, in deterministic (sorted-edge) order. A
	// promoted node's old leaf PPV is stale and must be dropped.
	Promoted []int32
}

// ApplyDelta maps an edge-delta batch to the partition hierarchy: it
// returns a NEW hierarchy (the receiver is untouched and keeps serving
// as a snapshot) with hub promotions applied, plus the dirty node set.
// It must be called BEFORE the batch is applied to the shared root
// graph — effectiveness filtering reads the pre-update edge set — and
// RefreshSubgraphs after.
func (h *Hierarchy) ApplyDelta(d graph.Delta) (*Update, error) {
	ins, del, err := d.Effective(h.G)
	if err != nil {
		return nil, err
	}
	u := &updater{h: h.clone(), dirty: make(map[*Node]bool)}
	for _, e := range del {
		u.markPath(e[0])
	}
	for _, e := range ins {
		u.markPath(e[0])
		u.fixSeparator(e[0], e[1])
	}
	out := &Update{H: u.h, Promoted: u.promoted}
	for n := range u.dirty {
		if !u.removed[n] {
			out.Dirty = append(out.Dirty, n)
		}
	}
	sort.Slice(out.Dirty, func(i, j int) bool { return out.Dirty[i].ID < out.Dirty[j].ID })
	return out, nil
}

// RefreshSubgraphs re-extracts the virtual subgraph of every dirty node
// from the (now updated) root graph. Clean nodes keep sharing their
// subgraphs with the previous hierarchy.
func (u *Update) RefreshSubgraphs() {
	for _, n := range u.Dirty {
		n.Sub = graph.VirtualSubgraph(u.H.G, n.Members)
	}
}

// clone produces a structurally independent copy of the tree: fresh
// Node structs and index arrays, shared Members/Hubs/Sub payloads. Node
// IDs are preserved, so shard assignments keyed by ID stay meaningful
// across an update.
func (h *Hierarchy) clone() *Hierarchy {
	nh := &Hierarchy{
		G:        h.G,
		Opts:     h.Opts,
		nodes:    make([]*Node, len(h.nodes)),
		home:     make([]*Node, len(h.home)),
		hubLevel: slices.Clone(h.hubLevel),
	}
	m := make(map[*Node]*Node, len(h.nodes))
	for i, n := range h.nodes {
		c := *n
		nh.nodes[i] = &c
		m[n] = &c
	}
	for _, c := range nh.nodes {
		c.Parent = m[c.Parent]
		children := make([]*Node, len(c.Children))
		for i, x := range c.Children {
			children[i] = m[x]
		}
		c.Children = children
	}
	for i, n := range h.home {
		nh.home[i] = m[n]
	}
	nh.Root = m[h.Root]
	return nh
}

type updater struct {
	h        *Hierarchy
	dirty    map[*Node]bool
	removed  map[*Node]bool
	promoted []int32
}

// markPath dirties the root-to-home chain of tail t.
func (u *updater) markPath(t int32) {
	for n := u.h.home[t]; n != nil; n = n.Parent {
		u.dirty[n] = true
	}
}

// fixSeparator checks the inserted edge (t, v) against the separator
// property and promotes t when it crosses two children of the deepest
// node containing both endpoints.
func (u *updater) fixSeparator(t, v int32) {
	pt, pv := u.h.Path(t), u.h.Path(v)
	k := 0
	for k < len(pt) && k < len(pv) && pt[k] == pv[k] {
		k++
	}
	if k == len(pt) || k == len(pv) {
		// One endpoint is homed at the last common node: either it is
		// that node's hub (the edge touches a separator vertex) or both
		// endpoints share one leaf. Neither breaks separation.
		return
	}
	// pt[k-1] is the deepest node containing both; t continues into
	// child pt[k], v into the different child pv[k]: a separator
	// violation. Promote the tail — its chain is already dirty, so the
	// promotion adds no recompute work beyond the new hub vectors.
	u.promote(t, pt[k-1], pt[k:])
}

// promote turns x into a hub of n, removing it from every node of
// `below` (x's chain strictly below n, child-of-n first).
func (u *updater) promote(x int32, n *Node, below []*Node) {
	for _, c := range below {
		c.Members = removeSorted(c.Members, x)
		u.dirty[c] = true
	}
	if u.h.hubLevel[x] >= 0 {
		old := below[len(below)-1] // x's former hub home
		old.Hubs = removeSorted(old.Hubs, x)
	}
	for i := len(below) - 1; i >= 0; i-- {
		if len(below[i].Members) > 0 {
			break
		}
		u.unlink(below[i])
	}
	n.Hubs = insertSorted(n.Hubs, x)
	u.h.hubLevel[x] = int32(n.Level)
	u.h.home[x] = n
	u.dirty[n] = true
	u.promoted = append(u.promoted, x)
}

// unlink drops an emptied node from the tree. An emptied node cannot
// have children (their members would be its members) nor remaining
// hubs, so dropping it leaves every invariant intact.
func (u *updater) unlink(c *Node) {
	if u.removed == nil {
		u.removed = make(map[*Node]bool)
	}
	u.removed[c] = true
	p := c.Parent
	for i, x := range p.Children {
		if x == c {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	for i, x := range u.h.nodes {
		if x == c {
			u.h.nodes = append(u.h.nodes[:i], u.h.nodes[i+1:]...)
			break
		}
	}
}

// removeSorted returns a fresh sorted slice without x. Fresh because
// Members/Hubs slices are shared with the snapshot hierarchy — surgery
// must never mutate them in place.
func removeSorted(s []int32, x int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i == len(s) || s[i] != x {
		return s
	}
	out := make([]int32, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

// insertSorted returns a fresh sorted slice with x added.
func insertSorted(s []int32, x int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return s
	}
	out := make([]int32, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, x)
	return append(out, s[i:]...)
}
