package gen

import (
	"fmt"
	"sort"

	"exactppr/internal/graph"
)

// This file defines the named dataset analogues. Each preset reproduces the
// paper dataset's *shape* — edge/node density, community structure, degree
// skew — at a scale that runs on a laptop. The `scale` argument multiplies
// the node count (1.0 = the default reduced size below, NOT the paper's
// size; see DESIGN.md §3 for the substitution rationale).

// DatasetSpec describes one named synthetic dataset.
type DatasetSpec struct {
	Name string
	// PaperNodes/PaperEdges are the sizes reported in §6.1, for reference
	// in experiment output.
	PaperNodes, PaperEdges int
	// BaseNodes is the node count at scale 1.0.
	BaseNodes int
	// AvgOutDegree matches the paper's |E|/|V| ratio.
	AvgOutDegree float64
	Communities  int
	InterFrac    float64
	DegreeSkew   float64
}

// Specs lists the built-in dataset analogues, keyed by lower-case name.
// Density ratios come straight from §6.1:
//
//	Email   265,214 /   420,045  → 1.58 edges/node
//	Web     875,713 / 5,105,039  → 5.83
//	Youtube 1,134,890 / 2,987,624 → 2.63
//	PLD   3,000,000 / 18,185,350 → 6.06
var Specs = map[string]DatasetSpec{
	"email": {
		Name: "Email", PaperNodes: 265214, PaperEdges: 420045,
		BaseNodes: 4000, AvgOutDegree: 1.6, Communities: 32, InterFrac: 0.04, DegreeSkew: 1.7,
	},
	"web": {
		Name: "Web", PaperNodes: 875713, PaperEdges: 5105039,
		BaseNodes: 12000, AvgOutDegree: 5.8, Communities: 96, InterFrac: 0.03, DegreeSkew: 1.9,
	},
	"youtube": {
		Name: "Youtube", PaperNodes: 1134890, PaperEdges: 2987624,
		BaseNodes: 16000, AvgOutDegree: 2.6, Communities: 128, InterFrac: 0.05, DegreeSkew: 1.8,
	},
	"pld": {
		Name: "PLD", PaperNodes: 3000000, PaperEdges: 18185350,
		BaseNodes: 24000, AvgOutDegree: 6.1, Communities: 192, InterFrac: 0.03, DegreeSkew: 1.9,
	},
	"pld_full": {
		Name: "PLD_full", PaperNodes: 101000000, PaperEdges: 1940000000,
		BaseNodes: 48000, AvgOutDegree: 8, Communities: 384, InterFrac: 0.03, DegreeSkew: 1.9,
	},
}

// DatasetNames returns the preset names in deterministic order.
func DatasetNames() []string {
	names := make([]string, 0, len(Specs))
	for n := range Specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Dataset generates the named analogue at the given scale (> 0).
func Dataset(name string, scale float64, seed int64) (*graph.Graph, error) {
	spec, ok := Specs[name]
	if !ok {
		return nil, fmt.Errorf("gen: unknown dataset %q (have %v)", name, DatasetNames())
	}
	if scale <= 0 {
		return nil, fmt.Errorf("gen: scale = %v, want > 0", scale)
	}
	n := int(float64(spec.BaseNodes) * scale)
	if n < spec.Communities*2 {
		n = spec.Communities * 2
	}
	return Community(Config{
		Nodes:        n,
		AvgOutDegree: spec.AvgOutDegree,
		Communities:  spec.Communities,
		InterFrac:    spec.InterFrac,
		DegreeSkew:   spec.DegreeSkew,
		MinOutDegree: 1,
		Seed:         seed,
	})
}

// MeetupSizes mirrors Table 6: five graphs of increasing size whose
// edge/node ratio grows from ≈83 to ≈108. At reproduction scale the node
// counts are divided by ~600 and the (very high) affiliation density by ~8
// so the suite stays laptop-sized while preserving the growth trend.
var MeetupSizes = []struct {
	ID          string
	PaperNodes  int
	PaperEdges  int
	Nodes       int
	AvgOutDeg   float64
	Communities int
}{
	{"M1", 997304, 82966338, 1600, 10.4, 24},
	{"M2", 1197009, 107393088, 1900, 11.2, 28},
	{"M3", 1396054, 129774158, 2250, 11.6, 32},
	{"M4", 1596455, 163320390, 2600, 12.8, 38},
	{"M5", 1796226, 194083414, 2900, 13.5, 42},
}

// MeetupLike generates the i-th (0-based) Table 6 analogue.
func MeetupLike(i int, seed int64) (*graph.Graph, error) {
	if i < 0 || i >= len(MeetupSizes) {
		return nil, fmt.Errorf("gen: meetup index %d out of range [0,%d)", i, len(MeetupSizes))
	}
	s := MeetupSizes[i]
	return Community(Config{
		Nodes:        s.Nodes,
		AvgOutDegree: s.AvgOutDeg,
		Communities:  s.Communities,
		InterFrac:    0.05,
		DegreeSkew:   1.6,
		MinOutDegree: 1,
		Seed:         seed + int64(i),
	})
}
