package exactppr_test

import (
	"fmt"
	"log"

	"exactppr"
)

// fixedGraph builds the deterministic two-community toy graph used by
// the runnable examples below.
func fixedGraph() *exactppr.Graph {
	b := exactppr.NewGraphBuilder(8)
	for _, e := range [][2]int32{
		{0, 1}, {1, 2}, {2, 0}, {1, 3}, {3, 0}, // community A
		{3, 4}, {4, 5}, {2, 4}, {4, 3}, // bridge via node 4
		{5, 6}, {6, 7}, {7, 5}, {6, 5}, // community B
	} {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// The basic flow: build once, query exactly.
func Example() {
	store, err := exactppr.BuildHGPA(fixedGraph(), exactppr.HierarchyOptions{Seed: 1},
		exactppr.DefaultParams(), 1)
	if err != nil {
		log.Fatal(err)
	}
	ppv, err := store.Query(0)
	if err != nil {
		log.Fatal(err)
	}
	top := ppv.TopK(3)
	fmt.Printf("top node: %d\n", top[0].ID)
	fmt.Printf("entries: %d\n", len(top))
	// Output:
	// top node: 0
	// entries: 3
}

// Exactness: the pre-computed construction agrees with power iteration.
func ExamplePowerIteration() {
	g := fixedGraph()
	params := exactppr.Params{Alpha: 0.15, Eps: 1e-8}
	store, err := exactppr.BuildHGPA(g, exactppr.HierarchyOptions{Seed: 1}, params, 1)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := store.Query(3)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := exactppr.PowerIteration(g, 3, params)
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for id, x := range oracle {
		d := x - fast.Get(id)
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("agrees within tolerance: %v\n", maxDiff < 1e-4)
	// Output:
	// agrees within tolerance: true
}

// Distributed queries: one round, byte-accounted, exact.
func ExampleNewLocalCluster() {
	store, err := exactppr.BuildHGPA(fixedGraph(), exactppr.HierarchyOptions{Seed: 1},
		exactppr.DefaultParams(), 1)
	if err != nil {
		log.Fatal(err)
	}
	coord, err := exactppr.NewLocalCluster(store, 3)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := coord.Query(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machines answered: %d\n", len(stats.MachineTime))
	fmt.Printf("result matches centralized: %v\n", stats.Result.TopK(1)[0].ID == 0)
	// Output:
	// machines answered: 3
	// result matches centralized: true
}

// Preference sets use the linearity property of PPVs.
func ExampleStore_QuerySet() {
	store, err := exactppr.BuildHGPA(fixedGraph(), exactppr.HierarchyOptions{Seed: 1},
		exactppr.DefaultParams(), 1)
	if err != nil {
		log.Fatal(err)
	}
	ppv, err := store.QuerySet(exactppr.Preference{Nodes: []int32{5, 6}})
	if err != nil {
		log.Fatal(err)
	}
	// Mass concentrates in community B, where both seeds live.
	var communityB float64
	for id, x := range ppv {
		if id >= 5 {
			communityB += x
		}
	}
	fmt.Printf("seed-community share dominates: %v\n", communityB > 0.5*ppv.Sum())
	// Output:
	// seed-community share dominates: true
}
