package fastppv

import (
	"testing"

	"exactppr/internal/gen"
	"exactppr/internal/graph"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

func params() ppr.Params { return ppr.Params{Alpha: 0.15, Eps: 1e-8} }

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Community(gen.Config{
		Nodes: 250, AvgOutDegree: 4, Communities: 3,
		InterFrac: 0.08, MinOutDegree: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildIndexErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := BuildIndex(g, 0, params(), 1); err == nil {
		t.Fatal("hubCount=0 should fail")
	}
	if _, err := BuildIndex(g, g.NumNodes()+1, params(), 1); err == nil {
		t.Fatal("hubCount>n should fail")
	}
	if _, err := BuildIndex(g, 5, ppr.Params{Alpha: 2, Eps: 1}, 1); err == nil {
		t.Fatal("bad params should fail")
	}
}

func TestUnlimitedBudgetNearExact(t *testing.T) {
	g := testGraph(t)
	ix, err := BuildIndex(g, 20, params(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int32{0, 100, 249} {
		stats, err := ix.Query(u, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ppr.PowerIteration(g, u, params())
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(stats.Result, want); d > 1e-4 {
			t.Errorf("u=%d: unlimited budget L∞ = %v", u, d)
		}
	}
}

func TestAccuracyImprovesWithBudget(t *testing.T) {
	g := testGraph(t)
	ix, err := BuildIndex(g, 25, params(), 2)
	if err != nil {
		t.Fatal(err)
	}
	u := int32(5)
	want, err := ppr.PowerIteration(g, u, params())
	if err != nil {
		t.Fatal(err)
	}
	var prevErr float64 = -1
	for _, budget := range []int{1, 8, 64, 0} {
		stats, err := ix.Query(u, budget)
		if err != nil {
			t.Fatal(err)
		}
		l1 := sparse.L1Distance(stats.Result, want)
		if prevErr >= 0 && l1 > prevErr+1e-9 {
			t.Errorf("budget %d: L1 error %v worse than smaller budget %v", budget, l1, prevErr)
		}
		prevErr = l1
	}
}

func TestDiscardedMassBoundsError(t *testing.T) {
	g := testGraph(t)
	ix, err := BuildIndex(g, 25, params(), 2)
	if err != nil {
		t.Fatal(err)
	}
	u := int32(60)
	want, err := ppr.PowerIteration(g, u, params())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ix.Query(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	l1 := sparse.L1Distance(stats.Result, want)
	// Discarded walk mass bounds the missing PPV mass (each unit of walk
	// mass yields at most 1 unit of PPV mass), modulo the ε tail.
	if l1 > stats.DiscardedMass+1e-3 {
		t.Fatalf("L1 error %v exceeds discarded mass %v", l1, stats.DiscardedMass)
	}
}

func TestQueryErrors(t *testing.T) {
	g := testGraph(t)
	ix, err := BuildIndex(g, 5, params(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Query(-1, 0); err == nil {
		t.Fatal("bad query should fail")
	}
}

func TestMoreHubsShiftWorkOffline(t *testing.T) {
	g := testGraph(t)
	small, err := BuildIndex(g, 5, params(), 2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := BuildIndex(g, 50, params(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if small.SpaceBytes() >= big.SpaceBytes() {
		t.Fatalf("more hubs should mean a bigger index: %d vs %d",
			small.SpaceBytes(), big.SpaceBytes())
	}
	// Hub queries: with more hubs, a query's own partial vector is more
	// blocked, so unlimited-budget expansion count grows.
	u := int32(3)
	s1, err := small.Query(u, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := big.Query(u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Result.Len() == 0 || s2.Result.Len() == 0 {
		t.Fatal("empty results")
	}
}

func TestHeapScheduling(t *testing.T) {
	// The scheduler must expand highest-mass hubs first: with budget 1 on
	// a path into two hubs of unequal mass, the heavier hub's prime
	// vector must be included.
	//
	// 0 → 1 (hub, via double edge weight impossible in simple graphs) —
	// instead: 0→1 and 0→2→3 where 1 and 3 are hubs; mass at 1 is
	// (1−α)/2, at 3 it is (1−α)²/2 < mass at 1.
	g := graph.FromAdjacency([][]int32{{1, 2}, {}, {3}, {}})
	p := params()
	hubs := []int32{1, 3}
	ix := &Index{
		G: g, Params: p, Hubs: hubs,
		Prime:   map[int32]sparse.Packed{1: sparse.Pack(sparse.Vector{1: p.Alpha}), 3: sparse.Pack(sparse.Vector{3: p.Alpha})},
		Blocked: map[int32]sparse.Vector{1: {}, 3: {}},
		isHub:   []bool{false, true, false, true},
	}
	stats, err := ix.Query(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Expansions != 1 {
		t.Fatalf("expansions = %d", stats.Expansions)
	}
	if stats.Result.Get(1) == 0 {
		t.Fatal("budget-1 expansion skipped the heavier hub")
	}
	if stats.Result.Get(3) != 0 {
		t.Fatal("budget-1 expansion included the lighter hub")
	}
	if stats.DiscardedMass <= 0 {
		t.Fatal("lighter hub's mass must be reported as discarded")
	}
}
