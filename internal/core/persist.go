package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"slices"

	"exactppr/internal/graph"
	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

// Store persistence. The file carries the graph (as a binary edge list),
// the hierarchy OPTIONS (hierarchy construction is deterministic for a
// seed, so the tree is rebuilt rather than serialized — this also sidesteps
// the parent-pointer cycles a naive encoder would choke on), the PPR
// parameters, and the three vector sections.
//
// Layout (little-endian throughout):
//
//	magic "EXPPRST1"
//	params:    alpha, eps float64; maxIter, dangling int32
//	hierarchy: fanout, maxLevels, minSize int32; imbalance float64; seed int64
//	graph:     n, m int32; m × (u, v int32)
//	3 sections (hub partials, skeletons, leaf PPVs):
//	           count int32; count × (key int32, vecLen int32, vec bytes)

var storeMagic = [8]byte{'E', 'X', 'P', 'P', 'R', 'S', 'T', '1'}

// Save writes the store to w.
//
// Incrementally updated stores (graph epoch > 0) are rejected: the file
// format rebuilds the hierarchy deterministically from (graph, options),
// which cannot reproduce an update-maintained tree — its hub promotions
// are a function of the delta history, not of the final graph. Rebuild
// with BuildHGPA/Precompute on the updated graph before saving.
func Save(w io.Writer, s *Store) error {
	if s.H.G.Epoch() != 0 {
		return fmt.Errorf("core: cannot save an incrementally updated store (graph epoch %d): rebuild from the updated graph first", s.H.G.Epoch())
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(storeMagic[:]); err != nil {
		return err
	}
	writeU64 := func(x uint64) { binary.Write(bw, binary.LittleEndian, x) }
	writeI32 := func(x int32) { binary.Write(bw, binary.LittleEndian, x) }

	writeU64(math.Float64bits(s.Params.Alpha))
	writeU64(math.Float64bits(s.Params.Eps))
	writeI32(int32(s.Params.MaxIter))
	writeI32(int32(s.Params.Dangling))

	o := s.H.Opts
	writeI32(int32(o.Fanout))
	writeI32(int32(o.MaxLevels))
	writeI32(int32(o.MinSize))
	writeU64(math.Float64bits(o.Imbalance))
	writeU64(uint64(o.Seed))

	g := s.H.G
	writeI32(int32(g.NumNodes()))
	writeI32(int32(g.NumEdges()))
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Out(u) {
			writeI32(u)
			writeI32(v)
		}
	}
	for _, section := range []map[int32]sparse.Packed{s.HubPartial, s.Skeleton, s.LeafPPV} {
		writeI32(int32(len(section)))
		// Keys are written sorted so saving the same store twice yields
		// byte-identical files; the packed vectors themselves are
		// already in canonical order and serialize with a straight copy.
		keys := make([]int32, 0, len(section))
		for key := range section {
			keys = append(keys, key)
		}
		slices.Sort(keys)
		for _, key := range keys {
			writeI32(key)
			enc := sparse.EncodePacked(section[key])
			writeI32(int32(len(enc)))
			if _, err := bw.Write(enc); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SaveFile writes the store to a file path.
func SaveFile(path string, s *Store) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a store written by Save, rebuilding the hierarchy
// deterministically from the stored options.
func Load(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != storeMagic {
		return nil, fmt.Errorf("core: not a store file (magic %q)", magic)
	}
	readU64 := func() (uint64, error) {
		var x uint64
		err := binary.Read(br, binary.LittleEndian, &x)
		return x, err
	}
	readI32 := func() (int32, error) {
		var x int32
		err := binary.Read(br, binary.LittleEndian, &x)
		return x, err
	}
	var params ppr.Params
	if bits, err := readU64(); err != nil {
		return nil, err
	} else {
		params.Alpha = math.Float64frombits(bits)
	}
	if bits, err := readU64(); err != nil {
		return nil, err
	} else {
		params.Eps = math.Float64frombits(bits)
	}
	if x, err := readI32(); err != nil {
		return nil, err
	} else {
		params.MaxIter = int(x)
	}
	if x, err := readI32(); err != nil {
		return nil, err
	} else {
		params.Dangling = ppr.DanglingPolicy(x)
	}

	var opts hierarchy.Options
	if x, err := readI32(); err != nil {
		return nil, err
	} else {
		opts.Fanout = int(x)
	}
	if x, err := readI32(); err != nil {
		return nil, err
	} else {
		opts.MaxLevels = int(x)
	}
	if x, err := readI32(); err != nil {
		return nil, err
	} else {
		opts.MinSize = int(x)
	}
	if bits, err := readU64(); err != nil {
		return nil, err
	} else {
		opts.Imbalance = math.Float64frombits(bits)
	}
	if bits, err := readU64(); err != nil {
		return nil, err
	} else {
		opts.Seed = int64(bits)
	}

	n, err := readI32()
	if err != nil {
		return nil, err
	}
	m, err := readI32()
	if err != nil {
		return nil, err
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("core: corrupt store header (n=%d m=%d)", n, m)
	}
	b := graph.NewBuilder(int(n))
	for e := int32(0); e < m; e++ {
		u, err := readI32()
		if err != nil {
			return nil, err
		}
		v, err := readI32()
		if err != nil {
			return nil, err
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("core: corrupt edge (%d,%d)", u, v)
		}
		b.AddEdge(u, v)
	}
	g := b.Build()
	h, err := hierarchy.Build(g, opts)
	if err != nil {
		return nil, err
	}
	s := &Store{H: h, Params: params}
	sections := []*map[int32]sparse.Packed{&s.HubPartial, &s.Skeleton, &s.LeafPPV}
	for _, section := range sections {
		count, err := readI32()
		if err != nil {
			return nil, err
		}
		if count < 0 {
			return nil, fmt.Errorf("core: corrupt section count %d", count)
		}
		mp := make(map[int32]sparse.Packed, count)
		for i := int32(0); i < count; i++ {
			key, err := readI32()
			if err != nil {
				return nil, err
			}
			vlen, err := readI32()
			if err != nil {
				return nil, err
			}
			if vlen < 0 || vlen > 1<<30 {
				return nil, fmt.Errorf("core: corrupt vector length %d", vlen)
			}
			buf := make([]byte, vlen)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, err
			}
			// DecodePacked reads canonical payloads with one sequential
			// pass and still accepts store files written before
			// canonical ordering (it sorts those on load).
			vec, err := sparse.DecodePacked(buf)
			if err != nil {
				return nil, err
			}
			if !vec.InRange(g.NumNodes()) {
				return nil, fmt.Errorf("core: vector for key %d has node ids outside [0,%d) (corrupt store?)", key, g.NumNodes())
			}
			mp[key] = vec
		}
		*section = mp
	}
	// Consistency: every hub in the hierarchy must have its vectors.
	for _, hub := range hubsOf(h) {
		if _, ok := s.HubPartial[hub]; !ok {
			return nil, fmt.Errorf("core: store missing partial for hub %d (seed/version drift?)", hub)
		}
		if _, ok := s.Skeleton[hub]; !ok {
			return nil, fmt.Errorf("core: store missing skeleton for hub %d", hub)
		}
	}
	return s, nil
}

// LoadFile reads a store from a file path.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func hubsOf(h *hierarchy.Hierarchy) []int32 {
	var out []int32
	for _, n := range h.Nodes() {
		out = append(out, n.Hubs...)
	}
	return out
}
