package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"exactppr/internal/hierarchy"
	"exactppr/internal/sparse"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := testGraph(t, 40)
	s, err := BuildHGPA(g, hierarchy.Options{Seed: 21}, tightParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.H.G.NumNodes() != g.NumNodes() || loaded.H.G.NumEdges() != g.NumEdges() {
		t.Fatal("graph not restored")
	}
	if loaded.Params != s.Params {
		t.Fatalf("params: %+v vs %+v", loaded.Params, s.Params)
	}
	if len(loaded.HubPartial) != len(s.HubPartial) ||
		len(loaded.Skeleton) != len(s.Skeleton) ||
		len(loaded.LeafPPV) != len(s.LeafPPV) {
		t.Fatal("vector sections not restored")
	}
	// Queries through the loaded store must be bit-identical.
	for _, u := range []int32{0, 99, 399} {
		want, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(got, want); d != 0 {
			t.Fatalf("u=%d: loaded store differs, L∞ = %v", u, d)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := testGraph(t, 41)
	s, err := BuildGPA(g, 3, tightParams(), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store.bin")
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := s.Query(7)
	got, _ := loaded.Query(7)
	if d := sparse.LInfDistance(got, want); d != 0 {
		t.Fatalf("file round trip differs: %v", d)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a store"))); err == nil {
		t.Fatal("bad magic should fail")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
	// Truncated after a valid magic.
	if _, err := Load(bytes.NewReader(storeMagic[:])); err == nil {
		t.Fatal("truncated header should fail")
	}
}
