// Package gen produces the synthetic graphs used throughout the
// reproduction. The paper evaluates on five real datasets (Email, Web,
// Youtube, PLD, Meetup) that are not available offline, so this package
// generates structural analogues: directed graphs with planted community
// structure (small vertex separators between communities — the property
// Appendix D argues real social/web graphs have) and heavy-tailed
// out-degrees. The generators are fully deterministic given a seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"exactppr/internal/graph"
)

// Config parameterizes the community graph generator.
type Config struct {
	// Nodes is the number of nodes (must be ≥ 1).
	Nodes int
	// AvgOutDegree is the target mean out-degree.
	AvgOutDegree float64
	// Communities is the number of planted communities (≥ 1). Nodes are
	// assigned to communities in contiguous id ranges, which keeps the
	// partitioner's job honest without hiding the community structure.
	Communities int
	// InterFrac is the per-level escape probability of the hierarchical
	// block ladder (0 ≤ InterFrac < 1). Each community is recursively
	// halved into nested blocks down to MinBlock nodes; an edge's head is
	// drawn from the tail's innermost block, escaping one level outward
	// with probability InterFrac per level (and, past the top, anywhere
	// in the graph). Small values yield small vertex separators at EVERY
	// level of the hierarchy — the structure real social and web graphs
	// exhibit and the paper's partitioning exploits (Appendix D).
	InterFrac float64
	// MinBlock is the innermost block size of the ladder (0 defaults
	// to 12). Below this size no further nesting is planted.
	MinBlock int
	// DegreeSkew enables a heavy-tailed (Zipf) out-degree distribution
	// when > 1; the value is the Zipf s parameter. 0 disables skew
	// (Poisson-like degrees).
	DegreeSkew float64
	// MinOutDegree forces every node to have at least this many out-edges
	// (0 allows dangling nodes).
	MinOutDegree int
	// Seed drives the deterministic RNG.
	Seed int64
}

func (c Config) validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("gen: Nodes = %d, want ≥ 1", c.Nodes)
	}
	if c.Communities < 1 {
		return fmt.Errorf("gen: Communities = %d, want ≥ 1", c.Communities)
	}
	if c.Communities > c.Nodes {
		return fmt.Errorf("gen: Communities %d > Nodes %d", c.Communities, c.Nodes)
	}
	if c.InterFrac < 0 || c.InterFrac >= 1 {
		return fmt.Errorf("gen: InterFrac = %v, want [0,1)", c.InterFrac)
	}
	if c.AvgOutDegree < 0 {
		return fmt.Errorf("gen: AvgOutDegree = %v, want ≥ 0", c.AvgOutDegree)
	}
	return nil
}

// Community generates a directed planted-community graph per Config.
func Community(cfg Config) (*graph.Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Nodes
	k := cfg.Communities
	minBlock := cfg.MinBlock
	if minBlock <= 0 {
		minBlock = 12
	}
	// Community c owns ids [bounds[c], bounds[c+1]).
	bounds := make([]int, k+1)
	for c := 0; c <= k; c++ {
		bounds[c] = c * n / k
	}
	commOf := func(u int) int { return u * k / n }
	// Ladder depth below the community level: halve until blocks reach
	// minBlock. Level 0 = the whole community; level d = community split
	// into 2^d equal ranges.
	depth := 0
	for sz := n / k; sz/2 >= minBlock; sz /= 2 {
		depth++
	}
	// blockAt returns the id range of u's block at ladder level d.
	blockAt := func(u, d int) (lo, hi int) {
		c := commOf(u)
		lo, hi = bounds[c], bounds[c+1]
		for i := 0; i < d; i++ {
			mid := lo + (hi-lo)/2
			if u < mid {
				hi = mid
			} else {
				lo = mid
			}
		}
		return lo, hi
	}
	// Per-level escape probability, normalized so the end-to-end
	// cross-community fraction is InterFrac regardless of depth.
	escape := cfg.InterFrac
	if depth > 0 && cfg.InterFrac > 0 {
		escape = math.Pow(cfg.InterFrac, 1/float64(depth+1))
	}
	// Escaped edges land on the target block's "gateway" prefix — the
	// ambassador nodes real networks route cross-community traffic
	// through. Concentrating cut edges on few heads is what keeps vertex
	// separators (and thus the paper's hub sets) small.
	gateway := func(lo, hi int) int {
		g := (hi - lo) / 16
		if g < 2 {
			g = 2
		}
		if g > hi-lo {
			g = hi - lo
		}
		return lo + rng.Intn(g)
	}

	var zipf *rand.Zipf
	if cfg.DegreeSkew > 1 {
		// imax chosen so the tail cannot exceed ~sqrt(n)·avg, keeping the
		// generated edge count near the target.
		imax := uint64(math.Max(4, cfg.AvgOutDegree*math.Sqrt(float64(n))))
		zipf = rand.NewZipf(rng, cfg.DegreeSkew, 1, imax)
	}

	// Sample raw degrees, then rescale so the total lands on the target
	// edge count regardless of the Zipf parameters' intrinsic mean.
	degs := make([]int, n)
	var raw float64
	for u := 0; u < n; u++ {
		degs[u] = sampleDegree(rng, zipf, cfg.AvgOutDegree)
		raw += float64(degs[u])
	}
	if target := cfg.AvgOutDegree * float64(n); raw > 0 && target > 0 {
		f := target / raw
		for u := 0; u < n; u++ {
			degs[u] = int(float64(degs[u])*f + 0.5)
		}
	}

	b := graph.NewBuilder(n)
	chosen := make(map[int]bool, 32)
	for u := 0; u < n; u++ {
		deg := degs[u]
		if deg < cfg.MinOutDegree {
			deg = cfg.MinOutDegree
		}
		clear(chosen)
		for e := 0; e < deg; e++ {
			// Climb the ladder: start in the innermost block, escape one
			// level per coin flip; past the community level the edge may
			// reach any community's gateway nodes. Gateways concentrate
			// edges, so retry a few times when a duplicate comes up to
			// keep the realized degree near the target.
			var v int
			ok := false
			for attempt := 0; attempt < 4 && !ok; attempt++ {
				d := depth
				escaped := false
				for d > 0 && rng.Float64() < escape {
					d--
					escaped = true
				}
				switch {
				case d == 0 && k > 1 && rng.Float64() < escape:
					// Global edge into a random community's gateways.
					c := rng.Intn(k)
					v = gateway(bounds[c], bounds[c+1])
				case escaped:
					lo, hi := blockAt(u, d)
					v = gateway(lo, hi)
				default:
					lo, hi := blockAt(u, d)
					v = lo + rng.Intn(hi-lo)
				}
				ok = v != u && !chosen[v]
			}
			if !ok {
				continue
			}
			chosen[v] = true
			b.AddEdge(int32(u), int32(v))
		}
	}
	g := b.Build()
	if cfg.MinOutDegree > 0 {
		g = ensureMinOutDegree(g, cfg.MinOutDegree, rng)
	}
	return g, nil
}

// sampleDegree draws one out-degree: Zipf-shifted when skewed, otherwise a
// small geometric jitter around the mean.
func sampleDegree(rng *rand.Rand, zipf *rand.Zipf, avg float64) int {
	if avg <= 0 {
		return 0
	}
	if zipf != nil {
		// Zipf(s,1,imax) has a mean well below avg for typical s; shift and
		// scale so the empirical mean lands near avg: 1 + zipf spread.
		return 1 + int(zipf.Uint64())
	}
	// Geometric-ish jitter: uniform in [avg/2, 3·avg/2).
	lo := avg / 2
	return int(lo + rng.Float64()*avg + 0.5)
}

// ensureMinOutDegree rebuilds g adding random out-edges (within the node's
// id neighbourhood) to nodes below the minimum.
func ensureMinOutDegree(g *graph.Graph, min int, rng *rand.Rand) *graph.Graph {
	n := g.NumNodes()
	b := graph.NewBuilder(n)
	for u := int32(0); u < int32(n); u++ {
		for _, v := range g.Out(u) {
			b.AddEdge(u, v)
		}
		for d := g.OutDegree(u); d < min; d++ {
			v := int32(rng.Intn(n))
			if v == u {
				v = (v + 1) % int32(n)
			}
			if v != u {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// ErdosRenyi generates a directed G(n, m≈avgDeg·n) graph; handy for tests
// that need structure-free inputs.
func ErdosRenyi(n int, avgDeg float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	m := int(avgDeg * float64(n))
	for e := 0; e < m; e++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// PreferentialAttachment generates a directed Barabási–Albert-style graph:
// each new node adds m out-edges to targets drawn proportionally to their
// current in-degree (+1 smoothing). Produces the heavy-tailed in-degree
// distribution typical of web graphs.
func PreferentialAttachment(n, m int, seed int64) *graph.Graph {
	if n < 1 {
		panic("gen: PreferentialAttachment needs n ≥ 1")
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// targets is a multiset of node ids weighted by in-degree+1.
	targets := make([]int32, 0, n*(m+1))
	for u := 0; u < n; u++ {
		targets = append(targets, int32(u)) // the +1 smoothing entry
		if u == 0 {
			continue
		}
		for e := 0; e < m; e++ {
			v := targets[rng.Intn(len(targets))]
			if v == int32(u) {
				continue
			}
			b.AddEdge(int32(u), v)
			targets = append(targets, v)
		}
	}
	return b.Build()
}
