package graph

// This file provides the traversal helpers used by the partitioner and by
// tests that verify separator properties (removing the hub set must
// disconnect the parts).

// BFSFrom runs a breadth-first search over the UNDIRECTED view of g
// (following both out- and in-edges) starting at src, skipping any node for
// which blocked returns true. visit is called once per reached node,
// including src. blocked may be nil.
func (g *Graph) BFSFrom(src int32, blocked func(int32) bool, visit func(int32)) {
	if blocked != nil && blocked(src) {
		return
	}
	g.BuildReverse()
	seen := make([]bool, g.NumNodes())
	queue := []int32{src}
	seen[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		visit(u)
		expand := func(v int32) {
			if !seen[v] && (blocked == nil || !blocked(v)) {
				seen[v] = true
				queue = append(queue, v)
			}
		}
		for _, v := range g.Out(u) {
			expand(v)
		}
		for _, v := range g.In(u) {
			expand(v)
		}
	}
}

// WeaklyConnectedComponents labels every node with a component id in
// 0..k-1 (undirected connectivity) and returns (labels, k). Nodes for
// which blocked returns true get label -1 and are treated as deleted.
func (g *Graph) WeaklyConnectedComponents(blocked func(int32) bool) ([]int32, int) {
	n := g.NumNodes()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var k int32
	for s := int32(0); s < int32(n); s++ {
		if labels[s] >= 0 || (blocked != nil && blocked(s)) {
			continue
		}
		id := k
		k++
		g.BFSFrom(s, blocked, func(u int32) { labels[u] = id })
	}
	return labels, int(k)
}

// IsSeparator reports whether removing the given hub set leaves no
// undirected path between any two nodes that belong to different parts.
// parts maps each node to its part id; hub nodes may carry any part value.
func IsSeparator(g *Graph, hubs map[int32]bool, parts []int32) bool {
	labels, _ := g.WeaklyConnectedComponents(func(u int32) bool { return hubs[u] })
	// Within one surviving component all nodes must agree on their part.
	compPart := make(map[int32]int32)
	for u, comp := range labels {
		if comp < 0 {
			continue
		}
		p := parts[u]
		if prev, ok := compPart[comp]; ok {
			if prev != p {
				return false
			}
		} else {
			compPart[comp] = p
		}
	}
	return true
}

// ReachableFrom returns the set of nodes reachable from src following
// DIRECTED out-edges only, skipping blocked nodes (blocked may be nil).
// src itself is included unless blocked.
func (g *Graph) ReachableFrom(src int32, blocked func(int32) bool) map[int32]bool {
	out := make(map[int32]bool)
	if blocked != nil && blocked(src) {
		return out
	}
	stack := []int32{src}
	out[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Out(u) {
			if !out[v] && (blocked == nil || !blocked(v)) {
				out[v] = true
				stack = append(stack, v)
			}
		}
	}
	return out
}
