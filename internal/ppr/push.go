package ppr

import (
	"fmt"

	"exactppr/internal/graph"
	"exactppr/internal/sparse"
)

// Sparse-frontier push kernels.
//
// The dense kernels in ppr.go already move probability mass with a
// residual work queue, but every invocation still pays costs
// proportional to the subgraph rather than to the work: O(|V|) scratch
// clears up front, an O(|V|) drain scan at the end, and — for the
// reverse kernel — a mutex acquisition per queue pop (graph.In locks on
// every call). For pre-computation those overheads dominate: a hub
// partial or leaf PPV usually touches a small neighborhood of a
// subgraph, and the update path re-runs thousands of such vectors per
// edge batch.
//
// The push kernels below run the SAME arithmetic in the SAME FIFO
// order — outputs are bit-identical to the dense kernels — but make
// the bookkeeping work-proportional:
//
//   - scratch slots are initialized lazily, on first touch, guarded by
//     an epoch stamp (no up-front clears; a stale slot from a previous
//     vector is never read);
//   - touched slot ids are collected in a list, and the result drains
//     by sorting that list (O(t log t) in the touched count t) instead
//     of scanning O(|V|);
//   - the reverse kernel reads the in-CSR arrays once (graph.InLists)
//     instead of paying In's mutex per pop, and both directions run as
//     straight-line loops over the raw CSR.
//
// # Residual invariant
//
// Both directions maintain the Gauss–Southwell invariant
//
//	exact(v) = d(v) + Σ_w e(w) · k_w(v)    for every v,
//
// where d is the current estimate, e the per-node residual, and k_w the
// exact kernel answer started from w (the hub-blocked partial vector in
// the forward case, the reverse value function in the skeleton case).
// Every push moves one node's residual into its estimate and scatters
// the (1−α) continuation onto its neighbors, preserving the invariant;
// the loop stops when every residual is at most Eps, the same class of
// ε·α guarantee as the dense termination rule (each entry is then
// within Eps/α of the fixed point).
//
// # Adaptive dense fallback
//
// With Params.Kernel = KernelAuto, a kernel that touches more than
// 1/autoSpillDivisor of the subgraph abandons sparse bookkeeping: the
// remaining slots are bulk-initialized and the loop continues as the
// plain dense sweep (no per-access stamp checks, dense drain). Worst
// case cost is therefore the dense kernel's cost plus the already-done
// sparse work — never asymptotically worse than KernelDense.
// KernelPush never spills; KernelDense never stamps.

// Kernel selects the engine behind the pre-computation kernels
// (partial vectors, skeleton vectors, leaf PPVs).
type Kernel int

const (
	// KernelAuto (the default) runs the sparse-frontier push kernel and
	// falls back to the dense sweep when the frontier spills past
	// 1/autoSpillDivisor of the subgraph.
	KernelAuto Kernel = iota
	// KernelDense forces the original dense-bookkeeping kernels
	// (cleared O(|V|) scratch, dense drain, per-pop In locking in the
	// reverse direction). Kept as the cross-validation oracle and perf
	// baseline.
	KernelDense
	// KernelPush forces pure sparse bookkeeping with no dense fallback,
	// whatever the frontier size.
	KernelPush
)

// String returns the flag spelling of k ("auto", "dense", "push").
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelDense:
		return "dense"
	case KernelPush:
		return "push"
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// ParseKernel parses a -kernel flag value.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "dense":
		return KernelDense, nil
	case "push":
		return KernelPush, nil
	}
	return 0, fmt.Errorf("ppr: unknown kernel %q (want auto, dense, or push)", s)
}

// KernelStats counts the work of kernel invocations accumulated on one
// Scratch (one pre-computation worker).
type KernelStats struct {
	// Vectors is the number of kernel invocations.
	Vectors int64
	// Pushes is the number of residual pops that moved mass (the
	// work-proportional cost unit; counted by every kernel).
	Pushes int64
	// DenseFallbacks counts vectors drained by the dense sweep: all of
	// them under KernelDense, the frontier-spilled ones under
	// KernelAuto, none under KernelPush.
	DenseFallbacks int64
}

// Add accumulates b into s.
func (s *KernelStats) Add(b KernelStats) {
	s.Vectors += b.Vectors
	s.Pushes += b.Pushes
	s.DenseFallbacks += b.DenseFallbacks
}

// autoSpillDivisor sets the KernelAuto fallback threshold: once more
// than NumNodes/autoSpillDivisor slots have been touched, the sorted
// sparse drain would cost about as much as the dense scan it replaces,
// so the kernel completes as a dense sweep instead.
const autoSpillDivisor = 4

// spillLimit returns the touched-slot count at which a kernel abandons
// sparse bookkeeping, or a value never reached for KernelPush.
func spillLimit(k Kernel, n int) int {
	if k == KernelPush {
		return n + 1 // touched never exceeds n: no spill
	}
	return n/autoSpillDivisor + 1
}

// pushState is the post-run state of a push kernel, aliasing the
// scratch's buffers (valid until the scratch's next use). est/res are
// the estimate/residual arrays (d/e in the forward kernel's terms);
// aux is the forward kernel's hub-blocked mass, nil for the reverse
// kernel. When spilled is false only stamped slots are meaningful and
// touched lists exactly the stamped ids; when true every slot in [0,n)
// is initialized and touched must be ignored.
type pushState struct {
	n        int
	est, res []float64
	aux      []float64
	stamp    []uint32
	epoch    uint32
	touched  []int32
	spilled  bool
	pushes   int
}

// drainPacked emits the estimate array as a canonical Packed.
func (st *pushState) drainPacked() sparse.Packed {
	if st.spilled {
		return sparse.PackedFromDense(st.est[:st.n], 0)
	}
	return sparse.PackFromDenseIDs(st.touched, st.est)
}

// appendEntries appends the nonzero estimate entries to dst, in
// unspecified order.
func (st *pushState) appendEntries(dst []sparse.Entry) []sparse.Entry {
	if st.spilled {
		for i, x := range st.est[:st.n] {
			if x != 0 {
				dst = append(dst, sparse.Entry{ID: int32(i), Score: x})
			}
		}
		return dst
	}
	for _, id := range st.touched {
		if x := st.est[id]; x != 0 {
			dst = append(dst, sparse.Entry{ID: id, Score: x})
		}
	}
	return dst
}

// drainVector emits a dense slice's nonzero entries as a map Vector.
func (st *pushState) drainVector(vals []float64) sparse.Vector {
	v := sparse.Vector{}
	if st.spilled {
		for i, x := range vals[:st.n] {
			if x != 0 {
				v[int32(i)] = x
			}
		}
		return v
	}
	for _, id := range st.touched {
		if x := vals[id]; x != 0 {
			v[id] = x
		}
	}
	return v
}

// pushPartial is the sparse-frontier variant of partialVectorDense:
// identical selective-expansion arithmetic in identical FIFO order
// (results are bit-identical), with lazily stamped slots and a
// touched-list drain. The hot loop is written closure-free over the raw
// CSR — at a few hundred pushes per vector the per-edge constant is
// what decides whether sparse bookkeeping wins. See the file comment
// for the invariant and the KernelAuto spill semantics.
func pushPartial(g *graph.Graph, u int32, isHub []bool, p Params, sc *Scratch) (pushState, error) {
	if err := p.Validate(); err != nil {
		return pushState{}, err
	}
	n := g.NumNodes()
	if u < 0 || int(u) >= n || g.IsVirtual(u) {
		return pushState{}, fmt.Errorf("ppr: source %d invalid", u)
	}
	if isHub != nil && len(isHub) != n {
		return pushState{}, fmt.Errorf("ppr: isHub length %d, want %d", len(isHub), n)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	d, e, blocked, inQueue, stamp, epoch := sc.stamped(n)
	touched := sc.ids()
	queue := sc.queueBuf()
	spillAt := spillLimit(p.Kernel, n)
	spilled := false
	sink := g.VirtualSink() // -1 when absent: never equals a node id
	oneMinus := 1 - p.Alpha
	eps := p.Eps
	pushes := 0
	limit := p.maxIter() * max(n, 1)

	// Step 0: the zero-length tour ends at u (α), and u expands even when
	// it is a hub — the start position is not interior.
	stamp[u] = epoch
	e[u], blocked[u] = 0, 0
	inQueue[u] = false
	touched = append(touched, u)
	d[u] = p.Alpha
	if ow := g.OutWeight(u); ow != 0 {
		share := oneMinus / float64(ow) // = 1·(1−α)/ow, as expand(u, 1) computes
		for _, w := range g.Out(u) {
			if w == sink {
				continue
			}
			if stamp[w] != epoch {
				stamp[w] = epoch
				d[w], e[w], blocked[w] = 0, 0, 0
				inQueue[w] = false
				if !spilled {
					touched = append(touched, w)
					if len(touched) >= spillAt {
						spilled = true
					}
				}
			}
			e[w] += share
			if !inQueue[w] && e[w] > eps {
				inQueue[w] = true
				queue = append(queue, w)
			}
		}
	}

	qi := 0
	for qi < len(queue) && pushes < limit && !spilled {
		pushes++
		v := queue[qi]
		qi++
		inQueue[v] = false
		mass := e[v]
		if mass <= eps {
			continue
		}
		e[v] = 0
		if isHub != nil && isHub[v] {
			blocked[v] += mass // frozen: no hub visits after the start
			continue
		}
		d[v] += p.Alpha * mass // tours ending here
		ow := g.OutWeight(v)
		if ow == 0 {
			continue // dangling or fully-external: absorb
		}
		share := mass * oneMinus / float64(ow)
		for _, w := range g.Out(v) {
			if w == sink {
				continue
			}
			if stamp[w] != epoch {
				stamp[w] = epoch
				d[w], e[w], blocked[w] = 0, 0, 0
				inQueue[w] = false
				if !spilled {
					touched = append(touched, w)
					if len(touched) >= spillAt {
						spilled = true
					}
				}
			}
			e[w] += share
			if !inQueue[w] && e[w] > eps {
				inQueue[w] = true
				queue = append(queue, w)
			}
		}
	}
	if spilled {
		// KernelAuto fallback: bulk-initialize the remaining slots and
		// finish as the dense sweep — no stamp checks from here on.
		spillInit(n, stamp, epoch, d, e, blocked, inQueue)
		for qi < len(queue) && pushes < limit {
			pushes++
			v := queue[qi]
			qi++
			inQueue[v] = false
			mass := e[v]
			if mass <= eps {
				continue
			}
			e[v] = 0
			if isHub != nil && isHub[v] {
				blocked[v] += mass
				continue
			}
			d[v] += p.Alpha * mass
			ow := g.OutWeight(v)
			if ow == 0 {
				continue
			}
			share := mass * oneMinus / float64(ow)
			for _, w := range g.Out(v) {
				if w == sink {
					continue
				}
				e[w] += share
				if !inQueue[w] && e[w] > eps {
					inQueue[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	sc.putQueue(queue)
	sc.touched = touched[:0] // keep the (possibly grown) buffer
	return pushState{
		n: n, est: d, res: e, aux: blocked, stamp: stamp, epoch: epoch,
		touched: touched, spilled: spilled, pushes: pushes,
	}, nil
}

// pushSkeleton is the sparse-frontier variant of skeletonForHub: the
// same residual-driven reverse value iteration (Eq. 8) with identical
// arithmetic and pop order, reading the reverse CSR once so the inner
// loop never takes the In() mutex the dense kernel pays per pop.
func pushSkeleton(g *graph.Graph, h int32, p Params, sc *Scratch) (pushState, error) {
	if err := p.Validate(); err != nil {
		return pushState{}, err
	}
	n := g.NumNodes()
	if h < 0 || int(h) >= n || g.IsVirtual(h) {
		return pushState{}, fmt.Errorf("ppr: hub %d invalid", h)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	inOff, inAdj := g.InLists()
	est, res, _, inQueue, stamp, epoch := sc.stamped(n)
	touched := sc.ids()
	queue := sc.queueBuf()
	spillAt := spillLimit(p.Kernel, n)
	spilled := false
	sink := g.VirtualSink()
	oneMinus := 1 - p.Alpha
	eps := p.Eps
	pushes := 0
	limit := p.maxIter() * max(n, 1)

	stamp[h] = epoch
	est[h] = 0
	touched = append(touched, h)
	res[h] = p.Alpha
	queue = append(queue, h)
	inQueue[h] = true

	qi := 0
	for qi < len(queue) && pushes < limit && !spilled {
		pushes++
		u := queue[qi]
		qi++
		inQueue[u] = false
		rho := res[u]
		if rho <= eps {
			continue
		}
		res[u] = 0
		est[u] += rho
		// F(w) receives (1−α)·F(u)/OutWeight(w) for every edge w→u.
		for _, w := range inAdj[inOff[u]:inOff[u+1]] {
			ow := g.OutWeight(w)
			if ow == 0 || w == sink {
				continue
			}
			if stamp[w] != epoch {
				stamp[w] = epoch
				est[w], res[w] = 0, 0
				inQueue[w] = false
				if !spilled {
					touched = append(touched, w)
					if len(touched) >= spillAt {
						spilled = true
					}
				}
			}
			res[w] += oneMinus * rho / float64(ow)
			if !inQueue[w] && res[w] > eps {
				inQueue[w] = true
				queue = append(queue, w)
			}
		}
	}
	if spilled {
		spillInit(n, stamp, epoch, est, res, nil, inQueue)
		for qi < len(queue) && pushes < limit {
			pushes++
			u := queue[qi]
			qi++
			inQueue[u] = false
			rho := res[u]
			if rho <= eps {
				continue
			}
			res[u] = 0
			est[u] += rho
			for _, w := range inAdj[inOff[u]:inOff[u+1]] {
				ow := g.OutWeight(w)
				if ow == 0 || w == sink {
					continue
				}
				res[w] += oneMinus * rho / float64(ow)
				if !inQueue[w] && res[w] > eps {
					inQueue[w] = true
					queue = append(queue, w)
				}
			}
		}
		if sink >= 0 {
			est[sink] = 0 // bulk init made it visible to the dense drain
		}
	}
	sc.putQueue(queue)
	sc.touched = touched[:0]
	return pushState{
		n: n, est: est, res: res, stamp: stamp, epoch: epoch,
		touched: touched, spilled: spilled, pushes: pushes,
	}, nil
}

// spillInit bulk-initializes every slot the sparse phase did not touch,
// after which the dense loop body runs stamp-free.
func spillInit(n int, stamp []uint32, epoch uint32, a, b, c []float64, marks []bool) {
	for i := 0; i < n; i++ {
		if stamp[i] != epoch {
			stamp[i] = epoch
			a[i], b[i] = 0, 0
			if c != nil {
				c[i] = 0
			}
			marks[i] = false
		}
	}
}

// Push computes the full local PPV of u by forward push (no hub
// blocking) and returns it in packed form — the sparse-frontier
// analogue of PartialVector with a nil hub set. Results are
// bit-identical to the dense kernel at the same Params.
func Push(g *graph.Graph, u int32, p Params) (sparse.Packed, error) {
	p.Kernel = KernelPush
	st, err := pushPartial(g, u, nil, p, nil)
	if err != nil {
		return sparse.Packed{}, err
	}
	return st.drainPacked(), nil
}

// PushPartial computes the partial vector p_u^H by forward push,
// honoring hub blocking exactly as PartialVector does (Definition 1:
// the start position is exempt; later hub visits freeze the walk).
// The frozen mass is returned per hub in hubBlocked.
func PushPartial(g *graph.Graph, u int32, isHub []bool, p Params) (partial sparse.Packed, hubBlocked sparse.Vector, err error) {
	p.Kernel = KernelPush
	st, err := pushPartial(g, u, isHub, p, nil)
	if err != nil {
		return sparse.Packed{}, nil, err
	}
	return st.drainPacked(), st.drainVector(st.aux), nil
}

// PushSkeleton computes s_·(h) — the PPV value AT hub h for every
// source simultaneously (Eq. 8) — by memory-bounded reverse push,
// returning only the sources h's influence actually reaches, in packed
// form. Entry u is within Eps/α of s_u(h), exactly the SkeletonForHub
// guarantee; values are bit-identical to it.
func PushSkeleton(g *graph.Graph, h int32, p Params) (sparse.Packed, error) {
	p.Kernel = KernelPush
	st, err := pushSkeleton(g, h, p, nil)
	if err != nil {
		return sparse.Packed{}, err
	}
	return st.drainPacked(), nil
}
