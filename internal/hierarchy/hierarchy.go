// Package hierarchy builds the paper's recursive graph hierarchy (§4.2,
// Figures 6–7): the root is the whole graph; each non-leaf subgraph is
// split into `fanout` parts by the multilevel partitioner, the bridging
// nodes are selected as hub nodes (König minimum vertex cover of the cut
// for 2-way splits), and — crucially — once a node becomes a hub it is
// removed from every deeper level. Partitioning recurses until a subgraph
// has no internal edges, is too small, or the configured level cap is hit.
//
// The hierarchy also supports incremental maintenance under edge deltas:
// ApplyDelta maps a batch to the dirty tree nodes — exactly the
// root-to-home chains of the edge tails — and repairs the separator
// property by hub promotion instead of re-partitioning. See the Update
// type in update.go for the full dirty-set semantics.
package hierarchy

import (
	"fmt"
	"sort"

	"exactppr/internal/graph"
	"exactppr/internal/partition"
)

// Options tunes hierarchy construction.
type Options struct {
	// Fanout is the number of parts per split (paper default 2; §6.2.5
	// evaluates 4/8/16/64).
	Fanout int
	// MaxLevels caps the number of partitioning levels; 0 means partition
	// until no internal edges remain (the paper's default policy).
	MaxLevels int
	// MinSize stops splitting subgraphs with at most this many members
	// (0 defaults to max(24, 2·Fanout)). Splitting very small dense
	// subgraphs turns half their members into hubs for no space gain, so
	// the floor matters; §6.2.4's "further partitioning cannot reduce
	// space any more" observation is the same effect.
	MinSize int
	// Imbalance is passed through to the partitioner.
	Imbalance float64
	// Seed drives deterministic partitioning.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Fanout <= 0 {
		o.Fanout = 2
	}
	if o.MinSize <= 0 {
		o.MinSize = max(24, 2*o.Fanout)
	}
	return o
}

// Node is one subgraph in the hierarchy.
type Node struct {
	// ID is a dense identifier unique within the hierarchy (pre-order).
	ID int
	// Level is the depth: 0 for the root (the graph G itself).
	Level int
	// Members are the global ids belonging to this subgraph, INCLUDING
	// its own hub nodes but excluding every ancestor's hubs. Sorted.
	Members []int32
	// Hubs are the hub nodes selected when splitting this subgraph
	// (H(G_m^i) in the paper). Empty for leaves. Sorted.
	Hubs []int32
	// Sub is the virtual subgraph over Members w.r.t. the ROOT graph:
	// members keep their original out-degrees and edges leaving the
	// member set feed the absorbing sink (Definition 3).
	Sub      *graph.Subgraph
	Parent   *Node
	Children []*Node
}

// IsLeaf reports whether the node was not split further.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Hierarchy is the full tree plus per-node indexes.
type Hierarchy struct {
	G    *graph.Graph
	Root *Node
	Opts Options

	nodes    []*Node // all tree nodes in pre-order
	home     []*Node // per global node: the deepest tree node containing it
	hubLevel []int32 // per global node: level where it became a hub, or -1
}

// Build constructs the hierarchy for g.
func Build(g *graph.Graph, opts Options) (*Hierarchy, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("hierarchy: empty graph")
	}
	if g.HasVirtualSink() {
		return nil, fmt.Errorf("hierarchy: root graph must not have a virtual sink")
	}
	opts = opts.withDefaults()
	h := &Hierarchy{
		G:        g,
		Opts:     opts,
		home:     make([]*Node, g.NumNodes()),
		hubLevel: make([]int32, g.NumNodes()),
	}
	for i := range h.hubLevel {
		h.hubLevel[i] = -1
	}
	all := make([]int32, g.NumNodes())
	for i := range all {
		all[i] = int32(i)
	}
	var err error
	h.Root, err = h.build(all, 0, nil, opts.Seed)
	if err != nil {
		return nil, err
	}
	return h, nil
}

func (h *Hierarchy) build(members []int32, level int, parent *Node, seed int64) (*Node, error) {
	n := &Node{
		ID:      len(h.nodes),
		Level:   level,
		Members: members,
		Parent:  parent,
		Sub:     graph.VirtualSubgraph(h.G, members),
	}
	h.nodes = append(h.nodes, n)
	for _, m := range members {
		h.home[m] = n
	}

	if !h.shouldSplit(n) {
		return n, nil
	}

	induced := graph.InducedSubgraph(h.G, members)
	parts, err := partition.Partition(induced.G, h.Opts.Fanout, partition.Options{
		Imbalance: h.Opts.Imbalance,
		Seed:      seed,
	})
	if err != nil {
		return nil, fmt.Errorf("hierarchy: level %d: %w", level, err)
	}
	hubLocal := partition.HubNodes(induced.G, parts, h.Opts.Fanout)
	for l := range hubLocal {
		gid := induced.Parent(l)
		n.Hubs = append(n.Hubs, gid)
		h.hubLevel[gid] = int32(level)
		h.home[gid] = n
	}
	sort.Slice(n.Hubs, func(i, j int) bool { return n.Hubs[i] < n.Hubs[j] })

	childMembers := make([][]int32, h.Opts.Fanout)
	for l, p := range parts {
		if hubLocal[int32(l)] {
			continue
		}
		childMembers[p] = append(childMembers[p], induced.Parent(int32(l)))
	}
	for i, cm := range childMembers {
		if len(cm) == 0 {
			continue
		}
		child, err := h.build(cm, level+1, n, seed*31+int64(i)+1)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, child)
	}
	return n, nil
}

// shouldSplit applies the stopping rules: level cap, size floor, and the
// paper's "no internal edges" criterion.
func (h *Hierarchy) shouldSplit(n *Node) bool {
	if h.Opts.MaxLevels > 0 && n.Level >= h.Opts.MaxLevels {
		return false
	}
	if len(n.Members) <= h.Opts.MinSize {
		return false
	}
	induced := graph.InducedSubgraph(h.G, n.Members)
	return induced.G.NumEdges() > 0
}

// Nodes returns every tree node in pre-order.
func (h *Hierarchy) Nodes() []*Node { return h.nodes }

// Leaves returns the leaf subgraphs.
func (h *Hierarchy) Leaves() []*Node {
	var out []*Node
	for _, n := range h.nodes {
		if n.IsLeaf() {
			out = append(out, n)
		}
	}
	return out
}

// Home returns the deepest tree node containing u: the leaf subgraph for
// a non-hub node, the subgraph where it was selected for a hub.
func (h *Hierarchy) Home(u int32) *Node { return h.home[u] }

// IsHub reports whether u was selected as a hub at any level.
func (h *Hierarchy) IsHub(u int32) bool { return h.hubLevel[u] >= 0 }

// HubLevel returns the level at which u became a hub, or -1.
func (h *Hierarchy) HubLevel(u int32) int { return int(h.hubLevel[u]) }

// Path returns the chain of tree nodes containing u, from the root down
// to Home(u).
func (h *Hierarchy) Path(u int32) []*Node {
	var rev []*Node
	for n := h.home[u]; n != nil; n = n.Parent {
		rev = append(rev, n)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Depth returns the number of levels (leaf level index + 1... the maximum
// Level among nodes plus one).
func (h *Hierarchy) Depth() int {
	d := 0
	for _, n := range h.nodes {
		if n.Level+1 > d {
			d = n.Level + 1
		}
	}
	return d
}

// HubsPerLevel aggregates hub counts by level — the numbers of
// Tables 2–5 in the paper.
func (h *Hierarchy) HubsPerLevel() []int {
	counts := make([]int, h.Depth())
	for _, n := range h.nodes {
		if len(n.Hubs) > 0 {
			counts[n.Level] += len(n.Hubs)
		}
	}
	// Trim trailing zero levels (leaves have no hubs).
	for len(counts) > 0 && counts[len(counts)-1] == 0 {
		counts = counts[:len(counts)-1]
	}
	return counts
}

// TotalHubs returns the number of hub nodes across all levels.
func (h *Hierarchy) TotalHubs() int {
	t := 0
	for _, c := range h.HubsPerLevel() {
		t += c
	}
	return t
}

// Validate checks the structural invariants of the hierarchy and returns
// the first violation:
//
//  1. every node's children partition Members∖Hubs;
//  2. hub sets separate the child member sets within the node's induced
//     subgraph (the exactness precondition of Theorems 1–3);
//  3. Home/HubLevel indexes agree with the tree.
func (h *Hierarchy) Validate() error {
	for _, n := range h.nodes {
		memberSet := make(map[int32]bool, len(n.Members))
		for _, m := range n.Members {
			memberSet[m] = true
		}
		hubSet := make(map[int32]bool, len(n.Hubs))
		for _, hb := range n.Hubs {
			if !memberSet[hb] {
				return fmt.Errorf("hierarchy: node %d: hub %d not a member", n.ID, hb)
			}
			hubSet[hb] = true
		}
		if n.IsLeaf() {
			if len(n.Hubs) > 0 && countNonHub(n, hubSet) > 0 {
				return fmt.Errorf("hierarchy: leaf %d has hubs and members", n.ID)
			}
			continue
		}
		seen := make(map[int32]bool)
		for _, c := range n.Children {
			for _, m := range c.Members {
				if !memberSet[m] || hubSet[m] {
					return fmt.Errorf("hierarchy: node %d: child member %d invalid", n.ID, m)
				}
				if seen[m] {
					return fmt.Errorf("hierarchy: node %d: member %d in two children", n.ID, m)
				}
				seen[m] = true
			}
		}
		if len(seen)+len(n.Hubs) != len(n.Members) {
			return fmt.Errorf("hierarchy: node %d: children+hubs ≠ members (%d+%d ≠ %d)",
				n.ID, len(seen), len(n.Hubs), len(n.Members))
		}
		// Separator property on the induced subgraph.
		induced := graph.InducedSubgraph(h.G, n.Members)
		parts := make([]int32, induced.G.NumNodes())
		blockedHubs := make(map[int32]bool)
		for l := int32(0); l < int32(induced.G.NumNodes()); l++ {
			gid := induced.Parent(l)
			if hubSet[gid] {
				blockedHubs[l] = true
				continue
			}
			ci := childIndexOf(n, gid)
			if ci < 0 {
				return fmt.Errorf("hierarchy: node %d: member %d in no child", n.ID, gid)
			}
			parts[l] = int32(ci)
		}
		if !graph.IsSeparator(induced.G, blockedHubs, parts) {
			return fmt.Errorf("hierarchy: node %d: hubs do not separate children", n.ID)
		}
	}
	// Index agreement.
	for u := int32(0); u < int32(h.G.NumNodes()); u++ {
		home := h.home[u]
		if home == nil {
			return fmt.Errorf("hierarchy: node %d has no home", u)
		}
		if h.IsHub(u) {
			if lv := h.HubLevel(u); lv != home.Level {
				return fmt.Errorf("hierarchy: hub %d level %d but home level %d", u, lv, home.Level)
			}
		} else if !home.IsLeaf() {
			return fmt.Errorf("hierarchy: non-hub %d homed at internal node %d", u, home.ID)
		}
	}
	return nil
}

func countNonHub(n *Node, hubSet map[int32]bool) int {
	c := 0
	for _, m := range n.Members {
		if !hubSet[m] {
			c++
		}
	}
	return c
}

func childIndexOf(n *Node, gid int32) int {
	for i, c := range n.Children {
		for _, m := range c.Members {
			if m == gid {
				return i
			}
		}
	}
	return -1
}
