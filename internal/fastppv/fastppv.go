// Package fastppv implements the paper's approximate comparator, FastPPV
// (Zhu et al., PVLDB 2013 [49]): scheduled approximation over hub-based
// tour decomposition. Tours are partitioned by the hub nodes they pass;
// the query-time scheduler expands the most important tour sets first and
// discards the unimportant tail, trading accuracy for speed.
//
// The implementation uses the renewal identity the scheduler exploits:
//
//	r_u = p_u + Σ_h blocked_u(h) · r_h
//
// where p_u is the hub-free partial vector of u and blocked_u(h) the walk
// mass frozen at hub h (both produced by ppr.PartialVector). Offline we
// pre-compute (p_h, blocked_h) for every hub; online we start from the
// query's own (p_u, blocked_u) and repeatedly expand the hub with the
// largest pending mass, adding mass·p_h to the answer and mass·blocked_h
// back onto the queue. Stopping after a budget of expansions discards the
// remaining mass — exactly the scheduled-approximation trade-off. The
// number of hubs plays the role of FastPPV's hub-length parameter
// (Fast-100, Fast-1000, ... in §6.2.9).
package fastppv

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"

	"exactppr/internal/graph"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

// Index is the offline FastPPV structure.
type Index struct {
	G      *graph.Graph
	Params ppr.Params
	Hubs   []int32

	// Prime[h] = p_h: the hub-free PPV contribution of hub h, packed at
	// build time — the scheduler only ever folds it.
	Prime map[int32]sparse.Packed
	// Blocked[h](h') = walk mass from h frozen at hub h'. Kept as a map:
	// the scheduler drains it entry-wise into its priority queue.
	Blocked map[int32]sparse.Vector

	isHub []bool
}

// BuildIndex pre-computes the FastPPV structures with the hubCount
// top-PageRank nodes as hubs.
func BuildIndex(g *graph.Graph, hubCount int, params ppr.Params, workers int) (*Index, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if hubCount < 1 || hubCount > g.NumNodes() {
		return nil, fmt.Errorf("fastppv: hubCount %d out of range [1,%d]", hubCount, g.NumNodes())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	hubs, err := ppr.TopPageRank(g, hubCount, params)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		G:       g,
		Params:  params,
		Hubs:    hubs,
		Prime:   make(map[int32]sparse.Packed, hubCount),
		Blocked: make(map[int32]sparse.Vector, hubCount),
		isHub:   make([]bool, g.NumNodes()),
	}
	for _, h := range hubs {
		ix.isHub[h] = true
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
		ch       = make(chan int32)
	)
	worker := func() {
		defer wg.Done()
		for h := range ch {
			prime, blocked, err := ppr.PartialVectorPacked(g, h, ix.isHub, ix.Params)
			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				ix.Prime[h] = prime
				ix.Blocked[h] = blocked
			}
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker()
	}
	for _, h := range hubs {
		ch <- h
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return ix, nil
}

// pending is the scheduler's max-heap of (hub, mass) work items.
type pending struct {
	hubs []int32
	mass map[int32]float64
}

func (p *pending) Len() int { return len(p.hubs) }
func (p *pending) Less(i, j int) bool {
	mi, mj := p.mass[p.hubs[i]], p.mass[p.hubs[j]]
	if mi != mj {
		return mi > mj // max-heap on mass
	}
	return p.hubs[i] < p.hubs[j]
}
func (p *pending) Swap(i, j int)      { p.hubs[i], p.hubs[j] = p.hubs[j], p.hubs[i] }
func (p *pending) Push(x interface{}) { p.hubs = append(p.hubs, x.(int32)) }
func (p *pending) Pop() interface{} {
	x := p.hubs[len(p.hubs)-1]
	p.hubs = p.hubs[:len(p.hubs)-1]
	return x
}

// QueryStats reports one approximate query.
type QueryStats struct {
	Result sparse.Vector
	// Expansions is the number of hub expansions the scheduler performed.
	Expansions int
	// DiscardedMass is the total walk mass left unexpanded — an upper
	// bound on the L1 error of the result.
	DiscardedMass float64
}

// Query approximates the PPV of u with at most budget hub expansions
// (budget ≤ 0 means unlimited: expand until the pending mass drops below
// the tolerance, which recovers near-exact results).
func (ix *Index) Query(u int32, budget int) (*QueryStats, error) {
	if u < 0 || int(u) >= ix.G.NumNodes() {
		return nil, fmt.Errorf("fastppv: query %d out of range", u)
	}
	pu, blockedU, err := ppr.PartialVectorPacked(ix.G, u, ix.isHub, ix.Params)
	if err != nil {
		return nil, err
	}
	acc := sparse.AcquireAccumulator(ix.G.NumNodes())
	defer acc.Release()
	acc.AddPacked(pu, 1)
	pq := &pending{mass: make(map[int32]float64)}
	for h, m := range blockedU {
		pq.mass[h] = m
		pq.hubs = append(pq.hubs, h)
	}
	heap.Init(pq)
	stats := &QueryStats{}
	// Below this mass an expansion cannot move any entry by more than
	// the tolerance; treat it as converged.
	floor := ix.Params.Eps

	for pq.Len() > 0 {
		if budget > 0 && stats.Expansions >= budget {
			break
		}
		h := heap.Pop(pq).(int32)
		m := pq.mass[h]
		delete(pq.mass, h)
		if m <= floor {
			// The heap is mass-ordered: everything left is below the
			// floor too. Count it all as discarded and stop.
			stats.DiscardedMass += m
			break
		}
		stats.Expansions++
		acc.AddPacked(ix.Prime[h], m)
		for h2, bm := range ix.Blocked[h] {
			add := m * bm
			if _, ok := pq.mass[h2]; ok {
				pq.mass[h2] += add
				heap.Init(pq) // mass changed: restore heap order
			} else {
				pq.mass[h2] = add
				heap.Push(pq, h2)
			}
		}
	}
	for _, m := range pq.mass {
		stats.DiscardedMass += m
	}
	stats.Result = acc.Vector()
	return stats, nil
}

// SpaceBytes reports the encoded size of the index.
func (ix *Index) SpaceBytes() int64 {
	var total int64
	for _, v := range ix.Prime {
		total += int64(sparse.EncodedSizePacked(v))
	}
	for _, v := range ix.Blocked {
		total += int64(sparse.EncodedSize(v))
	}
	return total
}
