package core

import (
	"fmt"
	"sync"
	"testing"

	"exactppr/internal/sparse"
)

func cacheVal(x float64) cval {
	p, _ := sparse.PackedView([]int32{0}, []float64{x})
	return cval{vec: p}
}

func mustLoad(t *testing.T, c *vecCache, st *diskCounters, k cacheKey, x float64) {
	t.Helper()
	if _, err := c.getOrLoad(k, st, func() (cval, error) { return cacheVal(x), nil }); err != nil {
		t.Fatal(err)
	}
}

// TestClockCacheBounds: the cache never holds more entries than its
// capacity, whatever the insert pattern.
func TestClockCacheBounds(t *testing.T) {
	var st diskCounters
	c := newVecCache(1, 4)
	for i := int32(0); i < 50; i++ {
		mustLoad(t, c, &st, cacheKey{secHubPartial, i}, float64(i))
		if c.len() > 4 {
			t.Fatalf("cache holds %d entries, cap 4", c.len())
		}
	}
	if st.evictions.Load() == 0 {
		t.Fatal("no evictions recorded")
	}
}

// TestClockCacheSecondChance: a key that keeps getting referenced
// survives a scan of one-shot keys — the property random eviction lacks
// and the reason path hubs stay resident under leaf-vector churn.
func TestClockCacheSecondChance(t *testing.T) {
	var st diskCounters
	c := newVecCache(1, 4)
	hot := cacheKey{secHubPartial, 1000}
	mustLoad(t, c, &st, hot, 1)
	for i := int32(0); i < 40; i++ {
		mustLoad(t, c, &st, cacheKey{secLeafPPV, i}, float64(i)) // churn
		mustLoad(t, c, &st, hot, 1)                              // re-reference
	}
	before := st.reads.Load()
	mustLoad(t, c, &st, hot, 1)
	if st.reads.Load() != before {
		t.Fatal("hot key was evicted despite constant references")
	}
}

// TestClockCacheShrink: SetCacheCap-style shrinking evicts down to the
// new bound through the CLOCK policy.
func TestClockCacheShrink(t *testing.T) {
	var st diskCounters
	c := newVecCache(1, 32)
	for i := int32(0); i < 32; i++ {
		mustLoad(t, c, &st, cacheKey{secSkeleton, i}, float64(i))
	}
	c.setCap(5, &st)
	if c.len() > 5 {
		t.Fatalf("cache holds %d entries after shrink to 5", c.len())
	}
	// Still functional after the shrink.
	mustLoad(t, c, &st, cacheKey{secSkeleton, 99}, 99)
	if c.len() > 5 {
		t.Fatalf("cache holds %d entries after shrink to 5", c.len())
	}
}

// TestCacheCoalescesConcurrentMisses: a storm of concurrent misses on
// one key runs the loader exactly once — everyone else waits for its
// result (the singleflight miss-storm fix).
func TestCacheCoalescesConcurrentMisses(t *testing.T) {
	var st diskCounters
	c := newVecCache(1, 16)
	k := cacheKey{secHubPartial, 7}
	gate := make(chan struct{})
	var loads sync.WaitGroup
	var wg sync.WaitGroup
	loads.Add(1)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.getOrLoad(k, &st, func() (cval, error) {
				loads.Done() // first (and only) loader reached the read
				<-gate       // hold the flight open so others must coalesce
				return cacheVal(42), nil
			})
			if err != nil {
				t.Error(err)
			}
			if v.vec.Get(0) != 42 {
				t.Errorf("coalesced value %v", v.vec.Get(0))
			}
		}()
	}
	loads.Wait() // exactly one goroutine is inside the loader...
	close(gate)  // ...release it; everyone resolves from its flight
	wg.Wait()
	if r := st.reads.Load(); r != 1 {
		t.Fatalf("%d reads for 16 concurrent misses on one key, want 1", r)
	}
	if st.hits.Load()+st.coalesced.Load() != 15 {
		t.Fatalf("hits %d + coalesced %d, want 15 total", st.hits.Load(), st.coalesced.Load())
	}
}

// TestCacheLoadErrorsNotCached: a failed load reports its error to the
// storm that coalesced on it, but the next caller retries.
func TestCacheLoadErrorsNotCached(t *testing.T) {
	var st diskCounters
	c := newVecCache(1, 8)
	k := cacheKey{secLeafPPV, 3}
	boom := fmt.Errorf("transient")
	if _, err := c.getOrLoad(k, &st, func() (cval, error) { return cval{}, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := c.getOrLoad(k, &st, func() (cval, error) { return cacheVal(1), nil }); err != nil {
		t.Fatalf("retry after error failed: %v", err)
	}
	if st.reads.Load() != 2 {
		t.Fatalf("reads = %d, want 2 (error must not be cached)", st.reads.Load())
	}
}
