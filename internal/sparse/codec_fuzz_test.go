package sparse

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzCodecRoundTrip drives arbitrary byte strings through both
// decoders and checks the codec invariants end to end:
//
//   - Decode and DecodePacked accept and reject exactly the same
//     payloads (modulo duplicate ids, which only the packed decoder can
//     detect — the map decoder silently last-write-wins).
//   - Whatever decodes must re-encode canonically: Encode(Decode(b))
//     and EncodePacked(DecodePacked(b)) agree byte for byte, and
//     re-decoding the canonical bytes is a fixed point.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(Vector{}))
	f.Add(Encode(Vector{1: 0.5}))
	f.Add(Encode(Vector{3: 1, 1: 2, 2: -3, 1 << 20: 1e-9}))
	// zero-score entry on the wire (must be dropped by both decoders)
	zero := make([]byte, 16)
	binary.LittleEndian.PutUint32(zero, 1)
	binary.LittleEndian.PutUint32(zero[4:], 42)
	f.Add(zero)
	// unsorted legacy payload
	f.Add(encodeInMapOrder(Vector{9: 9, 2: 2, 5: 5}))
	// duplicate ids
	f.Add(EncodePacked(Packed{ids: []int32{7, 7}, scores: []float64{1, 2}}))
	// truncated frame
	f.Add(Encode(Vector{1: 1})[:10])

	f.Fuzz(func(t *testing.T, data []byte) {
		v, verr := Decode(data)
		p, perr := DecodePacked(data)
		if verr != nil {
			if perr == nil {
				t.Fatalf("Decode rejected (%v) but DecodePacked accepted", verr)
			}
			return
		}
		hasDup := perr != nil // only legal divergence: duplicate ids
		if hasDup {
			if len(v) == countWireEntries(data) {
				t.Fatalf("DecodePacked rejected (%v) but payload has no duplicates", perr)
			}
			return
		}

		// The two decoders agree on the value (bitwise: NaN payloads
		// must round-trip too, so == on floats is not enough).
		pv := p.Unpack()
		if len(pv) != len(v) {
			t.Fatalf("decoders disagree: map %v vs packed %v", v, pv)
		}
		for id, x := range v {
			if math.Float64bits(pv[id]) != math.Float64bits(x) {
				t.Fatalf("decoders disagree at %d: %v vs %v", id, x, pv[id])
			}
		}
		for _, x := range v {
			if x == 0 {
				t.Fatal("decoder kept an explicit zero")
			}
		}

		// Canonical re-encode: both representations produce identical
		// bytes, stable across repeats, and a decode/encode fixed point.
		cv := Encode(v)
		cp := EncodePacked(p)
		if !bytes.Equal(cv, cp) {
			t.Fatalf("canonical encodings differ: % x vs % x", cv, cp)
		}
		if !bytes.Equal(Encode(v), cv) {
			t.Fatal("Encode nondeterministic")
		}
		p2, err := DecodePacked(cp)
		if err != nil {
			t.Fatalf("canonical bytes failed to decode: %v", err)
		}
		if !bytes.Equal(EncodePacked(p2), cp) {
			t.Fatal("canonical encoding is not a fixed point")
		}
		if len(cv) > len(data) {
			t.Fatalf("canonical encoding grew: %d > %d bytes", len(cv), len(data))
		}
	})
}

// countWireEntries returns the number of non-zero-score entries a valid
// frame carries, counting duplicates separately.
func countWireEntries(buf []byte) int {
	n := int(binary.LittleEndian.Uint32(buf))
	c := 0
	for k := 0; k < n; k++ {
		if math.Float64frombits(binary.LittleEndian.Uint64(buf[4+12*k+4:])) != 0 {
			c++
		}
	}
	return c
}
