package partition

import (
	"math/rand"
)

// The multilevel bisection pipeline: coarsen → initial bisection → refine
// while un-coarsening. All stages are deterministic given the Options seed.

const (
	coarsestSize   = 48   // stop coarsening below this many vertices
	minCoarsenGain = 0.97 // stop when a level shrinks less than 3%
	initialTries   = 8    // random restarts for the initial bisection
	refinePasses   = 6    // FM passes per level
)

// coarseLevel links one coarsening level to the next-finer one.
type coarseLevel struct {
	g    *ugraph
	map_ []int32 // fine vertex → coarse vertex (on the finer graph)
}

// coarsen builds the hierarchy of successively smaller graphs using
// heavy-edge matching. Returns the levels from finest to coarsest; the
// first entry has map_ == nil.
func coarsen(g *ugraph, rng *rand.Rand) []coarseLevel {
	levels := []coarseLevel{{g: g}}
	cur := g
	for cur.numNodes() > coarsestSize {
		match := heavyEdgeMatch(cur, rng)
		next, cmap := contract(cur, match)
		if float64(next.numNodes()) > minCoarsenGain*float64(cur.numNodes()) {
			break // diminishing returns (e.g. star graphs)
		}
		levels = append(levels, coarseLevel{g: next, map_: cmap})
		cur = next
	}
	return levels
}

// heavyEdgeMatch matches each unmatched vertex with its unmatched neighbor
// of maximum edge weight (ties to smaller id). Returns match[v] = partner
// or v itself when unmatched.
func heavyEdgeMatch(g *ugraph, rng *rand.Rand) []int32 {
	n := g.numNodes()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		best := int32(-1)
		bestW := int32(-1)
		nbrs, wts := g.neighbors(v)
		for i, nb := range nbrs {
			if nb == v || match[nb] >= 0 {
				continue
			}
			if wts[i] > bestW || (wts[i] == bestW && nb < best) {
				best, bestW = nb, wts[i]
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}
	return match
}

// contract builds the coarse graph for a matching. cmap maps fine → coarse.
func contract(g *ugraph, match []int32) (*ugraph, []int32) {
	n := g.numNodes()
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	var cn int32
	for v := int32(0); v < int32(n); v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = cn
		if m := match[v]; m != v && m >= 0 {
			cmap[m] = cn
		}
		cn++
	}
	vwgt := make([]int32, cn)
	for v := int32(0); v < int32(n); v++ {
		vwgt[cmap[v]] += g.vwgt[v]
	}
	// Each coarse vertex merges at most two fine vertices; record them.
	members := make([][2]int32, cn)
	for i := range members {
		members[i] = [2]int32{-1, -1}
	}
	for v := int32(0); v < int32(n); v++ {
		c := cmap[v]
		if members[c][0] < 0 {
			members[c][0] = v
		} else {
			members[c][1] = v
		}
	}
	// Accumulate coarse edges with an epoch-stamped scatter buffer so
	// parallel fine edges merge into one weighted coarse edge.
	xadj := make([]int32, cn+1)
	var adjncy, adjwgt []int32
	seen := make([]int32, cn) // position of cb within the current row
	stamp := make([]int32, cn)
	var epoch int32
	for c := int32(0); c < cn; c++ {
		epoch++
		rowStart := len(adjncy)
		for _, v := range members[c] {
			if v < 0 {
				continue
			}
			nbrs, wts := g.neighbors(v)
			for i, nb := range nbrs {
				cb := cmap[nb]
				if cb == c {
					continue
				}
				if stamp[cb] == epoch {
					adjwgt[rowStart+int(seen[cb])] += wts[i]
				} else {
					stamp[cb] = epoch
					seen[cb] = int32(len(adjncy) - rowStart)
					adjncy = append(adjncy, cb)
					adjwgt = append(adjwgt, wts[i])
				}
			}
		}
		xadj[c+1] = int32(len(adjncy))
	}
	cg := &ugraph{xadj: xadj, adjncy: adjncy, adjwgt: adjwgt, vwgt: vwgt}
	cg.sortAdj()
	return cg, cmap
}

// initialBisection grows a region from random seeds until it holds
// targetW weight, several times, keeping the smallest cut that respects
// the balance bound.
func initialBisection(g *ugraph, targetW int64, maxW int64, rng *rand.Rand) []int8 {
	n := g.numNodes()
	var best []int8
	bestCut := int64(1) << 62
	for try := 0; try < initialTries; try++ {
		side := make([]int8, n)
		for i := range side {
			side[i] = 1
		}
		var w int64
		start := int32(rng.Intn(n))
		queue := []int32{start}
		inQ := make([]bool, n)
		inQ[start] = true
		for len(queue) > 0 && w < targetW {
			v := queue[0]
			queue = queue[1:]
			if side[v] == 0 {
				continue
			}
			if w+int64(g.vwgt[v]) > maxW {
				continue
			}
			side[v] = 0
			w += int64(g.vwgt[v])
			nbrs, _ := g.neighbors(v)
			for _, nb := range nbrs {
				if !inQ[nb] && side[nb] == 1 {
					inQ[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		// If BFS exhausted a small component, top up with arbitrary nodes.
		for v := int32(0); v < int32(n) && w < targetW; v++ {
			if side[v] == 1 && w+int64(g.vwgt[v]) <= maxW {
				side[v] = 0
				w += int64(g.vwgt[v])
			}
		}
		if cut := g.cutWeight(side); cut < bestCut {
			bestCut = cut
			best = side
		}
	}
	return best
}

// fmRefine runs boundary Fiduccia–Mattheyses passes: repeatedly move the
// highest-gain vertex whose move keeps both sides within [minW, maxW],
// allowing negative-gain moves within a pass and rolling back to the best
// prefix (hill climbing out of local minima).
func fmRefine(g *ugraph, side []int8, minW, maxW int64) {
	n := g.numNodes()
	w := [2]int64{}
	for v := 0; v < n; v++ {
		w[side[v]] += int64(g.vwgt[v])
	}
	gain := make([]int64, n)
	computeGain := func(v int32) int64 {
		var ext, int_ int64
		nbrs, wts := g.neighbors(v)
		for i, nb := range nbrs {
			if side[nb] == side[v] {
				int_ += int64(wts[i])
			} else {
				ext += int64(wts[i])
			}
		}
		return ext - int_
	}
	for pass := 0; pass < refinePasses; pass++ {
		for v := int32(0); v < int32(n); v++ {
			gain[v] = computeGain(v)
		}
		locked := make([]bool, n)
		type move struct {
			v    int32
			gain int64
		}
		var moves []move
		var cum, bestCum int64
		bestIdx := -1
		// Bounded number of moves per pass keeps worst case near-linear.
		for step := 0; step < n; step++ {
			bestV := int32(-1)
			var bestG int64 = -(1 << 62)
			for v := int32(0); v < int32(n); v++ {
				if locked[v] || gain[v] <= -(1<<40) {
					continue
				}
				from := side[v]
				to := 1 - from
				if w[to]+int64(g.vwgt[v]) > maxW || w[from]-int64(g.vwgt[v]) < minW {
					continue
				}
				if gain[v] > bestG || (gain[v] == bestG && v < bestV) {
					bestV, bestG = v, gain[v]
				}
			}
			if bestV < 0 {
				break
			}
			// Apply the move.
			from := side[bestV]
			to := int8(1 - from)
			side[bestV] = to
			w[from] -= int64(g.vwgt[bestV])
			w[to] += int64(g.vwgt[bestV])
			locked[bestV] = true
			cum += bestG
			moves = append(moves, move{bestV, bestG})
			if cum > bestCum {
				bestCum = cum
				bestIdx = len(moves) - 1
			}
			// Update neighbor gains.
			nbrs, wts := g.neighbors(bestV)
			for i, nb := range nbrs {
				if locked[nb] {
					continue
				}
				if side[nb] == to {
					gain[nb] -= 2 * int64(wts[i])
				} else {
					gain[nb] += 2 * int64(wts[i])
				}
			}
			if len(moves) > 2*n/3+16 {
				break
			}
		}
		// Roll back moves after the best prefix.
		for i := len(moves) - 1; i > bestIdx; i-- {
			v := moves[i].v
			from := side[v]
			to := int8(1 - from)
			side[v] = to
			w[from] -= int64(g.vwgt[v])
			w[to] += int64(g.vwgt[v])
		}
		if bestCum <= 0 && bestIdx < 0 {
			break // no improvement found this pass
		}
	}
}

// bisect computes a 2-way partition of g with part 0 targeting frac of the
// total weight, tolerating imbalance imb (e.g. 0.05 = 5%).
func bisect(g *ugraph, frac float64, imb float64, rng *rand.Rand) []int8 {
	total := g.totalWeight()
	target := int64(frac * float64(total))
	levels := coarsen(g, rng)
	coarsest := levels[len(levels)-1].g
	maxW0 := int64(float64(target) * (1 + imb))
	minW0 := int64(float64(target) * (1 - imb))
	if maxW0 >= total {
		maxW0 = total - 1
	}
	if minW0 < 1 {
		minW0 = 1
	}
	side := initialBisection(coarsest, target, maxW0, rng)
	fmRefine(coarsest, side, minW0, maxW0)
	// Project back through the levels, refining at each.
	for li := len(levels) - 1; li >= 1; li-- {
		fine := levels[li-1].g
		cmap := levels[li].map_
		fineSide := make([]int8, fine.numNodes())
		for v := range fineSide {
			fineSide[v] = side[cmap[v]]
		}
		side = fineSide
		fmRefine(fine, side, minW0, maxW0)
	}
	return side
}
