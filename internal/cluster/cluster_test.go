package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"exactppr/internal/core"
	"exactppr/internal/gen"
	"exactppr/internal/hierarchy"
	"exactppr/internal/ppr"
	"exactppr/internal/sparse"
)

func buildStore() (*core.Store, error) {
	g, err := gen.Community(gen.Config{
		Nodes: 300, AvgOutDegree: 4, Communities: 3,
		InterFrac: 0.05, MinOutDegree: 1, Seed: 2,
	})
	if err != nil {
		return nil, err
	}
	return core.BuildHGPA(g, hierarchy.Options{Seed: 1}, ppr.Params{Alpha: 0.15, Eps: 1e-7}, 2)
}

func testStore(t *testing.T) *core.Store {
	t.Helper()
	s, err := buildStore()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLocalClusterMatchesCentralQuery(t *testing.T) {
	s := testStore(t)
	for _, n := range []int{1, 3, 6} {
		c, err := NewLocalCluster(s, n)
		if err != nil {
			t.Fatal(err)
		}
		if c.NumMachines() != n {
			t.Fatalf("NumMachines = %d", c.NumMachines())
		}
		for _, u := range []int32{0, 150, 299} {
			stats, err := c.Query(u)
			if err != nil {
				t.Fatal(err)
			}
			want, err := s.Query(u)
			if err != nil {
				t.Fatal(err)
			}
			if d := sparse.LInfDistance(stats.Result.Unpack(), want); d > 1e-12 {
				t.Fatalf("n=%d u=%d: distributed ≠ central, L∞ = %v", n, u, d)
			}
		}
	}
}

func TestQueryStatsAccounting(t *testing.T) {
	s := testStore(t)
	c, err := NewLocalCluster(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.Query(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.MachineTime) != 4 {
		t.Fatalf("MachineTime count = %d", len(stats.MachineTime))
	}
	if stats.MaxMachineTime() <= 0 || stats.Wall <= 0 {
		t.Fatalf("times not recorded: %+v", stats)
	}
	// Bytes = Σ encoded share sizes; every machine sends ≥ the 4-byte
	// empty-vector header, so at least 16 bytes total.
	if stats.BytesReceived < 16 {
		t.Fatalf("BytesReceived = %d", stats.BytesReceived)
	}
	// One round: bytes must equal the sum of each shard's encoded share.
	shards, _ := core.Split(s, 4)
	var want int64
	for _, sh := range shards {
		v, err := sh.QueryVector(10)
		if err != nil {
			t.Fatal(err)
		}
		want += int64(sparse.EncodedSize(v))
	}
	if stats.BytesReceived != want {
		t.Fatalf("BytesReceived = %d, want %d", stats.BytesReceived, want)
	}
}

func TestCoordinatorErrors(t *testing.T) {
	if _, err := NewCoordinator(); err == nil {
		t.Fatal("empty coordinator should fail")
	}
	s := testStore(t)
	c, _ := NewLocalCluster(s, 2)
	if _, err := c.Query(-1); err == nil {
		t.Fatal("bad query should propagate machine error")
	}
}

// TestTCPCluster runs real workers over loopback TCP and verifies the
// distributed result and the one-round protocol end to end.
func TestTCPCluster(t *testing.T) {
	s := testStore(t)
	shards, err := core.Split(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	var machines []Machine
	var cleanup []func()
	for _, sh := range shards {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go Serve(l, &ShardMachine{Shard: sh})
		m, err := DialMachine(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		machines = append(machines, m)
		cleanup = append(cleanup, func() { m.Close(); l.Close() })
	}
	defer func() {
		for _, f := range cleanup {
			f()
		}
	}()
	c, err := NewCoordinator(machines...)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int32{5, 123, 299} {
		stats, err := c.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.LInfDistance(stats.Result.Unpack(), want); d > 1e-12 {
			t.Fatalf("u=%d: TCP result L∞ = %v", u, d)
		}
		if stats.BytesReceived <= 0 {
			t.Fatal("no bytes accounted over TCP")
		}
	}
	// Repeated queries over the same connections (stream protocol).
	for i := 0; i < 5; i++ {
		if _, err := c.Query(int32(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPWorkerError(t *testing.T) {
	s := testStore(t)
	shards, _ := core.Split(s, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, &ShardMachine{Shard: shards[0]})
	m, err := DialMachine(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, _, err := m.QueryShare(context.Background(), -42); err == nil {
		t.Fatal("out-of-range query should return a worker error")
	}
	// The connection must survive the error (opError keeps streaming).
	if _, _, err := m.QueryShare(context.Background(), 1); err != nil {
		t.Fatalf("connection should survive a worker error: %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		writeFrame(server, opShare, 42, []byte("hello"))
	}()
	op, id, payload, err := readFrame(client)
	if err != nil {
		t.Fatal(err)
	}
	if op != opShare || id != 42 || string(payload) != "hello" {
		t.Fatalf("frame = %d id=%d %q", op, id, payload)
	}
}

func TestTCPMachineConcurrentSafe(t *testing.T) {
	s := testStore(t)
	shards, _ := core.Split(s, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, &ShardMachine{Shard: shards[0]})
	m, err := DialMachine(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(u int32) {
			_, _, err := m.QueryShare(context.Background(), u)
			done <- err
		}(int32(i))
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < 8; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("concurrent queries deadlocked")
		}
	}
}

func TestQuerySetDistributed(t *testing.T) {
	s := testStore(t)
	pref := core.Preference{Nodes: []int32{5, 50, 150}, Weights: []float64{1, 2, 1}}
	want, err := s.QuerySet(pref)
	if err != nil {
		t.Fatal(err)
	}
	// In-process machines.
	c, err := NewLocalCluster(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.QuerySet(pref)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.LInfDistance(stats.Result.Unpack(), want); d > 1e-12 {
		t.Fatalf("local QuerySet L∞ = %v", d)
	}
	// Over TCP.
	shards, _ := core.Split(s, 2)
	var machines []Machine
	for _, sh := range shards {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go Serve(l, &ShardMachine{Shard: sh})
		m, err := DialMachine(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		machines = append(machines, m)
	}
	tc, err := NewCoordinator(machines...)
	if err != nil {
		t.Fatal(err)
	}
	tstats, err := tc.QuerySet(pref)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.LInfDistance(tstats.Result.Unpack(), want); d > 1e-12 {
		t.Fatalf("TCP QuerySet L∞ = %v", d)
	}
	// Invalid preference propagates as a worker error, connection survives.
	if _, err := tc.QuerySet(core.Preference{}); err == nil {
		t.Fatal("empty preference should fail")
	}
	if _, err := tc.Query(1); err != nil {
		t.Fatalf("connection should survive set-query error: %v", err)
	}
}

func TestPreferenceCodecRoundTrip(t *testing.T) {
	p := core.Preference{Nodes: []int32{1, 99, 7}, Weights: []float64{0.5, 2, 1}}
	got, err := decodePreference(encodePreference(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != 3 || got.Nodes[1] != 99 || got.Weights[1] != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	// Uniform preference carries explicit 1.0 weights.
	u := core.Preference{Nodes: []int32{4, 5}}
	got, err = decodePreference(encodePreference(u))
	if err != nil {
		t.Fatal(err)
	}
	if got.Weights[0] != 1 || got.Weights[1] != 1 {
		t.Fatalf("uniform weights: %+v", got)
	}
	if _, err := decodePreference([]byte{1}); err == nil {
		t.Fatal("short frame should fail")
	}
	if _, err := decodePreference([]byte{1, 0, 0, 0, 9}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}
