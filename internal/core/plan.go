package core

import (
	"slices"

	"exactppr/internal/hierarchy"
	"exactppr/internal/sparse"
)

// Hub plans: the transposed skeleton index.
//
// The serving identity folds, for query node u, the term
// (S_u(h)/α)·P_h + S_u(h)·x_h for every hub h on Path(u), where
// S_u(h) = s_u(h) − α·f_u(h) comes from the skeleton section. Stored
// row-major (one vector per hub), answering that needs the ENTIRE
// skeleton vector of every path hub fetched from disk just to read one
// scalar — by far the dominant read traffic of the old disk-resident
// query path. The transpose stores, per query node u, exactly the
// non-zero (h, s_u(h)) pairs it will fold, so a disk query reads one
// small plan row plus the partial vectors it actually needs: zero
// skeleton payloads.
//
// Ordering is load-bearing: floating-point accumulation must visit hubs
// in exactly the order Store.Query does — Path(u) root→home, then
// node.Hubs order — or disk and in-memory answers stop being
// bit-identical. A path holds at most one tree node per level, so the
// pair (home level, index within node.Hubs) is a total fold rank that
// reproduces that order for every query node at once; rows are kept
// sorted by it.

// planRow is one query node's hub-weight plan: parallel arrays of hub id
// and raw skeleton value s_u(h), in fold order (NOT sorted by id).
type planRow struct {
	hubs []int32
	s    []float64
}

// planBuilder accumulates the transpose incrementally so the two
// producers — Save (section maps in memory) and the legacy-file open
// path (skeleton payloads streamed off disk) — share one implementation.
type planBuilder struct {
	h     *hierarchy.Hierarchy
	ranks map[int32]int64
	rows  map[int32]planRow
}

func newPlanBuilder(h *hierarchy.Hierarchy) *planBuilder {
	ranks := make(map[int32]int64)
	for _, n := range h.Nodes() {
		for i, hub := range n.Hubs {
			ranks[hub] = int64(n.Level)<<32 | int64(i)
		}
	}
	return &planBuilder{h: h, ranks: ranks, rows: make(map[int32]planRow)}
}

// addSkeleton transposes one hub's skeleton vector into the per-source
// rows.
func (b *planBuilder) addSkeleton(hub int32, vec sparse.Packed) {
	vec.ForEach(func(w int32, s float64) {
		row := b.rows[w]
		row.hubs = append(row.hubs, hub)
		row.s = append(row.s, s)
		b.rows[w] = row
	})
}

// finish sorts every row into fold order and returns the plan table.
// Each hub's own row is guaranteed to contain the hub itself (injected
// with value 0 when the stored skeleton lacks it, e.g. after aggressive
// truncation) because the query fold applies the −α self-adjustment to
// that entry even when s_u(u) is absent.
func (b *planBuilder) finish() map[int32]planRow {
	for hub := range b.ranks {
		row := b.rows[hub]
		if !slices.Contains(row.hubs, hub) {
			row.hubs = append(row.hubs, hub)
			row.s = append(row.s, 0)
			b.rows[hub] = row
		}
	}
	for u, row := range b.rows {
		b.sortRow(row)
		b.rows[u] = row
	}
	return b.rows
}

// sortRow orders a row by fold rank (insertion sort: rows are short —
// one entry per path hub — and already nearly ordered when skeletons
// arrive level by level).
func (b *planBuilder) sortRow(row planRow) {
	for i := 1; i < len(row.hubs); i++ {
		hi, si := row.hubs[i], row.s[i]
		ri := b.ranks[hi]
		j := i - 1
		for j >= 0 && b.ranks[row.hubs[j]] > ri {
			row.hubs[j+1], row.s[j+1] = row.hubs[j], row.s[j]
			j--
		}
		row.hubs[j+1], row.s[j+1] = hi, si
	}
}

// buildHubPlans computes the full plan table from an in-memory skeleton
// section (the Save path).
func buildHubPlans(h *hierarchy.Hierarchy, skeleton map[int32]sparse.Packed) map[int32]planRow {
	b := newPlanBuilder(h)
	for hub, vec := range skeleton {
		b.addSkeleton(hub, vec)
	}
	return b.finish()
}
